"""The Iridium baseline [27]: separate task and data placement.

Iridium (a) solves task placement as an LP given the current data
layout, and (b) greedily moves chunks of "high-value" datasets out of the
bottleneck site, one dataset at a time, re-evaluating after each chunk —
in contrast to Bohr's joint LP over all datasets at once.

Two deliberate limitations, straight from §4.3:

- datasets move *sequentially* by heuristic value (query count times the
  data held at the bottleneck), not concurrently and optimally;
- the planner is similarity agnostic: it prices shuffle volume as
  :math:`I_i R^a` with no :math:`(1 - S)` factor and it does not care
  *which* records move.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.placement.joint import PlacementDecision
from repro.placement.lp import Moves, solve_task_lp
from repro.placement.model import PlacementProblem


class IridiumPlanner:
    """Greedy bottleneck-draining data placement + task-placement LP."""

    def __init__(
        self,
        backend: str = "auto",
        chunk_fraction: float = 0.1,
        max_steps_per_dataset: int = 20,
        stall_limit: int = 3,
    ) -> None:
        if not 0.0 < chunk_fraction <= 1.0:
            raise ValueError("chunk_fraction must be in (0, 1]")
        self.backend = backend
        self.chunk_fraction = chunk_fraction
        self.max_steps_per_dataset = max_steps_per_dataset
        # Chunks that leave t unchanged are kept for up to ``stall_limit``
        # consecutive steps: with tied bottlenecks, draining one site only
        # pays off once its twin has been drained too.
        self.stall_limit = stall_limit

    def plan(
        self,
        problem: PlacementProblem,
        query_counts: Optional[Mapping[str, int]] = None,
    ) -> PlacementDecision:
        """Plan movements and task placement, similarity-blind."""
        query_counts = query_counts or {}
        blind = self._similarity_blind(problem)
        sites = blind.site_names

        moves: Moves = {}
        remaining = {
            (a, i): blind.I(a, i) for a in blind.dataset_ids for i in sites
        }
        up_budget = {i: blind.lag_seconds * blind.U(i) for i in sites}
        down_budget = {i: blind.lag_seconds * blind.D(i) for i in sites}
        solve_seconds = 0.0

        def current_t() -> float:
            nonlocal solve_seconds
            volumes = self._volumes(blind, moves)
            _, t, solution = solve_task_lp(volumes, blind, backend=self.backend)
            solve_seconds += solution.solve_seconds
            return t

        # High-value first: more queries and more bottleneck data first.
        bottleneck = blind.bottleneck_site()
        ordered = sorted(
            blind.dataset_ids,
            key=lambda a: -(query_counts.get(a, 1) * blind.I(a, bottleneck)),
        )
        best_t = current_t()
        for dataset in ordered:
            stalled = 0
            committed_since_improvement: list = []
            for _ in range(self.max_steps_per_dataset):
                source = self._bottleneck(blind, moves)
                available = remaining[(dataset, source)]
                if available <= 0:
                    break
                chunk = min(
                    available,
                    self.chunk_fraction * max(blind.I(dataset, source), available),
                    up_budget[source],
                )
                if chunk <= 1e-9:  # nothing meaningful left to move
                    break
                destination = self._best_destination(
                    blind, source, chunk, down_budget
                )
                if destination is None:
                    break
                key = (dataset, source, destination)
                moves[key] = moves.get(key, 0.0) + chunk
                candidate_t = current_t()
                if candidate_t > best_t + 1e-9:
                    # Strictly worse: revert and stop this dataset.
                    moves[key] -= chunk
                    if moves[key] <= 1e-9:
                        del moves[key]
                    break
                remaining[(dataset, source)] -= chunk
                up_budget[source] -= chunk
                down_budget[destination] -= chunk
                if candidate_t < best_t - 1e-9:
                    best_t = candidate_t
                    stalled = 0
                    committed_since_improvement = []
                else:
                    stalled += 1
                    committed_since_improvement.append((key, chunk, source, destination))
                    if stalled >= self.stall_limit:
                        # The speculative chunks never paid off: roll back.
                        for spec_key, spec_chunk, src, dst in committed_since_improvement:
                            residual = moves.get(spec_key, 0.0) - spec_chunk
                            if residual <= 1e-9:
                                moves.pop(spec_key, None)
                            else:
                                moves[spec_key] = residual
                            remaining[(dataset, src)] += spec_chunk
                            up_budget[src] += spec_chunk
                            down_budget[dst] += spec_chunk
                        break

        volumes = self._volumes(blind, moves)
        fractions, t, solution = solve_task_lp(volumes, blind, backend=self.backend)
        solve_seconds += solution.solve_seconds
        return PlacementDecision(
            moves=moves,
            reduce_fractions=fractions,
            estimated_shuffle_seconds=t,
            solve_seconds=solve_seconds,
            planner="iridium",
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _similarity_blind(problem: PlacementProblem) -> PlacementProblem:
        """A copy of the problem with all similarity knowledge removed."""
        return PlacementProblem(
            topology=problem.topology,
            input_bytes=problem.input_bytes,
            reduction_ratio=problem.reduction_ratio,
            similarity={},
            lag_seconds=problem.lag_seconds,
            mobility={},
            cross_similarity={},
            compute_bps=dict(problem.compute_bps),
        )

    @staticmethod
    def _volumes(problem: PlacementProblem, moves: Moves) -> Dict[str, float]:
        from repro.placement.lp import shuffle_bytes_after_moves

        return shuffle_bytes_after_moves(problem, moves)

    def _bottleneck(self, problem: PlacementProblem, moves: Moves) -> str:
        volumes = self._volumes(problem, moves)
        return max(
            problem.site_names, key=lambda site: volumes[site] / problem.U(site)
        )

    def _best_destination(
        self,
        problem: PlacementProblem,
        source: str,
        chunk: float,
        down_budget: Mapping[str, float],
    ) -> Optional[str]:
        """Site with the most spare uplink headroom that can absorb it."""
        candidates = [
            site
            for site in problem.site_names
            if site != source and down_budget[site] >= chunk
        ]
        if not candidates:
            return None
        return max(candidates, key=problem.U)
