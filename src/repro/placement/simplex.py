"""Dense two-phase simplex (pure numpy).

A fallback LP solver so the placement pipeline has no hard dependency on
scipy's HiGHS backend, and an ablation target (`bench_ablation_lp_vs_
simplex`) proving both backends agree on the paper's placement LPs.

Solves::

    min c.x   s.t.   A_ub x <= b_ub,   A_eq x = b_eq,   x >= 0

with Bland's anti-cycling rule.  Suitable for the problem sizes here
(hundreds of variables, tens of constraints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.obs import instrument

_TOL = 1e-9


def _record_iterations(result: "SimplexResult") -> "SimplexResult":
    """Publish iteration counts to the active metrics registry."""
    metrics = instrument.current().metrics
    if metrics.enabled:
        metrics.counter("simplex_solves", status=result.status).inc()
        metrics.counter("simplex_iterations").inc(result.iterations)
        metrics.histogram("simplex_iterations_per_solve").observe(
            result.iterations
        )
        if result.warm_started:
            metrics.counter("simplex_warm_starts").inc()
    return result


@dataclass
class SimplexResult:
    """Solution of one simplex run."""

    x: np.ndarray
    objective: float
    iterations: int
    status: str  # "optimal" | "infeasible" | "unbounded"
    #: Final basis columns (indices into the structural+slack space);
    #: structural entries (< num_vars) can seed a later warm start.
    basis_columns: List[int] = field(default_factory=list)
    #: True when a warm-start crash basis was feasible and phase 1 was
    #: skipped entirely.
    warm_started: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "optimal"


def _try_warm_basis(
    tableau_a: np.ndarray,
    b: np.ndarray,
    hinted: Sequence[int],
    slack_columns: Sequence[Tuple[int, int]],
) -> Optional[Tuple[List[int], np.ndarray, np.ndarray]]:
    """Crash a starting basis around the ``hinted`` structural columns.

    The basic solution depends only on the chosen column *set*, so the
    crash pivots every usable hinted column in first (each on its
    largest-pivot unassigned row), then completes the basis with slack
    columns — each remaining row preferring its own slack (from
    ``slack_columns``: (row, column) pairs) before borrowing another.
    Returns ``(basis, tableau, rhs)`` — the row-aligned basis plus the
    canonicalized tableau copies — when that set spans the rows AND its
    basic solution is feasible (b >= 0 after elimination); None means
    fall back to ordinary phase 1.  (The canonical copies matter: the
    crash pivots rows out of order, so re-canonicalizing the raw tableau
    row-by-row could hit a transiently zero pivot.)
    """
    num_rows = tableau_a.shape[0]
    work_a = tableau_a.copy()
    work_b = b.copy()
    assigned: dict = {}  # row -> basis column

    def pivot_in(row: int, column: int) -> None:
        assigned[row] = column
        pivot = work_a[row, column]
        work_a[row] /= pivot
        work_b[row] /= pivot
        for other in range(num_rows):
            if other != row and abs(work_a[other, column]) > _TOL:
                factor = work_a[other, column]
                work_a[other] -= factor * work_a[row]
                work_b[other] -= factor * work_b[row]

    slack_of_row = dict(slack_columns)
    remaining_hints = list(hinted)

    # Slackless rows (equalities) can only hold structural columns, so
    # they claim hinted pivots before anything else; a slackless row no
    # hint can cover means the crash cannot span the rows — fall back.
    for row in range(num_rows):
        if row in slack_of_row:
            continue
        best_column = None
        best_pivot = _TOL
        for column in remaining_hints:
            magnitude = abs(work_a[row, column])
            if magnitude > best_pivot:
                best_pivot = magnitude
                best_column = column
        if best_column is None:
            return None
        remaining_hints.remove(best_column)
        pivot_in(row, best_column)

    # Then the leftover hints: a degenerate hint (no usable pivot
    # anywhere) is skipped rather than failing the whole crash.
    for column in remaining_hints:
        best_row = None
        best_pivot = _TOL
        for row in range(num_rows):
            if row in assigned:
                continue
            magnitude = abs(work_a[row, column])
            if magnitude > best_pivot:
                best_pivot = magnitude
                best_row = row
        if best_row is not None:
            pivot_in(best_row, column)

    # Complete with slacks: own-row slack first, then any usable one.
    used = set(assigned.values())
    spare = [col for _, col in slack_columns if col not in used]
    for row in range(num_rows):
        if row in assigned:
            continue
        own = slack_of_row.get(row)
        if own is not None and own not in used and abs(work_a[row, own]) > _TOL:
            used.add(own)
            pivot_in(row, own)
            continue
        for column in spare:
            if column not in used and abs(work_a[row, column]) > _TOL:
                used.add(column)
                pivot_in(row, column)
                break
        else:
            return None
    if np.any(work_b < -_TOL):
        return None  # hinted basis is infeasible here; phase 1 it is
    return [assigned[row] for row in range(num_rows)], work_a, work_b


def simplex_solve(
    c: np.ndarray,
    a_ub: Optional[np.ndarray] = None,
    b_ub: Optional[np.ndarray] = None,
    a_eq: Optional[np.ndarray] = None,
    b_eq: Optional[np.ndarray] = None,
    max_iterations: int = 20000,
    warm_columns: Optional[Sequence[int]] = None,
) -> SimplexResult:
    """Two-phase simplex for the standard-form LP above.

    ``warm_columns`` hints structural columns (e.g. the incumbent basis
    of a related solve) to crash a starting basis from; when the hinted
    basis — completed with slack columns — is feasible, phase 1 is
    skipped.  An unusable hint silently falls back to the cold path.
    """
    c = np.asarray(c, dtype=float)
    num_vars = c.shape[0]
    rows = []
    rhs = []
    slack_rows = []
    if a_ub is not None:
        a_ub = np.atleast_2d(np.asarray(a_ub, dtype=float))
        b_ub = np.atleast_1d(np.asarray(b_ub, dtype=float))
        if a_ub.shape[0] != b_ub.shape[0] or a_ub.shape[1] != num_vars:
            raise SolverError("inequality shapes are inconsistent")
        for index in range(a_ub.shape[0]):
            rows.append(a_ub[index])
            rhs.append(b_ub[index])
            slack_rows.append(len(rows) - 1)
    if a_eq is not None:
        a_eq = np.atleast_2d(np.asarray(a_eq, dtype=float))
        b_eq = np.atleast_1d(np.asarray(b_eq, dtype=float))
        if a_eq.shape[0] != b_eq.shape[0] or a_eq.shape[1] != num_vars:
            raise SolverError("equality shapes are inconsistent")
        for index in range(a_eq.shape[0]):
            rows.append(a_eq[index])
            rhs.append(b_eq[index])
    if not rows:
        # Unconstrained (beyond x >= 0): optimum at 0 unless some c < 0.
        if np.any(c < -_TOL):
            return _record_iterations(
                SimplexResult(np.zeros(num_vars), -np.inf, 0, "unbounded")
            )
        return _record_iterations(
            SimplexResult(np.zeros(num_vars), 0.0, 0, "optimal")
        )

    matrix = np.vstack(rows)
    b = np.asarray(rhs, dtype=float)
    num_rows = matrix.shape[0]

    # Add slack columns for <= rows.
    num_slacks = len(slack_rows)
    slack_block = np.zeros((num_rows, num_slacks))
    for position, row in enumerate(slack_rows):
        slack_block[row, position] = 1.0
    tableau_a = np.hstack([matrix, slack_block])

    # Normalize to b >= 0.
    for row in range(num_rows):
        if b[row] < 0:
            tableau_a[row] *= -1.0
            b[row] *= -1.0

    total_real = num_vars + num_slacks
    warm_basis: Optional[List[int]] = None
    if warm_columns is not None:
        hinted: List[int] = []
        seen = set()
        for column in warm_columns:
            if 0 <= column < total_real and column not in seen:
                seen.add(column)
                hinted.append(column)
        slack_columns = [
            (row, num_vars + position)
            for position, row in enumerate(slack_rows)
        ]
        warm_basis = _try_warm_basis(tableau_a, b, hinted, slack_columns)
    if warm_basis is not None:
        basis, canonical_a, canonical_b = warm_basis
        return _finish_phase2(
            canonical_a, canonical_b, c, list(basis), num_vars,
            max_iterations, 0, True,
        )

    basis = [-1] * num_rows
    # A slack column can start basic if its coefficient stayed +1.
    for position, row in enumerate(slack_rows):
        column = num_vars + position
        if tableau_a[row, column] == 1.0:  # lint: allow[R004] — exact structural test on the just-built tableau
            basis[row] = column

    artificial_rows = [row for row in range(num_rows) if basis[row] == -1]
    num_artificials = len(artificial_rows)
    if num_artificials:
        artificial_block = np.zeros((num_rows, num_artificials))
        for position, row in enumerate(artificial_rows):
            artificial_block[row, position] = 1.0
            basis[row] = total_real + position
        tableau_a = np.hstack([tableau_a, artificial_block])

        phase1_c = np.zeros(tableau_a.shape[1])
        phase1_c[total_real:] = 1.0
        status, iterations1 = _iterate(
            tableau_a, b, phase1_c, basis, max_iterations
        )
        if status != "optimal":
            return _record_iterations(
                SimplexResult(np.zeros(num_vars), 0.0, iterations1, status)
            )
        phase1_value = float(
            sum(
                phase1_c[basis[row]] * b[row]
                for row in range(num_rows)
            )
        )
        if phase1_value > 1e-7:
            return _record_iterations(
                SimplexResult(np.zeros(num_vars), 0.0, iterations1, "infeasible")
            )
        _pivot_out_artificials(tableau_a, b, basis, total_real)
        tableau_a = tableau_a[:, :total_real]
        basis = [col if col < total_real else -1 for col in basis]
        if any(col == -1 for col in basis):
            # A redundant row remained with an artificial basis: drop it.
            keep = [row for row in range(num_rows) if basis[row] != -1]
            tableau_a = tableau_a[keep]
            b = b[keep]
            basis = [basis[row] for row in keep]
            num_rows = len(keep)
    else:
        iterations1 = 0

    return _finish_phase2(
        tableau_a, b, c, basis, num_vars, max_iterations, iterations1, False
    )


def _finish_phase2(
    tableau_a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    basis: list,
    num_vars: int,
    max_iterations: int,
    iterations1: int,
    warm_started: bool,
) -> SimplexResult:
    """Run phase 2 from a feasible basis and package the result."""
    phase2_c = np.concatenate([c, np.zeros(tableau_a.shape[1] - num_vars)])
    status, iterations2 = _iterate(tableau_a, b, phase2_c, basis, max_iterations)
    x_full = np.zeros(tableau_a.shape[1])
    for row, column in enumerate(basis):
        x_full[column] = b[row]
    x = x_full[:num_vars]
    objective = float(c @ x)
    return _record_iterations(
        SimplexResult(
            x,
            objective,
            iterations1 + iterations2,
            status,
            basis_columns=list(basis),
            warm_started=warm_started,
        )
    )


def _iterate(
    tableau_a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    basis: list,
    max_iterations: int,
) -> Tuple[str, int]:
    """Run simplex iterations in place (revised tableau style)."""
    num_rows = tableau_a.shape[0]
    # Put the tableau into canonical form for the current basis.
    for row in range(num_rows):
        column = basis[row]
        pivot = tableau_a[row, column]
        if abs(pivot) < _TOL:
            raise SolverError("degenerate basis during canonicalization")
        tableau_a[row] /= pivot
        b[row] /= pivot
        for other in range(num_rows):
            if other != row and abs(tableau_a[other, column]) > _TOL:
                factor = tableau_a[other, column]
                tableau_a[other] -= factor * tableau_a[row]
                b[other] -= factor * b[row]

    degenerate_streak = 0
    for iteration in range(max_iterations):
        # Reduced costs: c_j - c_B . A_j
        c_basis = c[basis]
        reduced = c - c_basis @ tableau_a
        reduced[basis] = 0.0
        entering_candidates = np.where(reduced < -_TOL)[0]
        if entering_candidates.size == 0:
            return "optimal", iteration
        # Dantzig's rule converges fast; switch to Bland's anti-cycling
        # rule after a run of degenerate pivots.
        if degenerate_streak < 20:
            entering = int(entering_candidates[np.argmin(reduced[entering_candidates])])
        else:
            entering = int(entering_candidates[0])

        column = tableau_a[:, entering]
        positive = column > _TOL
        if not positive.any():
            return "unbounded", iteration
        ratios = np.full(num_rows, np.inf)
        ratios[positive] = b[positive] / column[positive]
        best = ratios.min()
        # Smallest basis index among tied rows (Bland-compatible).
        tied = [row for row in range(num_rows) if ratios[row] <= best + _TOL]
        leaving = min(tied, key=lambda row: basis[row])
        degenerate_streak = degenerate_streak + 1 if best <= _TOL else 0

        pivot = tableau_a[leaving, entering]
        tableau_a[leaving] /= pivot
        b[leaving] /= pivot
        for row in range(num_rows):
            if row != leaving and abs(tableau_a[row, entering]) > _TOL:
                factor = tableau_a[row, entering]
                tableau_a[row] -= factor * tableau_a[leaving]
                b[row] -= factor * b[leaving]
        basis[leaving] = entering
    raise SolverError(f"simplex exceeded {max_iterations} iterations")


def _pivot_out_artificials(
    tableau_a: np.ndarray, b: np.ndarray, basis: list, total_real: int
) -> None:
    """Swap basic artificials for real columns where possible."""
    num_rows = tableau_a.shape[0]
    for row in range(num_rows):
        if basis[row] < total_real:
            continue
        candidates = np.where(np.abs(tableau_a[row, :total_real]) > _TOL)[0]
        if candidates.size == 0:
            continue  # redundant row; caller drops it
        entering = int(candidates[0])
        pivot = tableau_a[row, entering]
        tableau_a[row] /= pivot
        b[row] /= pivot
        for other in range(num_rows):
            if other != row and abs(tableau_a[other, entering]) > _TOL:
                factor = tableau_a[other, entering]
                tableau_a[other] -= factor * tableau_a[row]
                b[other] -= factor * b[row]
        basis[row] = entering
