"""Data and reduce-task placement (§5).

- :class:`~repro.placement.model.PlacementProblem` — the Table 1 inputs.
- :mod:`~repro.placement.lp` — the LP of equations (2)–(7); since the
  objective couples ``r_i`` with ``x_{i,j}`` bilinearly, the joint solver
  alternates two exact LPs (x given r, r given x) to a fixed point.
- :mod:`~repro.placement.solver` — scipy backend plus a pure-Python
  two-phase simplex fallback.
- :mod:`~repro.placement.iridium` — the Iridium baseline: separate
  task-placement LP and greedy high-value data movement heuristic [27].
- :mod:`~repro.placement.plan` — executing a plan against real shards,
  with similarity-aware or random record selection.
"""

from repro.placement.iridium import IridiumPlanner
from repro.placement.joint import JointPlanner
from repro.placement.lp import solve_data_lp, solve_task_lp
from repro.placement.model import PlacementProblem
from repro.placement.plan import MovementPolicy, PlacementPlan, execute_plan
from repro.placement.solver import LinearProgram, LpSolution, solve_lp

__all__ = [
    "IridiumPlanner",
    "JointPlanner",
    "LinearProgram",
    "LpSolution",
    "MovementPolicy",
    "PlacementPlan",
    "PlacementProblem",
    "execute_plan",
    "solve_data_lp",
    "solve_lp",
    "solve_task_lp",
]
