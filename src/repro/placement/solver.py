"""LP solving front-end: scipy (HiGHS) with a pure-Python simplex fallback.

All placement LPs flow through :func:`solve_lp`, which also times the
solve — those timings are what Table 5 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SolverError
from repro.obs import instrument
from repro.placement.simplex import simplex_solve


@dataclass
class LinearProgram:
    """min c.x subject to A_ub x <= b_ub, A_eq x = b_eq, x >= 0."""

    c: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    variable_names: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        if self.variable_names and len(self.variable_names) != self.c.shape[0]:
            raise SolverError("variable_names length must match c")

    @property
    def num_variables(self) -> int:
        return int(self.c.shape[0])


@dataclass
class LpSolution:
    """Solved LP with timing."""

    x: np.ndarray
    objective: float
    solve_seconds: float
    backend: str
    #: Structural variables usable as a warm-start hint for a related
    #: solve: the final simplex basis (simplex backend) or the solution
    #: support (scipy, which exposes no basis through ``linprog``).
    basis_names: List[str] = field(default_factory=list)
    #: True when the simplex backend started from a feasible warm basis.
    warm_started: bool = False

    def value_of(self, program: LinearProgram, name: str) -> float:
        try:
            index = program.variable_names.index(name)
        except ValueError:
            raise SolverError(f"unknown variable {name!r}") from None
        return float(self.x[index])


def solve_lp(
    program: LinearProgram,
    backend: str = "auto",
    warm_names: Optional[List[str]] = None,
) -> LpSolution:
    """Solve the LP; ``backend`` is ``"auto"``, ``"scipy"`` or ``"simplex"``.

    ``auto`` prefers scipy and silently falls back to the built-in simplex
    if scipy is unavailable.  Raises :class:`SolverError` on infeasible or
    unbounded problems.  ``warm_names`` hints variables (by name) whose
    columns should seed the simplex backend's starting basis — e.g. the
    ``basis_names`` of an incumbent solution to a related program; names
    the program does not define are ignored, and the scipy backend has no
    warm-start surface so the hint is a no-op there.
    """
    if backend not in ("auto", "scipy", "simplex"):
        raise SolverError(f"unknown backend {backend!r}")
    obs = instrument.current()
    with obs.tracer.span(
        "lp-solve", stage="placement", variables=program.num_variables
    ) as span:
        solution = _solve(program, backend, warm_names)
    if span is not None:
        span.attrs["backend"] = solution.backend
        span.attrs["objective"] = solution.objective
    if obs.metrics.enabled:
        obs.metrics.counter("lp_solves", backend=solution.backend).inc()
        obs.metrics.histogram("lp_solve_seconds").observe(solution.solve_seconds)
        obs.metrics.gauge("lp_variables").set(program.num_variables)
        if solution.warm_started:
            obs.metrics.counter("lp_warm_starts").inc()
    return solution


def _solve(
    program: LinearProgram,
    backend: str,
    warm_names: Optional[List[str]] = None,
) -> LpSolution:
    # Wall-clock on purpose: LP solve cost reported by Table 5.
    started = time.perf_counter()  # lint: allow[R001]
    names = program.variable_names
    if backend in ("auto", "scipy"):
        try:
            from scipy.optimize import linprog
        except ImportError:
            if backend == "scipy":
                raise SolverError("scipy is not installed") from None
            linprog = None
        if linprog is not None:
            result = linprog(
                c=program.c,
                A_ub=program.a_ub,
                b_ub=program.b_ub,
                A_eq=program.a_eq,
                b_eq=program.b_eq,
                bounds=(0, None),
                method="highs",
            )
            if not result.success:
                raise SolverError(f"scipy linprog failed: {result.message}")
            x = np.asarray(result.x, dtype=float)
            return LpSolution(
                x=x,
                objective=float(result.fun),
                solve_seconds=time.perf_counter() - started,  # lint: allow[R001]
                backend="scipy",
                basis_names=(
                    [name for name, value in zip(names, x) if value > 1e-12]
                    if names
                    else []
                ),
            )
    warm_columns = None
    if warm_names and names:
        index_of = {name: position for position, name in enumerate(names)}
        warm_columns = [
            index_of[name] for name in warm_names if name in index_of
        ]
    result = simplex_solve(
        program.c,
        program.a_ub,
        program.b_ub,
        program.a_eq,
        program.b_eq,
        warm_columns=warm_columns,
    )
    if not result.ok:
        raise SolverError(f"simplex failed: {result.status}")
    num_vars = program.num_variables
    return LpSolution(
        x=result.x,
        objective=result.objective,
        solve_seconds=time.perf_counter() - started,  # lint: allow[R001]
        backend="simplex",
        basis_names=(
            [
                names[column]
                for column in result.basis_columns
                if column < num_vars
            ]
            if names
            else []
        ),
        warm_started=result.warm_started,
    )
