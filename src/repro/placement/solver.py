"""LP solving front-end: scipy (HiGHS) with a pure-Python simplex fallback.

All placement LPs flow through :func:`solve_lp`, which also times the
solve — those timings are what Table 5 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SolverError
from repro.obs import instrument
from repro.placement.simplex import simplex_solve


@dataclass
class LinearProgram:
    """min c.x subject to A_ub x <= b_ub, A_eq x = b_eq, x >= 0."""

    c: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    variable_names: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        if self.variable_names and len(self.variable_names) != self.c.shape[0]:
            raise SolverError("variable_names length must match c")

    @property
    def num_variables(self) -> int:
        return int(self.c.shape[0])


@dataclass
class LpSolution:
    """Solved LP with timing."""

    x: np.ndarray
    objective: float
    solve_seconds: float
    backend: str

    def value_of(self, program: LinearProgram, name: str) -> float:
        try:
            index = program.variable_names.index(name)
        except ValueError:
            raise SolverError(f"unknown variable {name!r}") from None
        return float(self.x[index])


def solve_lp(program: LinearProgram, backend: str = "auto") -> LpSolution:
    """Solve the LP; ``backend`` is ``"auto"``, ``"scipy"`` or ``"simplex"``.

    ``auto`` prefers scipy and silently falls back to the built-in simplex
    if scipy is unavailable.  Raises :class:`SolverError` on infeasible or
    unbounded problems.
    """
    if backend not in ("auto", "scipy", "simplex"):
        raise SolverError(f"unknown backend {backend!r}")
    obs = instrument.current()
    with obs.tracer.span(
        "lp-solve", stage="placement", variables=program.num_variables
    ) as span:
        solution = _solve(program, backend)
    if span is not None:
        span.attrs["backend"] = solution.backend
        span.attrs["objective"] = solution.objective
    if obs.metrics.enabled:
        obs.metrics.counter("lp_solves", backend=solution.backend).inc()
        obs.metrics.histogram("lp_solve_seconds").observe(solution.solve_seconds)
        obs.metrics.gauge("lp_variables").set(program.num_variables)
    return solution


def _solve(program: LinearProgram, backend: str) -> LpSolution:
    # Wall-clock on purpose: LP solve cost reported by Table 5.
    started = time.perf_counter()  # lint: allow[R001]
    if backend in ("auto", "scipy"):
        try:
            from scipy.optimize import linprog
        except ImportError:
            if backend == "scipy":
                raise SolverError("scipy is not installed") from None
            linprog = None
        if linprog is not None:
            result = linprog(
                c=program.c,
                A_ub=program.a_ub,
                b_ub=program.b_ub,
                A_eq=program.a_eq,
                b_eq=program.b_eq,
                bounds=(0, None),
                method="highs",
            )
            if not result.success:
                raise SolverError(f"scipy linprog failed: {result.message}")
            return LpSolution(
                x=np.asarray(result.x, dtype=float),
                objective=float(result.fun),
                solve_seconds=time.perf_counter() - started,  # lint: allow[R001]
                backend="scipy",
            )
    result = simplex_solve(
        program.c, program.a_ub, program.b_ub, program.a_eq, program.b_eq
    )
    if not result.ok:
        raise SolverError(f"simplex failed: {result.status}")
    return LpSolution(
        x=result.x,
        objective=result.objective,
        solve_seconds=time.perf_counter() - started,  # lint: allow[R001]
        backend="simplex",
    )
