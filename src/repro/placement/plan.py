"""Executing a placement decision against real shards.

The LP decides *how many* bytes move between sites; this module decides
*which records* those bytes are — the heart of Bohr's contribution:

- ``MovementPolicy.SIMILARITY`` — move whole key-clusters whose keys
  already exist at the destination first (they are absorbed by the
  destination's combiner, Figure 1c), largest clusters first;
- ``MovementPolicy.RANDOM`` — similarity-agnostic random records, as all
  prior work does (Figure 1b).

Movement is simulated over the WAN; if the bandwidth estimates were
optimistic and the plan overshoots the lag window T, budgets are scaled
down and re-selected so movement always finishes within the lag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.errors import PlacementError
from repro.placement.lp import Moves
from repro.types import DatasetCatalog, Key, Record
from repro.util.rng import derive_rng
from repro.wan.transfer import Transfer, TransferResult, TransferScheduler


class MovementPolicy(str, enum.Enum):
    """How records are picked to satisfy a byte budget."""

    SIMILARITY = "similarity"
    RANDOM = "random"


@dataclass
class PlacementPlan:
    """A decision bound to record-selection policy."""

    moves: Moves
    reduce_fractions: Dict[str, float]
    policy: MovementPolicy = MovementPolicy.SIMILARITY


@dataclass
class MovementReport:
    """What actually moved, and whether it fit in the lag window."""

    moved_bytes: Dict[Tuple[str, str, str], float] = field(default_factory=dict)
    moved_records: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    makespan_seconds: float = 0.0
    within_lag: bool = True
    scale_factor: float = 1.0
    transfers: List[TransferResult] = field(default_factory=list)

    @property
    def total_moved_bytes(self) -> float:
        return sum(self.moved_bytes.values())

    @property
    def total_moved_records(self) -> int:
        return sum(self.moved_records.values())


def select_records(
    records: Sequence[Record],
    budget_bytes: float,
    key_indices: Sequence[int],
    policy: MovementPolicy,
    destination_keys: Set[Key],
    rng,
) -> List[Record]:
    """Pick records worth up to ``budget_bytes`` from a shard.

    Similarity policy moves whole clusters, destination-present keys
    first (largest first), so the source sheds entire keys and the
    destination absorbs them.  Random policy is the prior-work baseline.
    """
    if budget_bytes <= 0:
        return []
    if policy is MovementPolicy.RANDOM:
        order = list(rng.permutation(len(records)))
        chosen: List[Record] = []
        used = 0.0
        for index in order:
            record = records[index]
            if used + record.size_bytes > budget_bytes and chosen:
                break
            chosen.append(record)
            used += record.size_bytes
            if used >= budget_bytes:
                break
        return chosen

    clusters: Dict[Key, List[Record]] = {}
    for record in records:
        clusters.setdefault(record.key(key_indices), []).append(record)
    ordered = sorted(
        clusters.items(),
        key=lambda item: (
            0 if item[0] in destination_keys else 1,
            -sum(record.size_bytes for record in item[1]),
            str(item[0]),
        ),
    )
    chosen = []
    used = 0.0
    for _key, members in ordered:
        for record in members:
            if used + record.size_bytes > budget_bytes and chosen:
                return chosen
            chosen.append(record)
            used += record.size_bytes
            if used >= budget_bytes:
                return chosen
    return chosen


def execute_plan(
    catalog: DatasetCatalog,
    plan: PlacementPlan,
    key_indices: Mapping[str, Sequence[int]],
    scheduler: TransferScheduler,
    lag_seconds: float,
    seed: int = 7,
    max_rescale_rounds: int = 3,
) -> MovementReport:
    """Move records across shards per the plan, within the lag window.

    Mutates the catalog's datasets.  Selection happens against the
    pre-move shards, then a WAN simulation verifies the movement fits in
    ``lag_seconds``; on overshoot all budgets shrink proportionally and
    selection reruns (bounded retries), after which the moves are applied.
    """
    if lag_seconds <= 0:
        raise PlacementError("lag_seconds must be > 0")
    rng = derive_rng(seed, "plan-executor")

    scale = 1.0
    report = MovementReport()
    for _ in range(max_rescale_rounds):
        selection = _select_all(catalog, plan, key_indices, scale, rng)
        transfers = [
            Transfer(src=src, dst=dst, num_bytes=_bytes_of(records), tag=dataset)
            for (dataset, src, dst), records in selection.items()
            if records
        ]
        makespan = scheduler.makespan(transfers) if transfers else 0.0
        if makespan <= lag_seconds * 1.0001 or not transfers:
            results = scheduler.simulate(transfers) if transfers else []
            report = MovementReport(
                makespan_seconds=makespan,
                within_lag=makespan <= lag_seconds * 1.0001,
                scale_factor=scale,
                transfers=results,
            )
            for (dataset, src, dst), records in selection.items():
                if not records:
                    continue
                catalog.get(dataset).move_records(src, dst, records)
                report.moved_bytes[(dataset, src, dst)] = _bytes_of(records)
                report.moved_records[(dataset, src, dst)] = len(records)
            return report
        scale *= lag_seconds / makespan
    raise PlacementError(
        f"could not fit data movement into lag window of {lag_seconds}s "
        f"after {max_rescale_rounds} rescaling rounds"
    )


def _select_all(
    catalog: DatasetCatalog,
    plan: PlacementPlan,
    key_indices: Mapping[str, Sequence[int]],
    scale: float,
    rng,
) -> Dict[Tuple[str, str, str], List[Record]]:
    selection: Dict[Tuple[str, str, str], List[Record]] = {}
    # Track records already claimed per (dataset, src) so overlapping
    # moves from one source never pick the same record twice.
    claimed: Dict[Tuple[str, str], Set[int]] = {}
    for (dataset_id, src, dst), budget in sorted(plan.moves.items()):
        dataset = catalog.get(dataset_id)
        indices = list(key_indices.get(dataset_id, ()))
        if not indices:
            raise PlacementError(f"no key indices registered for {dataset_id!r}")
        taken = claimed.setdefault((dataset_id, src), set())
        available = [
            record for record in dataset.shard(src) if id(record) not in taken
        ]
        destination_keys = {
            record.key(indices) for record in dataset.shard(dst)
        }
        records = select_records(
            available,
            budget * scale,
            indices,
            plan.policy,
            destination_keys,
            rng,
        )
        taken.update(id(record) for record in records)
        selection[(dataset_id, src, dst)] = records
    return selection


def _bytes_of(records: Sequence[Record]) -> float:
    return float(sum(record.size_bytes for record in records))
