"""Executing a placement decision against real shards.

The LP decides *how many* bytes move between sites; this module decides
*which records* those bytes are — the heart of Bohr's contribution:

- ``MovementPolicy.SIMILARITY`` — move whole key-clusters whose keys
  already exist at the destination first (they are absorbed by the
  destination's combiner, Figure 1c), largest clusters first;
- ``MovementPolicy.RANDOM`` — similarity-agnostic random records, as all
  prior work does (Figure 1b).

Movement is simulated over the WAN; if the bandwidth estimates were
optimistic and the plan overshoots the lag window T, budgets are scaled
down and re-selected so movement always finishes within the lag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import PlacementError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.runtime import RetryPolicy
from repro.placement.lp import Moves
from repro.types import DatasetCatalog, Key, Record
from repro.util.rng import derive_rng
from repro.wan.transfer import Transfer, TransferResult, TransferScheduler


class MovementPolicy(str, enum.Enum):
    """How records are picked to satisfy a byte budget."""

    SIMILARITY = "similarity"
    RANDOM = "random"


@dataclass
class PlacementPlan:
    """A decision bound to record-selection policy."""

    moves: Moves
    reduce_fractions: Dict[str, float]
    policy: MovementPolicy = MovementPolicy.SIMILARITY


@dataclass
class MovementReport:
    """What actually moved, and whether it fit in the lag window."""

    moved_bytes: Dict[Tuple[str, str, str], float] = field(default_factory=dict)
    moved_records: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    makespan_seconds: float = 0.0
    within_lag: bool = True
    scale_factor: float = 1.0
    transfers: List[TransferResult] = field(default_factory=list)
    #: Chaos accounting: transfer re-submissions and bytes whose moves
    #: were rolled back because the transfer exhausted its retry budget
    #: (those records stay at their source site).
    retries: int = 0
    abandoned_bytes: float = 0.0

    @property
    def total_moved_bytes(self) -> float:
        return sum(self.moved_bytes.values())

    @property
    def total_moved_records(self) -> int:
        return sum(self.moved_records.values())


def select_records(
    records: Sequence[Record],
    budget_bytes: float,
    key_indices: Sequence[int],
    policy: MovementPolicy,
    destination_keys: Set[Key],
    rng,
) -> List[Record]:
    """Pick records worth up to ``budget_bytes`` from a shard.

    Similarity policy moves whole clusters, destination-present keys
    first (largest first), so the source sheds entire keys and the
    destination absorbs them.  Random policy is the prior-work baseline.
    """
    if budget_bytes <= 0:
        return []
    if policy is MovementPolicy.RANDOM:
        order = list(rng.permutation(len(records)))
        chosen: List[Record] = []
        used = 0.0
        for index in order:
            record = records[index]
            if used + record.size_bytes > budget_bytes and chosen:
                break
            chosen.append(record)
            used += record.size_bytes
            if used >= budget_bytes:
                break
        return chosen

    clusters: Dict[Key, List[Record]] = {}
    for record in records:
        clusters.setdefault(record.key(key_indices), []).append(record)
    ordered = sorted(
        clusters.items(),
        key=lambda item: (
            0 if item[0] in destination_keys else 1,
            -sum(record.size_bytes for record in item[1]),
            str(item[0]),
        ),
    )
    chosen = []
    used = 0.0
    for _key, members in ordered:
        for record in members:
            if used + record.size_bytes > budget_bytes and chosen:
                return chosen
            chosen.append(record)
            used += record.size_bytes
            if used >= budget_bytes:
                return chosen
    return chosen


def execute_plan(
    catalog: DatasetCatalog,
    plan: PlacementPlan,
    key_indices: Mapping[str, Sequence[int]],
    scheduler: TransferScheduler,
    lag_seconds: float,
    seed: int = 7,
    max_rescale_rounds: int = 3,
    retry_policy: "Optional[RetryPolicy]" = None,
) -> MovementReport:
    """Move records across shards per the plan, within the lag window.

    Mutates the catalog's datasets.  Selection happens against the
    pre-move shards, then a WAN simulation verifies the movement fits in
    ``lag_seconds``; on overshoot all budgets shrink proportionally and
    selection reruns (bounded retries), after which the moves are applied.

    With ``retry_policy`` (the failure-aware runtime), transfers run
    through :func:`repro.chaos.runtime.simulate_with_retries`: failed
    attempts back off and re-send, transfers that exhaust the budget are
    *rolled back* (their records stay at the source), and a movement
    that cannot fit the lag window even after rescaling proceeds with
    ``within_lag=False`` instead of raising — under injected faults an
    overshoot is an expected outcome to report, not a planner bug.
    """
    if lag_seconds <= 0:
        raise PlacementError("lag_seconds must be > 0")
    rng = derive_rng(seed, "plan-executor")

    scale = 1.0
    report = MovementReport()
    for round_index in range(max_rescale_rounds):
        selection = _select_all(catalog, plan, key_indices, scale, rng)
        transfers = [
            Transfer(src=src, dst=dst, num_bytes=_bytes_of(records), tag=dataset)
            for (dataset, src, dst), records in selection.items()
            if records
        ]
        outcome = None
        if not transfers:
            makespan = 0.0
        elif retry_policy is not None:
            from repro.chaos.runtime import simulate_with_retries

            outcome = simulate_with_retries(scheduler, transfers, retry_policy)
            makespan = outcome.makespan_seconds
        else:
            makespan = scheduler.makespan(transfers)
        last_round = round_index == max_rescale_rounds - 1
        fits = makespan <= lag_seconds * 1.0001
        if fits or not transfers or (retry_policy is not None and last_round):
            if outcome is not None:
                results = outcome.results
                failed_moves = {
                    (result.transfer.tag, result.transfer.src, result.transfer.dst)
                    for result in results
                    if result.failed
                }
                retries = outcome.retries
                abandoned_bytes = outcome.abandoned_bytes
            else:
                results = scheduler.simulate(transfers) if transfers else []
                failed_moves = set()
                retries = 0
                abandoned_bytes = 0.0
            report = MovementReport(
                makespan_seconds=makespan,
                within_lag=fits,
                scale_factor=scale,
                transfers=results,
                retries=retries,
                abandoned_bytes=abandoned_bytes,
            )
            for (dataset, src, dst), records in selection.items():
                if not records or (dataset, src, dst) in failed_moves:
                    continue
                catalog.get(dataset).move_records(src, dst, records)
                report.moved_bytes[(dataset, src, dst)] = _bytes_of(records)
                report.moved_records[(dataset, src, dst)] = len(records)
            return report
        scale *= lag_seconds / makespan
    raise PlacementError(
        f"could not fit data movement into lag window of {lag_seconds}s "
        f"after {max_rescale_rounds} rescaling rounds"
    )


def _select_all(
    catalog: DatasetCatalog,
    plan: PlacementPlan,
    key_indices: Mapping[str, Sequence[int]],
    scale: float,
    rng,
) -> Dict[Tuple[str, str, str], List[Record]]:
    selection: Dict[Tuple[str, str, str], List[Record]] = {}
    # Track records already claimed per (dataset, src) so overlapping
    # moves from one source never pick the same record twice.
    claimed: Dict[Tuple[str, str], Set[int]] = {}
    for (dataset_id, src, dst), budget in sorted(plan.moves.items()):
        dataset = catalog.get(dataset_id)
        indices = list(key_indices.get(dataset_id, ()))
        if not indices:
            raise PlacementError(f"no key indices registered for {dataset_id!r}")
        taken = claimed.setdefault((dataset_id, src), set())
        available = [
            record for record in dataset.shard(src) if id(record) not in taken
        ]
        destination_keys = {
            record.key(indices) for record in dataset.shard(dst)
        }
        records = select_records(
            available,
            budget * scale,
            indices,
            plan.policy,
            destination_keys,
            rng,
        )
        taken.update(id(record) for record in records)
        selection[(dataset_id, src, dst)] = records
    return selection


def _bytes_of(records: Sequence[Record]) -> float:
    return float(sum(record.size_bytes for record in records))
