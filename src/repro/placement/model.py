"""The placement problem: Table 1's notation as a validated value object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.errors import PlacementError
from repro.wan.topology import WanTopology


@dataclass
class PlacementProblem:
    """Inputs to data/task placement for a batch of datasets.

    Attributes (matching Table 1)
    -----------------------------
    topology:
        Sites with uplink :math:`U_i` and downlink :math:`D_i`.
    input_bytes:
        :math:`I_i^a` — dataset → site → original input bytes.
    reduction_ratio:
        :math:`R^a` — dataset → intermediate/input ratio after the map.
    similarity:
        :math:`S_i^a` — dataset → site → local similarity (the fraction
        of intermediate data the combiner removes).
    lag_seconds:
        :math:`T` — the window between recurring query arrivals in which
        data movement must finish.
    mobility:
        Optional per-dataset cap on the *fraction* of a site's data that
        may move along each (src, dst) pair: Bohr only moves data that
        the destination's combiner can absorb, and the probe-measured
        cross-site similarity :math:`S^a_{i,j}` bounds how much of site
        i's data that is.  Missing pairs default to fully mobile (1.0) —
        the similarity-agnostic behaviour of prior work.
    """

    topology: WanTopology
    input_bytes: Dict[str, Dict[str, float]]
    reduction_ratio: Dict[str, float]
    similarity: Dict[str, Dict[str, float]]
    lag_seconds: float
    mobility: Dict[str, Dict[Tuple[str, str], float]] = field(default_factory=dict)
    #: :math:`S^a_{i,j}` of Table 1 — similarity between sites i and j for
    #: dataset a, i.e. the fraction of i's data that j's combiner absorbs
    #: when it moves there.  Missing pairs default to 0.0 (inflow fully
    #: adds to the destination's shuffle volume).
    cross_similarity: Dict[str, Dict[Tuple[str, str], float]] = field(
        default_factory=dict
    )
    #: Optional per-site aggregate reduce-compute rate (bytes/second).
    #: When present, the task LP also bounds each site's reduce-processing
    #: time — the compute-constraint extension §5 names as future work
    #: (cf. Tetrium [22]).  Empty = compute is abundant (the paper's
    #: default assumption).
    compute_bps: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.topology.validate()
        if self.lag_seconds <= 0:
            raise PlacementError("lag_seconds (T) must be > 0")
        if not self.input_bytes:
            raise PlacementError("placement problem needs at least one dataset")
        sites = set(self.topology.site_names)
        for dataset_id, per_site in self.input_bytes.items():
            if dataset_id not in self.reduction_ratio:
                raise PlacementError(f"missing reduction ratio for {dataset_id!r}")
            ratio = self.reduction_ratio[dataset_id]
            if not 0.0 < ratio <= 1.0:
                raise PlacementError(
                    f"reduction ratio of {dataset_id!r} must be in (0, 1], got {ratio}"
                )
            unknown = set(per_site) - sites
            if unknown:
                raise PlacementError(
                    f"dataset {dataset_id!r} references unknown sites {sorted(unknown)}"
                )
            for site, value in per_site.items():
                if value < 0:
                    raise PlacementError(
                        f"I[{dataset_id!r}][{site!r}] must be >= 0, got {value}"
                    )
            sims = self.similarity.get(dataset_id, {})
            for site, value in sims.items():
                if not 0.0 <= value < 1.0:
                    raise PlacementError(
                        f"S[{dataset_id!r}][{site!r}] must be in [0, 1), got {value}"
                    )
        for site, rate in self.compute_bps.items():
            if site not in sites:
                raise PlacementError(f"compute_bps names unknown site {site!r}")
            if rate <= 0:
                raise PlacementError(
                    f"compute_bps[{site!r}] must be > 0, got {rate}"
                )
        for label, table in (("mobility", self.mobility),
                             ("cross_similarity", self.cross_similarity)):
            for dataset_id, pairs in table.items():
                for (src, dst), fraction in pairs.items():
                    if src not in sites or dst not in sites:
                        raise PlacementError(
                            f"{label}[{dataset_id!r}] names unknown sites "
                            f"({src}, {dst})"
                        )
                    if not 0.0 <= fraction <= 1.0:
                        raise PlacementError(
                            f"{label}[{dataset_id!r}][{(src, dst)}] must be in "
                            f"[0, 1], got {fraction}"
                        )

    # ------------------------------------------------------------------

    @property
    def dataset_ids(self) -> List[str]:
        return list(self.input_bytes.keys())

    @property
    def site_names(self) -> List[str]:
        return self.topology.site_names

    def I(self, dataset_id: str, site: str) -> float:  # noqa: E743 - Table 1 name
        return self.input_bytes.get(dataset_id, {}).get(site, 0.0)

    def R(self, dataset_id: str) -> float:
        return self.reduction_ratio[dataset_id]

    def S(self, dataset_id: str, site: str) -> float:
        return self.similarity.get(dataset_id, {}).get(site, 0.0)

    def mobility_cap(self, dataset_id: str, src: str, dst: str) -> float:
        """Max fraction of I_src^a that may move to dst (default 1.0)."""
        return self.mobility.get(dataset_id, {}).get((src, dst), 1.0)

    def Sij(self, dataset_id: str, src: str, dst: str) -> float:
        """:math:`S^a_{i,j}`: how much of src's data dst absorbs (default 0)."""
        return self.cross_similarity.get(dataset_id, {}).get((src, dst), 0.0)

    def U(self, site: str) -> float:
        return self.topology.uplink(site)

    def D(self, site: str) -> float:
        return self.topology.downlink(site)

    def shuffle_bytes(
        self, dataset_id: str, site: str, moves: Mapping[tuple, float]
    ) -> float:
        """:math:`f_i^a(x^a)` given moves ``{(i, j): bytes}``.

        Equation (1) refined with Table 1's cross-site similarity: data
        staying local combines at the local rate :math:`(1 - S_i^a)`;
        inflow from k combines at the pair's measured rate
        :math:`(1 - S^a_{k,i})` — with no similarity knowledge
        (:math:`S_{k,i} = 0`) this reduces exactly to equation (1).
        """
        moved_out = sum(
            volume
            for (src, _dst), volume in moves.items()
            if src == site
        )
        local = (self.I(dataset_id, site) - moved_out) * (
            1.0 - self.S(dataset_id, site)
        )
        inflow = sum(
            volume * (1.0 - self.Sij(dataset_id, src, site))
            for (src, dst), volume in moves.items()
            if dst == site
        )
        return (local + inflow) * self.R(dataset_id)

    def in_place_shuffle_bytes(self, dataset_id: str, site: str) -> float:
        """:math:`f_i^a` with no movement at all."""
        return self.shuffle_bytes(dataset_id, site, {})

    def total_input_at(self, site: str) -> float:
        return sum(self.I(dataset_id, site) for dataset_id in self.dataset_ids)

    def bottleneck_site(self) -> str:
        """Site with the largest intermediate upload time, in place."""
        def upload_time(site: str) -> float:
            total = sum(
                self.in_place_shuffle_bytes(dataset_id, site)
                for dataset_id in self.dataset_ids
            )
            return total / self.U(site)

        return max(self.site_names, key=upload_time)
