"""The §1 baseline placements: central aggregation and vanilla in-place.

Centralized aggregation ships every byte to one hub site and runs the
whole query there — the strawman the paper's introduction dismisses for
its bandwidth and delay cost.  In-place is stock Spark: data stays where
it was generated and reduce tasks spread uniformly.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.placement.joint import PlacementDecision
from repro.placement.lp import Moves, shuffle_bytes_after_moves
from repro.placement.model import PlacementProblem


def evaluate_shuffle_time(
    problem: PlacementProblem,
    moves: Moves,
    fractions: Mapping[str, float],
) -> float:
    """The objective t of equation (2) for a *given* placement.

    Evaluates constraints (3) and (4) at the point and returns the
    binding maximum — the shuffle-time bound the LP would assign to this
    solution.
    """
    volumes = shuffle_bytes_after_moves(problem, moves)
    worst = 0.0
    for site in problem.site_names:
        r_i = fractions.get(site, 0.0)
        upload = (1.0 - r_i) * volumes[site] / problem.U(site)
        inbound = sum(
            volumes[other] for other in problem.site_names if other != site
        )
        download = r_i * inbound / problem.D(site)
        worst = max(worst, upload, download)
    return worst


class CentralizedPlanner:
    """Aggregate everything at the best-connected hub site."""

    def __init__(self, hub: "str | None" = None) -> None:
        self.hub = hub

    def plan(self, problem: PlacementProblem) -> PlacementDecision:
        sites = problem.site_names
        hub = self.hub or max(sites, key=problem.D)
        if hub not in sites:
            from repro.errors import PlacementError

            raise PlacementError(f"hub {hub!r} is not a site of the problem")
        moves: Moves = {}
        for dataset_id in problem.dataset_ids:
            for site in sites:
                held = problem.I(dataset_id, site)
                if site != hub and held > 0:
                    moves[(dataset_id, site, hub)] = held
        fractions: Dict[str, float] = {
            site: (1.0 if site == hub else 0.0) for site in sites
        }
        return PlacementDecision(
            moves=moves,
            reduce_fractions=fractions,
            estimated_shuffle_seconds=evaluate_shuffle_time(
                problem, moves, fractions
            ),
            solve_seconds=0.0,
            planner="centralized",
            details={"hub": hub},  # type: ignore[dict-item]
        )


class InPlacePlanner:
    """Stock Spark: no movement, uniform reduce-task spread."""

    def plan(self, problem: PlacementProblem) -> PlacementDecision:
        sites = problem.site_names
        fractions = {site: 1.0 / len(sites) for site in sites}
        return PlacementDecision(
            moves={},
            reduce_fractions=fractions,
            estimated_shuffle_seconds=evaluate_shuffle_time(
                problem, {}, fractions
            ),
            solve_seconds=0.0,
            planner="in-place",
        )