"""The placement linear programs (equations (2)–(7)).

The full joint problem couples the bilinear terms :math:`r_i \\cdot
x^a_{i,j}`, so it is solved by alternating two exact LPs:

- :func:`solve_data_lp` — optimal data movement :math:`x^a_{i,j}` for a
  *fixed* task placement :math:`r` (constraints (3)–(6) plus the implicit
  bound that a site cannot move out more than it holds);
- :func:`solve_task_lp` — optimal task placement :math:`r` for *fixed*
  per-site shuffle volumes :math:`F_i` (constraints (3), (4), (7)).

Both minimize the same t, so alternation monotonically improves the
objective; :class:`~repro.placement.joint.JointPlanner` drives it to a
fixed point.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import PlacementError
from repro.placement.model import PlacementProblem
from repro.placement.solver import LinearProgram, LpSolution, solve_lp

#: A data movement decision: (dataset, src_site, dst_site) -> bytes.
Moves = Dict[Tuple[str, str, str], float]

_EPS_BYTES = 1e-6


def solve_data_lp(
    problem: PlacementProblem,
    reduce_fractions: Mapping[str, float],
    backend: str = "auto",
) -> Tuple[Moves, float, LpSolution]:
    """Optimal data movement given fixed reduce fractions.

    Returns ``(moves, t, solution)`` where t is the optimized shuffle
    time bound of equation (2).
    """
    sites = problem.site_names
    datasets = problem.dataset_ids
    pairs = [(i, j) for i in sites for j in sites if i != j]
    var_names = ["t"] + [f"x[{a}][{i}->{j}]" for a in datasets for (i, j) in pairs]
    index_of = {name: position for position, name in enumerate(var_names)}
    num_vars = len(var_names)

    def x_index(dataset: str, src: str, dst: str) -> int:
        return index_of[f"x[{dataset}][{src}->{dst}]"]

    rows: List[np.ndarray] = []
    bounds: List[float] = []

    def coefficient_row() -> np.ndarray:
        return np.zeros(num_vars)

    def add_f_terms(
        row: np.ndarray, a: str, site: str, scale: float
    ) -> float:
        """Add scale * f_site^a(x) to the row; returns the constant part.

        f_i^a = R^a[(I_i - sum_j x_ij)(1 - S_i) + sum_k x_ki (1 - S_ki)].
        """
        local_k = problem.R(a) * (1.0 - problem.S(a, site)) * scale
        for j in sites:
            if j == site:
                continue
            row[x_index(a, site, j)] -= local_k  # moving out reduces f
            inflow_k = (
                problem.R(a) * (1.0 - problem.Sij(a, j, site)) * scale
            )
            row[x_index(a, j, site)] += inflow_k  # inflow adds at pair rate
        return local_k * problem.I(a, site)

    for i in sites:
        r_i = reduce_fractions.get(i, 0.0)
        # (3): upload time of shuffle data at i.
        row = coefficient_row()
        row[0] = -1.0
        constant = 0.0
        for a in datasets:
            constant -= add_f_terms(row, a, i, (1.0 - r_i) / problem.U(i))
        rows.append(row)
        bounds.append(constant)

        # (4): download time of shuffle data at i.
        row = coefficient_row()
        row[0] = -1.0
        constant = 0.0
        for a in datasets:
            for j in sites:
                if j == i:
                    continue
                constant -= add_f_terms(row, a, j, r_i / problem.D(i))
        rows.append(row)
        bounds.append(constant)

        # (5): data movement upload within the lag.
        row = coefficient_row()
        for a in datasets:
            for j in sites:
                if j != i:
                    row[x_index(a, i, j)] = 1.0
        rows.append(row)
        bounds.append(problem.lag_seconds * problem.U(i))

        # (6): data movement download within the lag.
        row = coefficient_row()
        for a in datasets:
            for k_site in sites:
                if k_site != i:
                    row[x_index(a, k_site, i)] = 1.0
        rows.append(row)
        bounds.append(problem.lag_seconds * problem.D(i))

        # Cannot move out more than the site holds.
        for a in datasets:
            row = coefficient_row()
            for j in sites:
                if j != i:
                    row[x_index(a, i, j)] = 1.0
            rows.append(row)
            bounds.append(problem.I(a, i))

        # Similarity-aware mobility caps: only the absorbable fraction of
        # a site's data may move toward each destination (x <= I * S_ij).
        for a in datasets:
            for j in sites:
                if j == i:
                    continue
                cap = problem.mobility_cap(a, i, j)
                if cap >= 1.0:
                    continue
                row = coefficient_row()
                row[x_index(a, i, j)] = 1.0
                rows.append(row)
                bounds.append(problem.I(a, i) * cap)

    objective = np.zeros(num_vars)
    objective[0] = 1.0
    program = LinearProgram(
        c=objective,
        a_ub=np.vstack(rows),
        b_ub=np.asarray(bounds),
        variable_names=var_names,
    )
    solution = solve_lp(program, backend=backend)
    moves: Moves = {}
    for a in datasets:
        for (i, j) in pairs:
            volume = float(solution.x[x_index(a, i, j)])
            if volume > _EPS_BYTES:
                moves[(a, i, j)] = volume
    return moves, float(solution.x[0]), solution


def solve_task_lp(
    shuffle_bytes: Mapping[str, float],
    problem: PlacementProblem,
    backend: str = "auto",
    warm_names: "Optional[List[str]]" = None,
) -> Tuple[Dict[str, float], float, LpSolution]:
    """Optimal reduce fractions given fixed per-site shuffle volumes F_i.

    Returns ``(reduce_fractions, t, solution)``.  ``warm_names`` seeds
    the simplex backend's starting basis — pass an incumbent solution's
    ``basis_names`` (e.g. restricted to surviving sites on a degraded
    replan); names absent from this program's variables are ignored.
    """
    sites = problem.site_names
    missing = set(shuffle_bytes) - set(sites)
    if missing:
        raise PlacementError(f"shuffle bytes reference unknown sites {sorted(missing)}")
    var_names = ["t"] + [f"r[{site}]" for site in sites]
    num_vars = len(var_names)

    total_volume = sum(shuffle_bytes.get(site, 0.0) for site in sites)
    rows: List[np.ndarray] = []
    bounds: List[float] = []
    for position, site in enumerate(sites):
        f_i = shuffle_bytes.get(site, 0.0)
        # (3): (1 - r_i) F_i / U_i <= t
        row = np.zeros(num_vars)
        row[0] = -1.0
        row[1 + position] = -f_i / problem.U(site)
        rows.append(row)
        bounds.append(-f_i / problem.U(site))
        # (4): r_i * sum_{j != i} F_j / D_i <= t
        inbound = sum(
            shuffle_bytes.get(other, 0.0) for other in sites if other != site
        )
        row = np.zeros(num_vars)
        row[0] = -1.0
        row[1 + position] = inbound / problem.D(site)
        rows.append(row)
        bounds.append(0.0)
        # Compute-constraint extension: reduce-processing time at i,
        # r_i * (total intermediate) / C_i <= t, when C_i is known.
        compute_rate = problem.compute_bps.get(site)
        if compute_rate and total_volume > 0:
            row = np.zeros(num_vars)
            row[0] = -1.0
            row[1 + position] = total_volume / compute_rate
            rows.append(row)
            bounds.append(0.0)

    equality = np.zeros((1, num_vars))
    equality[0, 1:] = 1.0
    objective = np.zeros(num_vars)
    objective[0] = 1.0
    program = LinearProgram(
        c=objective,
        a_ub=np.vstack(rows),
        b_ub=np.asarray(bounds),
        a_eq=equality,
        b_eq=np.asarray([1.0]),
        variable_names=var_names,
    )
    solution = solve_lp(program, backend=backend, warm_names=warm_names)
    fractions = {
        site: max(0.0, float(solution.x[1 + position]))
        for position, site in enumerate(sites)
    }
    total = sum(fractions.values())
    if total <= 0:
        raise PlacementError("task LP returned all-zero fractions")
    fractions = {site: value / total for site, value in fractions.items()}
    return fractions, float(solution.x[0]), solution


def shuffle_bytes_after_moves(problem: PlacementProblem, moves: Moves) -> Dict[str, float]:
    """Per-site total shuffle volume F_i = sum_a f_i^a(x) given moves."""
    totals: Dict[str, float] = {site: 0.0 for site in problem.site_names}
    for a in problem.dataset_ids:
        per_dataset = {
            (src, dst): volume
            for (dataset, src, dst), volume in moves.items()
            if dataset == a
        }
        for site in problem.site_names:
            totals[site] += problem.shuffle_bytes(a, site, per_dataset)
    return totals
