"""Bohr's joint data and task placement (§5).

Alternates the two exact LPs of :mod:`repro.placement.lp` until the
shuffle-time bound t stops improving.  Each alternation step can only
lower (or keep) t, so the loop terminates; in practice two or three
rounds suffice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.placement.lp import (
    Moves,
    shuffle_bytes_after_moves,
    solve_data_lp,
    solve_task_lp,
)
from repro.placement.model import PlacementProblem


@dataclass
class PlacementDecision:
    """Outcome of a planning run (joint or heuristic)."""

    moves: Moves
    reduce_fractions: Dict[str, float]
    estimated_shuffle_seconds: float
    solve_seconds: float
    iterations: int = 1
    planner: str = ""
    details: Dict[str, float] = field(default_factory=dict)
    #: Basis (or support) of the task LP that produced these fractions;
    #: a degraded replan restricts this to surviving sites and seeds the
    #: simplex backend's warm start from it.
    task_basis: List[str] = field(default_factory=list)

    @property
    def total_moved_bytes(self) -> float:
        return sum(self.moves.values())


class JointPlanner:
    """Similarity-aware joint data + task placement via alternating LPs."""

    def __init__(
        self,
        backend: str = "auto",
        max_rounds: int = 8,
        tolerance: float = 1e-6,
        heuristic_warm_start: bool = True,
    ) -> None:
        self.backend = backend
        self.max_rounds = max_rounds
        self.tolerance = tolerance
        # Alternation can stall in local optima of the bilinear objective;
        # seeding one start from the greedy heuristic's solution makes the
        # joint result dominate the heuristic by construction.
        self.heuristic_warm_start = heuristic_warm_start

    def plan(
        self,
        problem: PlacementProblem,
        warm_task_basis: "Optional[List[str]]" = None,
    ) -> PlacementDecision:
        """Multi-start alternating optimization.

        Alternation can stall at a fixed point of the bilinear objective
        (with r at the in-place optimum, no movement looks profitable even
        when jointly relocating data *and* tasks would win).  We therefore
        alternate from several task-placement starts — the in-place
        optimum, uniform, and one-hot at the best-connected sites — and
        keep the best (moves, fractions) pair found.

        ``warm_task_basis`` seeds the first task LP's simplex basis from
        an incumbent decision (degraded replans pass the surviving-site
        restriction of the previous plan's basis) — a solver-level hint
        that never changes which starts are explored.
        """
        # Baseline candidate: no movement, optimal in-place task placement.
        in_place = shuffle_bytes_after_moves(problem, {})
        seed_fractions, best_t, seed_solution = solve_task_lp(
            in_place, problem, backend=self.backend, warm_names=warm_task_basis
        )
        best_moves: Moves = {}
        best_fractions = dict(seed_fractions)
        best_basis = list(seed_solution.basis_names)
        solve_seconds = seed_solution.solve_seconds
        total_rounds = 0

        starts = self._starting_fractions(problem, seed_fractions)
        if self.heuristic_warm_start:
            from repro.placement.iridium import IridiumPlanner

            heuristic = IridiumPlanner(backend=self.backend).plan(problem)
            solve_seconds += heuristic.solve_seconds
            # The heuristic priced its moves similarity-blind; re-price
            # them under this problem's similarity model.
            volumes = shuffle_bytes_after_moves(problem, heuristic.moves)
            fractions_h, t_h, solution_h = solve_task_lp(
                volumes, problem, backend=self.backend
            )
            solve_seconds += solution_h.solve_seconds
            if t_h < best_t - self.tolerance:
                best_t = t_h
                best_moves = heuristic.moves
                best_fractions = dict(fractions_h)
                best_basis = list(solution_h.basis_names)
            starts.append(dict(fractions_h))

        for start in starts:
            fractions = dict(start)
            previous_t = float("inf")
            for _ in range(self.max_rounds):
                total_rounds += 1
                moves, _, data_solution = solve_data_lp(
                    problem, fractions, backend=self.backend
                )
                solve_seconds += data_solution.solve_seconds
                volumes = shuffle_bytes_after_moves(problem, moves)
                fractions, t, task_solution = solve_task_lp(
                    volumes, problem, backend=self.backend
                )
                solve_seconds += task_solution.solve_seconds
                if t < best_t - self.tolerance:
                    best_t = t
                    best_moves = moves
                    best_fractions = dict(fractions)
                    best_basis = list(task_solution.basis_names)
                if t >= previous_t - self.tolerance:
                    break
                previous_t = t
        return PlacementDecision(
            moves=best_moves,
            reduce_fractions=best_fractions,
            estimated_shuffle_seconds=best_t,
            solve_seconds=solve_seconds,
            iterations=total_rounds,
            planner="joint-lp",
            task_basis=best_basis,
        )

    @staticmethod
    def _starting_fractions(
        problem: PlacementProblem, seed_fractions: Dict[str, float]
    ) -> "list[Dict[str, float]]":
        sites = problem.site_names
        uniform = {site: 1.0 / len(sites) for site in sites}
        starts = [dict(seed_fractions), uniform]
        # One-hot starts at the two best-connected sites: they pull both
        # data and tasks toward plentiful bandwidth.
        ranked = sorted(
            sites,
            key=lambda site: -min(problem.U(site), problem.D(site)),
        )
        for site in ranked[:2]:
            starts.append({name: (1.0 if name == site else 0.0) for name in sites})
        return starts
