"""WAN substrate: geo-distributed sites, links, and transfer simulation.

The paper deploys Bohr across ten AWS EC2 regions; QCT there is dominated
by WAN shuffle transfers.  This package provides the equivalent substrate:

- :class:`~repro.wan.topology.Site` / :class:`~repro.wan.topology.WanTopology`
  describe sites with heterogeneous uplink/downlink bandwidth.
- :func:`~repro.wan.presets.ec2_ten_sites` reproduces the paper's setup
  (Singapore/Tokyo/Oregon 5x faster than the slowest tier, §8.1).
- :class:`~repro.wan.transfer.TransferScheduler` simulates concurrent
  transfers with max-min fair bandwidth sharing (progressive filling).
- :class:`~repro.wan.estimator.BandwidthEstimator` implements the periodic
  bandwidth estimation described in §7.
"""

from repro.wan.estimator import BandwidthEstimator
from repro.wan.presets import ec2_ten_sites, uniform_sites
from repro.wan.topology import Site, WanTopology
from repro.wan.transfer import Transfer, TransferResult, TransferScheduler
from repro.wan.variability import (
    BandwidthProfile,
    diurnal_profile,
    random_walk_profile,
)

__all__ = [
    "BandwidthEstimator",
    "BandwidthProfile",
    "Site",
    "Transfer",
    "TransferResult",
    "TransferScheduler",
    "WanTopology",
    "diurnal_profile",
    "ec2_ten_sites",
    "random_walk_profile",
    "uniform_sites",
]
