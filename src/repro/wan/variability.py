"""Time-varying WAN bandwidth (§2.1).

"WAN bandwidth is scarce and highly variable across sites."  A
:class:`BandwidthProfile` is a piecewise-constant multiplier applied to
a site's nominal link capacity; the transfer scheduler integrates flows
through the changing capacity exactly (rates are recomputed at every
profile epoch).  Ready-made generators produce diurnal patterns and
bounded random walks, which is how production WAN capacity actually
drifts at the minutes granularity the paper's estimator assumes.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class BandwidthProfile:
    """Piecewise-constant capacity multiplier over time.

    ``epochs`` is a sorted list of ``(start_time, multiplier)`` pairs;
    the first epoch must start at 0 and every multiplier must be > 0
    (links degrade, they do not vanish).
    """

    epochs: Tuple[Tuple[float, float], ...]
    #: Epoch start times, precomputed once: ``multiplier_at`` sits inside
    #: the transfer scheduler's progressive-filling inner loop, and
    #: rebuilding this list per call dominated profile lookups.
    _starts: Tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.epochs:
            raise TopologyError("profile needs at least one epoch")
        if self.epochs[0][0] != 0.0:  # lint: allow[R004] — exact zero-start contract on the user-supplied schedule
            raise TopologyError("first epoch must start at time 0")
        previous = -math.inf
        for start, multiplier in self.epochs:
            if start <= previous:
                raise TopologyError("epoch start times must strictly increase")
            if multiplier <= 0:
                raise TopologyError(f"multiplier must be > 0, got {multiplier}")
            previous = start
        object.__setattr__(
            self, "_starts", tuple(start for start, _ in self.epochs)
        )

    @classmethod
    def constant(cls, multiplier: float = 1.0) -> "BandwidthProfile":
        return cls(epochs=((0.0, multiplier),))

    @classmethod
    def steps(cls, pairs: Sequence[Tuple[float, float]]) -> "BandwidthProfile":
        return cls(epochs=tuple(pairs))

    def multiplier_at(self, now: float) -> float:
        """Capacity multiplier in effect at time ``now``."""
        index = bisect.bisect_right(self._starts, now) - 1
        if index < 0:
            index = 0
        return self.epochs[index][1]

    def next_change_after(self, now: float) -> Optional[float]:
        """Start time of the next epoch strictly after ``now``."""
        for start, _ in self.epochs:
            if start > now + 1e-12:
                return start
        return None


def diurnal_profile(
    period: float = 86_400.0,
    low: float = 0.5,
    high: float = 1.0,
    steps_per_period: int = 24,
    num_periods: int = 2,
    phase: float = 0.0,
) -> BandwidthProfile:
    """Step approximation of a sinusoidal day/night capacity swing."""
    if not 0 < low <= high:
        raise TopologyError("need 0 < low <= high")
    if steps_per_period < 2 or num_periods < 1:
        raise TopologyError("need >= 2 steps per period and >= 1 period")
    epochs: List[Tuple[float, float]] = []
    step = period / steps_per_period
    mid = (high + low) / 2.0
    amplitude = (high - low) / 2.0
    for index in range(steps_per_period * num_periods):
        start = index * step
        angle = 2.0 * math.pi * (start / period) + phase
        epochs.append((start, mid + amplitude * math.sin(angle)))
    return BandwidthProfile.steps(epochs)


def random_walk_profile(
    duration: float,
    step_seconds: float,
    low: float = 0.4,
    high: float = 1.0,
    volatility: float = 0.1,
    seed: int = 7,
) -> BandwidthProfile:
    """Bounded random walk: each step multiplies by (1 ± volatility)."""
    if duration <= 0 or step_seconds <= 0:
        raise TopologyError("duration and step_seconds must be > 0")
    if not 0 < low <= high:
        raise TopologyError("need 0 < low <= high")
    rng = derive_rng(seed, "bandwidth-walk")
    epochs: List[Tuple[float, float]] = []
    value = (low + high) / 2.0
    now = 0.0
    while now < duration:
        epochs.append((now, value))
        value *= 1.0 + volatility * (2.0 * rng.random() - 1.0)
        value = min(high, max(low, value))
        now += step_seconds
    return BandwidthProfile.steps(epochs)
