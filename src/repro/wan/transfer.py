"""Concurrent WAN transfer simulation with max-min fair sharing.

Every transfer between two sites crosses the source site's uplink and the
destination site's downlink (§5's bottleneck model).  When several
transfers share a link they split its bandwidth max-min fairly, which is
what TCP flows through a common bottleneck approximate.  The simulator is
event driven (progressive filling recomputed at every arrival/completion),
so staged transfer plans — data movement before the query, shuffle during
it — get accurate finish times.

Intra-site transfers never touch the WAN; they proceed at the site's LAN
rate without modelled contention.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError
from repro.obs import instrument
from repro.wan.topology import WanTopology

#: Resource key: ("up"|"down", site_name).
_Resource = Tuple[str, str]

_EPSILON_BYTES = 1e-6
_EPSILON_TIME = 1e-12


@dataclass(frozen=True)
class Transfer:
    """A single point-to-point data transfer request."""

    src: str
    dst: str
    num_bytes: float
    start_time: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise TopologyError(f"transfer bytes must be >= 0, got {self.num_bytes}")
        if self.start_time < 0:
            raise TopologyError("transfer start_time must be >= 0")


@dataclass(frozen=True)
class TransferResult:
    """Completion record for one transfer."""

    transfer: Transfer
    finish_time: float

    @property
    def duration(self) -> float:
        return self.finish_time - self.transfer.start_time

    @property
    def throughput_bps(self) -> float:
        """Average achieved throughput; 0 for empty transfers."""
        if self.duration <= 0:
            return 0.0
        return self.transfer.num_bytes / self.duration


@dataclass
class _Flow:
    flow_id: int
    transfer: Transfer
    remaining: float
    rate: float = 0.0


class TransferScheduler:
    """Simulates a batch of transfers over a :class:`WanTopology`.

    The scheduler is stateless across :meth:`simulate` calls; each call
    simulates an independent epoch starting at time zero.
    """

    def __init__(
        self,
        topology: WanTopology,
        lan_bps: float = 10.0e9,
        profiles: "Optional[Dict[str, object]]" = None,
        propagation_seconds: float = 0.0,
    ) -> None:
        """``profiles`` optionally maps site name to a
        :class:`~repro.wan.variability.BandwidthProfile` scaling both its
        uplink and downlink over time (§2.1's bandwidth variability).

        ``propagation_seconds`` adds a fixed one-way WAN latency to every
        inter-site transfer (data only starts landing after it), modelling
        the propagation delay of intercontinental paths; intra-site
        transfers are unaffected.
        """
        if lan_bps <= 0:
            raise TopologyError("lan_bps must be > 0")
        if propagation_seconds < 0:
            raise TopologyError("propagation_seconds must be >= 0")
        self.topology = topology
        self.lan_bps = lan_bps
        self.profiles = profiles or {}
        self.propagation_seconds = propagation_seconds
        unknown = set(self.profiles) - set(topology.site_names)
        if unknown:
            raise TopologyError(f"profiles name unknown sites {sorted(unknown)}")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def simulate(self, transfers: Sequence[Transfer]) -> List[TransferResult]:
        """Simulate all transfers; returns results in input order."""
        obs = instrument.current()
        with obs.tracer.span(
            "wan-simulate", stage="wan", transfers=len(transfers)
        ):
            results, filling_rounds = self._simulate(transfers)
        if obs.metrics.enabled:
            obs.metrics.counter("wan_simulations").inc()
            obs.metrics.counter("wan_filling_rounds").inc(filling_rounds)
            obs.metrics.counter("wan_transfers").inc(len(transfers))
            for result in results:
                if result.transfer.src != result.transfer.dst:
                    obs.metrics.counter(
                        "wan_bytes",
                        src=result.transfer.src,
                        dst=result.transfer.dst,
                    ).inc(result.transfer.num_bytes)
        return results

    def _simulate(
        self, transfers: Sequence[Transfer]
    ) -> Tuple[List[TransferResult], int]:
        """The event loop; returns results plus progressive-filling rounds."""
        self._check_sites(transfers)
        sanitizer = instrument.current().sanitizer
        counter = itertools.count()
        flows = [
            _Flow(flow_id=next(counter), transfer=transfer, remaining=transfer.num_bytes)
            for transfer in transfers
        ]
        pending = sorted(
            flows,
            key=lambda flow: (self._effective_start(flow.transfer), flow.flow_id),
        )
        active: List[_Flow] = []
        finish_times: Dict[int, float] = {}
        now = 0.0
        last_now = 0.0
        filling_rounds = 0

        while pending or active:
            if not active:
                now = max(now, self._effective_start(pending[0].transfer))
            # Admit every flow whose (latency-adjusted) start has arrived.
            while (
                pending
                and self._effective_start(pending[0].transfer)
                <= now + _EPSILON_TIME
            ):
                flow = pending.pop(0)
                if flow.remaining <= _EPSILON_BYTES:
                    finish_times[flow.flow_id] = max(
                        now, self._effective_start(flow.transfer)
                    )
                else:
                    active.append(flow)
            if not active:
                continue

            self._assign_rates(active, now)
            filling_rounds += 1
            horizon = self._next_event_in(active, pending, now)
            next_epoch = self._next_profile_change(now)
            if next_epoch is not None:
                horizon = min(horizon, max(next_epoch - now, _EPSILON_TIME))
            for flow in active:
                flow.remaining -= flow.rate * horizon
            now += horizon
            if sanitizer.enabled:
                sanitizer.check_clock(last_now, now, where="wan-filling")
            last_now = now

            still_active: List[_Flow] = []
            for flow in active:
                if flow.remaining <= _EPSILON_BYTES:
                    finish_times[flow.flow_id] = now
                else:
                    still_active.append(flow)
            active = still_active

        return (
            [
                TransferResult(
                    transfer=flow.transfer, finish_time=finish_times[flow.flow_id]
                )
                for flow in flows
            ],
            filling_rounds,
        )

    def makespan(self, transfers: Sequence[Transfer]) -> float:
        """Time at which the last transfer completes (0.0 for none)."""
        results = self.simulate(transfers)
        if not results:
            return 0.0
        return max(result.finish_time for result in results)

    def serial_time(self, transfers: Sequence[Transfer]) -> float:
        """Naive lower-level baseline: run the transfers one at a time.

        Used by the WAN-fairness ablation bench to show what ignoring link
        sharing would predict.
        """
        now = 0.0
        for transfer in transfers:
            now = max(now, transfer.start_time)
            if transfer.src == transfer.dst:
                now += transfer.num_bytes / self.lan_bps
                continue
            rate = min(
                self.topology.uplink(transfer.src), self.topology.downlink(transfer.dst)
            )
            now += transfer.num_bytes / rate
        return now

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _effective_start(self, transfer: Transfer) -> float:
        """Requested start plus WAN propagation for inter-site transfers."""
        if transfer.src == transfer.dst:
            return transfer.start_time
        return transfer.start_time + self.propagation_seconds

    def _check_sites(self, transfers: Sequence[Transfer]) -> None:
        for transfer in transfers:
            if transfer.src not in self.topology:
                raise TopologyError(f"unknown source site {transfer.src!r}")
            if transfer.dst not in self.topology:
                raise TopologyError(f"unknown destination site {transfer.dst!r}")

    def _capacity_multiplier(self, site: str, now: float) -> float:
        profile = self.profiles.get(site)
        if profile is None:
            return 1.0
        return profile.multiplier_at(now)  # type: ignore[attr-defined]

    def _next_profile_change(self, now: float) -> Optional[float]:
        upcoming = [
            profile.next_change_after(now)  # type: ignore[attr-defined]
            for profile in self.profiles.values()
        ]
        upcoming = [epoch for epoch in upcoming if epoch is not None]
        return min(upcoming) if upcoming else None

    def _assign_rates(self, active: List[_Flow], now: float = 0.0) -> None:
        """Max-min fair (progressive filling) rate assignment."""
        wan_flows = [flow for flow in active if flow.transfer.src != flow.transfer.dst]
        for flow in active:
            if flow.transfer.src == flow.transfer.dst:
                flow.rate = self.lan_bps
        if not wan_flows:
            return

        capacity: Dict[_Resource, float] = {}
        users: Dict[_Resource, Set[int]] = {}
        flow_resources: Dict[int, Tuple[_Resource, _Resource]] = {}
        for flow in wan_flows:
            up: _Resource = ("up", flow.transfer.src)
            down: _Resource = ("down", flow.transfer.dst)
            capacity.setdefault(
                up,
                self.topology.uplink(flow.transfer.src)
                * self._capacity_multiplier(flow.transfer.src, now),
            )
            capacity.setdefault(
                down,
                self.topology.downlink(flow.transfer.dst)
                * self._capacity_multiplier(flow.transfer.dst, now),
            )
            users.setdefault(up, set()).add(flow.flow_id)
            users.setdefault(down, set()).add(flow.flow_id)
            flow_resources[flow.flow_id] = (up, down)

        unfrozen: Set[int] = {flow.flow_id for flow in wan_flows}
        rates: Dict[int, float] = {}
        while unfrozen:
            bottleneck: Optional[_Resource] = None
            bottleneck_share = math.inf
            for resource, resource_users in users.items():
                live = resource_users & unfrozen
                if not live:
                    continue
                share = capacity[resource] / len(live)
                if share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck = resource
            assert bottleneck is not None
            frozen_now = users[bottleneck] & unfrozen
            for flow_id in frozen_now:
                rates[flow_id] = bottleneck_share
                unfrozen.discard(flow_id)
                for resource in flow_resources[flow_id]:
                    capacity[resource] = max(0.0, capacity[resource] - bottleneck_share)

        for flow in wan_flows:
            flow.rate = rates[flow.flow_id]

    def _next_event_in(
        self, active: List[_Flow], pending: List[_Flow], now: float
    ) -> float:
        """Time until the next completion or arrival."""
        horizon = math.inf
        for flow in active:
            if flow.rate > 0:
                horizon = min(horizon, flow.remaining / flow.rate)
        if pending:
            horizon = min(
                horizon,
                max(self._effective_start(pending[0].transfer) - now, 0.0),
            )
        if math.isinf(horizon):
            raise TopologyError("transfer simulation stalled (all rates zero)")
        return max(horizon, _EPSILON_TIME)
