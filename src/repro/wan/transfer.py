"""Concurrent WAN transfer simulation with max-min fair sharing.

Every transfer between two sites crosses the source site's uplink and the
destination site's downlink (§5's bottleneck model).  When several
transfers share a link they split its bandwidth max-min fairly, which is
what TCP flows through a common bottleneck approximate.  The simulator is
event driven (progressive filling recomputed at every arrival/completion),
so staged transfer plans — data movement before the query, shuffle during
it — get accurate finish times.

Intra-site transfers never touch the WAN; they proceed at the site's LAN
rate without modelled contention.

Fault injection (:mod:`repro.chaos`): an optional
:class:`~repro.chaos.schedule.FaultSchedule` scales link capacity the
same way bandwidth profiles do, except its multiplier may be *zero*
(blackouts, stalls, site outages).  Flows caught in a zero-capacity
epoch **park**: they keep their queue position at rate zero and resume
when capacity returns.  Parking never trips the "all rates zero" stall
error as long as a capacity change point lies ahead; a flow parked for
longer than ``stall_timeout_seconds`` (cumulatively) fails its attempt
instead — all-or-nothing, like a dropped connection — and surfaces as a
:class:`TransferResult` with ``failed=True`` for the retry layer
(:func:`repro.chaos.runtime.simulate_with_retries`) to handle.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError
from repro.obs import instrument
from repro.wan.topology import WanTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.schedule import FaultSchedule

#: Resource key: ("up"|"down", site_name).
_Resource = Tuple[str, str]

_EPSILON_BYTES = 1e-6
_EPSILON_TIME = 1e-12


@dataclass(frozen=True)
class Transfer:
    """A single point-to-point data transfer request."""

    src: str
    dst: str
    num_bytes: float
    start_time: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise TopologyError(f"transfer bytes must be >= 0, got {self.num_bytes}")
        if self.start_time < 0:
            raise TopologyError("transfer start_time must be >= 0")


@dataclass(frozen=True)
class TransferResult:
    """Completion (or failure) record for one transfer.

    ``failed`` transfers delivered nothing — the attempt timed out while
    parked at zero capacity; ``finish_time`` is then the moment the
    attempt was abandoned.  ``attempts`` counts submissions including
    this one (> 1 only for results stamped by the retry layer).
    """

    transfer: Transfer
    finish_time: float
    failed: bool = False
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.finish_time - self.transfer.start_time

    @property
    def delivered_bytes(self) -> float:
        """Bytes that actually landed: all of them, or none on failure."""
        return 0.0 if self.failed else self.transfer.num_bytes

    @property
    def throughput_bps(self) -> float:
        """Average achieved throughput; 0 for empty or failed transfers."""
        if self.duration <= 0:
            return 0.0
        return self.delivered_bytes / self.duration


@dataclass
class _Flow:
    flow_id: int
    transfer: Transfer
    remaining: float
    rate: float = 0.0
    parked_seconds: float = 0.0
    failed: bool = False
    #: Telemetry-only: whether the last round left this flow parked, so
    #: flow-park events mark episode starts rather than every round.
    was_parked: bool = False


class WanSession:
    """A resumable WAN simulation sharing one clock across submitters.

    :meth:`TransferScheduler.simulate` runs one batch to completion and
    resets; a session instead stays open so *independent queries* can
    keep injecting flows while earlier flows are still in flight — the
    substrate of the concurrent serving layer (:mod:`repro.serve`).
    Flows from every submitter contend for the same uplink/downlink
    capacity epochs under the same max-min fair filling the batch path
    uses; in fact the batch path is this class run to drain, so the two
    cannot diverge.

    Protocol::

        session = WanSession(scheduler)
        session.submit(first_query_flows)          # start >= session.now
        done = session.advance(limit=next_event_t) # completions <= limit
        session.submit(second_query_flows)         # mid-flight injection
        done += session.advance()                  # drain

    ``advance`` stops at the first round that completes flows (so the
    caller can react — e.g. start a reduce stage — before the clock
    moves on), at ``limit``, or when the session drains.  Completions
    are returned as :class:`TransferResult` in flow-submission order
    within each call.
    """

    def __init__(self, scheduler: "TransferScheduler") -> None:
        self.scheduler = scheduler
        self.now = 0.0
        self.filling_rounds = 0
        self.parked_seconds = 0.0
        self._counter = itertools.count()
        self._pending: List[_Flow] = []
        self._head = 0
        self._active: List[_Flow] = []
        self._flows: List[_Flow] = []
        self._finish_times: Dict[int, float] = {}
        self._last_now = 0.0
        # Telemetry coalescing state (see _emit_round_samples).
        self._site_multipliers: Dict[str, float] = {}
        self._pending_samples: Dict[_Resource, List[float]] = {}

    @property
    def drained(self) -> bool:
        """True when no pending or in-flight flow remains."""
        return self._head >= len(self._pending) and not self._active

    def submit(self, transfers: Sequence[Transfer]) -> None:
        """Inject flows; every effective start must be >= ``now``."""
        scheduler = self.scheduler
        scheduler._check_sites(transfers)
        telemetry = instrument.current().telemetry
        flows = [
            _Flow(
                flow_id=next(self._counter),
                transfer=transfer,
                remaining=transfer.num_bytes,
            )
            for transfer in transfers
        ]
        for flow in flows:
            if scheduler._effective_start(flow.transfer) < self.now - _EPSILON_TIME:
                raise TopologyError(
                    f"flow {flow.transfer.src}->{flow.transfer.dst} starts at "
                    f"{scheduler._effective_start(flow.transfer)} but the "
                    f"session clock is already at {self.now}"
                )
        self._flows.extend(flows)
        self._pending = self._pending[self._head:] + flows
        self._pending.sort(
            key=lambda flow: (
                scheduler._effective_start(flow.transfer),
                flow.flow_id,
            )
        )
        self._head = 0
        if telemetry.enabled:
            # A submission can change per-link occupancy mid-segment;
            # flush so coalesced samples never span the injection point.
            self.scheduler._flush_link_samples(telemetry, self._pending_samples)

    def advance(
        self, limit: float = math.inf, stop_on_completion: bool = True
    ) -> List[TransferResult]:
        """Run filling rounds until ``limit``, a completion, or drain.

        Returns the flows that finished (or failed their stall attempt)
        during this call, in submission order.  The session clock ends at
        ``min(limit, drain time)`` unless a completion stopped it first.
        """
        scheduler = self.scheduler
        obs = instrument.current()
        sanitizer = obs.sanitizer
        telemetry = obs.telemetry
        pending = self._pending
        active = self._active
        finish_times = self._finish_times
        completed: List[int] = []

        while self._head < len(pending) or active:
            now = self.now
            if not active:
                next_start = scheduler._effective_start(
                    pending[self._head].transfer
                )
                if next_start >= limit - _EPSILON_TIME and next_start > now:
                    break
                now = max(now, next_start)
                self.now = now
            # Admit every flow whose (latency-adjusted) start has arrived.
            while (
                self._head < len(pending)
                and scheduler._effective_start(pending[self._head].transfer)
                <= now + _EPSILON_TIME
            ):
                flow = pending[self._head]
                self._head += 1
                if telemetry.enabled:
                    telemetry.emit(
                        "flow-start",
                        t=now,
                        src=flow.transfer.src,
                        dst=flow.transfer.dst,
                        num_bytes=flow.transfer.num_bytes,
                        tag=flow.transfer.tag,
                        wan=flow.transfer.src != flow.transfer.dst,
                    )
                if flow.remaining <= _EPSILON_BYTES:
                    finish_times[flow.flow_id] = max(
                        now, scheduler._effective_start(flow.transfer)
                    )
                    completed.append(flow.flow_id)
                    if telemetry.enabled:
                        scheduler._emit_flow_finish(
                            telemetry, flow, finish_times[flow.flow_id]
                        )
                else:
                    active.append(flow)
            if not active:
                if completed and stop_on_completion:
                    break
                continue
            if now >= limit - _EPSILON_TIME:
                break

            sample: Optional[Dict[str, Any]] = (
                {} if telemetry.enabled else None
            )
            scheduler._assign_rates(active, now, sample)
            self.filling_rounds += 1
            next_arrival = (
                scheduler._effective_start(pending[self._head].transfer)
                if self._head < len(pending)
                else None
            )
            extra_bound = None if math.isinf(limit) else limit - now
            horizon = scheduler._next_event_horizon(
                active, next_arrival, now, extra_bound=extra_bound
            )
            if sample is not None:
                scheduler._emit_round_samples(
                    telemetry, sample, now, horizon, self._site_multipliers,
                    self._pending_samples,
                )
            for flow in active:
                if flow.rate > 0:
                    flow.remaining -= flow.rate * horizon
                else:
                    flow.parked_seconds += horizon
                    self.parked_seconds += horizon
            now += horizon
            self.now = now
            if sanitizer.enabled:
                sanitizer.check_clock(self._last_now, now, where="wan-filling")
            self._last_now = now

            still_active: List[_Flow] = []
            round_completed = False
            for flow in active:
                if flow.remaining <= _EPSILON_BYTES:
                    finish_times[flow.flow_id] = now
                    completed.append(flow.flow_id)
                    round_completed = True
                    if telemetry.enabled:
                        scheduler._emit_flow_finish(telemetry, flow, now)
                elif (
                    flow.rate <= 0.0
                    and flow.parked_seconds
                    >= scheduler.stall_timeout_seconds - _EPSILON_TIME
                ):
                    flow.failed = True
                    finish_times[flow.flow_id] = now
                    completed.append(flow.flow_id)
                    round_completed = True
                    if telemetry.enabled:
                        telemetry.emit(
                            "flow-fail",
                            t=now,
                            src=flow.transfer.src,
                            dst=flow.transfer.dst,
                            num_bytes=flow.transfer.num_bytes,
                            tag=flow.transfer.tag,
                            parked_seconds=flow.parked_seconds,
                        )
                else:
                    still_active.append(flow)
            active[:] = still_active
            if round_completed and stop_on_completion:
                break

        if self.drained and not completed and not math.isinf(limit):
            # Idle session: snap the clock forward so the caller's next
            # submission (at its event time == limit) is never "late".
            self.now = max(self.now, limit)
        flow_index = {flow.flow_id: flow for flow in self._flows}
        return [
            TransferResult(
                transfer=flow_index[flow_id].transfer,
                finish_time=finish_times[flow_id],
                failed=flow_index[flow_id].failed,
            )
            for flow_id in sorted(completed)
        ]

    def flush_telemetry(self) -> None:
        """Emit every pending coalesced link segment (call at drain)."""
        telemetry = instrument.current().telemetry
        if telemetry.enabled:
            self.scheduler._flush_link_samples(telemetry, self._pending_samples)

    def all_results(self) -> List[TransferResult]:
        """Results for every finished flow, in submission order."""
        return [
            TransferResult(
                transfer=flow.transfer,
                finish_time=self._finish_times[flow.flow_id],
                failed=flow.failed,
            )
            for flow in self._flows
            if flow.flow_id in self._finish_times
        ]


class TransferScheduler:
    """Simulates a batch of transfers over a :class:`WanTopology`.

    The scheduler is stateless across :meth:`simulate` calls; each call
    simulates an independent epoch starting at time zero.
    """

    def __init__(
        self,
        topology: WanTopology,
        lan_bps: float = 10.0e9,
        profiles: "Optional[Dict[str, object]]" = None,
        propagation_seconds: float = 0.0,
        faults: "Optional[FaultSchedule]" = None,
        stall_timeout_seconds: float = math.inf,
    ) -> None:
        """``profiles`` optionally maps site name to a
        :class:`~repro.wan.variability.BandwidthProfile` scaling both its
        uplink and downlink over time (§2.1's bandwidth variability).

        ``propagation_seconds`` adds a fixed one-way WAN latency to every
        inter-site transfer (data only starts landing after it), modelling
        the propagation delay of intercontinental paths; intra-site
        transfers are unaffected.

        ``faults`` optionally injects a chaos
        :class:`~repro.chaos.schedule.FaultSchedule` whose link faults
        scale capacity like profiles but may reach zero; a flow parked at
        zero capacity for ``stall_timeout_seconds`` total fails its
        attempt (the default keeps flows parked indefinitely).
        """
        if lan_bps <= 0:
            raise TopologyError("lan_bps must be > 0")
        if propagation_seconds < 0:
            raise TopologyError("propagation_seconds must be >= 0")
        if stall_timeout_seconds <= 0:
            raise TopologyError("stall_timeout_seconds must be > 0")
        self.topology = topology
        self.lan_bps = lan_bps
        self.profiles = profiles or {}
        self.propagation_seconds = propagation_seconds
        self.faults = faults
        self.stall_timeout_seconds = stall_timeout_seconds
        # True while the previous telemetry-sampled round parked flows;
        # keeps per-flow park bookkeeping off the fault-free hot path.
        self._had_parked = False
        unknown = set(self.profiles) - set(topology.site_names)
        if unknown:
            raise TopologyError(f"profiles name unknown sites {sorted(unknown)}")
        if faults is not None:
            unknown = set(faults.sites()) - set(topology.site_names)
            if unknown:
                raise TopologyError(
                    f"fault schedule names unknown sites {sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def simulate(self, transfers: Sequence[Transfer]) -> List[TransferResult]:
        """Simulate all transfers; returns results in input order."""
        obs = instrument.current()
        with obs.tracer.span(
            "wan-simulate", stage="wan", transfers=len(transfers)
        ):
            results, filling_rounds, parked_seconds = self._simulate(transfers)
        if obs.metrics.enabled:
            obs.metrics.counter("wan_simulations").inc()
            obs.metrics.counter("wan_filling_rounds").inc(filling_rounds)
            obs.metrics.counter("wan_transfers").inc(len(transfers))
            for result in results:
                if result.transfer.src != result.transfer.dst and not result.failed:
                    obs.metrics.counter(
                        "wan_bytes",
                        src=result.transfer.src,
                        dst=result.transfer.dst,
                    ).inc(result.transfer.num_bytes)
            if parked_seconds > 0:
                obs.metrics.counter("wan_fault_parked_seconds").inc(parked_seconds)
            failed = [result for result in results if result.failed]
            if failed:
                obs.metrics.counter("wan_fault_failed_transfers").inc(len(failed))
                obs.metrics.counter("wan_fault_failed_bytes").inc(
                    sum(result.transfer.num_bytes for result in failed)
                )
        return results

    def _simulate(
        self, transfers: Sequence[Transfer]
    ) -> Tuple[List[TransferResult], int, float]:
        """The batch event loop: a :class:`WanSession` run to drain.

        Returns results (in input order), progressive-filling rounds, and
        total seconds flows spent parked at zero capacity (0.0 on
        fault-free runs).  Admission walks an index cursor over the
        start-sorted flow list, so a batch of n flows admits in O(n)
        total instead of the O(n²) that popping the head of a list costs.
        """
        session = WanSession(self)
        session.submit(transfers)
        session.advance(stop_on_completion=False)
        session.flush_telemetry()
        return session.all_results(), session.filling_rounds, session.parked_seconds

    def session(self) -> WanSession:
        """Open a resumable shared-clock session (the serving substrate)."""
        return WanSession(self)

    def makespan(self, transfers: Sequence[Transfer]) -> float:
        """Time at which the last transfer completes (0.0 for none)."""
        results = self.simulate(transfers)
        if not results:
            return 0.0
        return max(result.finish_time for result in results)

    def serial_time(self, transfers: Sequence[Transfer]) -> float:
        """Naive baseline: run the transfers one at a time, in order.

        Used by the WAN-fairness ablation bench to show what ignoring link
        sharing would predict.  Each transfer starts at the later of the
        previous finish and its own *effective* start (propagation
        included), and its bytes are integrated through the same
        time-varying capacity (bandwidth profiles and fault epochs) the
        fair simulator uses — so the ablation compares fair sharing
        against a consistent serial baseline, not one running on a
        different network.
        """
        now = 0.0
        for transfer in transfers:
            start = max(now, self._effective_start(transfer))
            if transfer.src == transfer.dst:
                now = start + transfer.num_bytes / self.lan_bps
                continue
            now = self._serial_finish(transfer, start)
        return now

    def _serial_finish(self, transfer: Transfer, start: float) -> float:
        """Finish time of one WAN transfer running alone from ``start``."""
        nominal = min(
            self.topology.uplink(transfer.src), self.topology.downlink(transfer.dst)
        )
        remaining = transfer.num_bytes
        now = start
        while remaining > _EPSILON_BYTES:
            rate = nominal * min(
                self._capacity_multiplier(transfer.src, now),
                self._capacity_multiplier(transfer.dst, now),
            )
            next_change = self._next_capacity_change(now)
            if rate <= 0.0:
                if next_change is None:
                    raise TopologyError(
                        "serial transfer parked forever (capacity never returns)"
                    )
                now = next_change  # park until capacity comes back
                continue
            if next_change is None or remaining <= rate * (next_change - now):
                now += remaining / rate
                remaining = 0.0
            else:
                remaining -= rate * (next_change - now)
                now = next_change
        return now

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _effective_start(self, transfer: Transfer) -> float:
        """Requested start plus WAN propagation for inter-site transfers."""
        if transfer.src == transfer.dst:
            return transfer.start_time
        return transfer.start_time + self.propagation_seconds

    def _check_sites(self, transfers: Sequence[Transfer]) -> None:
        for transfer in transfers:
            if transfer.src not in self.topology:
                raise TopologyError(f"unknown source site {transfer.src!r}")
            if transfer.dst not in self.topology:
                raise TopologyError(f"unknown destination site {transfer.dst!r}")

    def _capacity_multiplier(self, site: str, now: float) -> float:
        """Profile multiplier × fault multiplier (may be zero under chaos)."""
        profile = self.profiles.get(site)
        multiplier = (
            1.0 if profile is None else profile.multiplier_at(now)  # type: ignore[attr-defined]
        )
        if self.faults is not None:
            multiplier *= self.faults.link_multiplier(site, now)
        return multiplier

    def effective_bps(self, site: str, direction: str, now: float) -> float:
        """True effective link capacity at ``now``: nominal × multiplier.

        The ground truth the bandwidth estimator is judged against
        (estimator-sample telemetry); ``direction`` is ``"up"`` or
        ``"down"``.
        """
        if direction == "up":
            nominal = self.topology.uplink(site)
        elif direction == "down":
            nominal = self.topology.downlink(site)
        else:
            raise TopologyError(f"direction must be 'up' or 'down', got {direction!r}")
        return nominal * self._capacity_multiplier(site, now)

    def _emit_flow_finish(self, telemetry, flow: _Flow, finish: float) -> None:
        """flow-finish telemetry, with achieved throughput over the flow."""
        start = self._effective_start(flow.transfer)
        seconds = finish - start
        throughput = flow.transfer.num_bytes / seconds if seconds > 0 else 0.0
        telemetry.emit(
            "flow-finish",
            t=finish,
            src=flow.transfer.src,
            dst=flow.transfer.dst,
            num_bytes=flow.transfer.num_bytes,
            tag=flow.transfer.tag,
            wan=flow.transfer.src != flow.transfer.dst,
            seconds=seconds,
            throughput_bps=throughput,
            parked_seconds=flow.parked_seconds,
        )

    def _emit_round_samples(
        self,
        telemetry,
        sample: Dict[str, Any],
        now: float,
        horizon: float,
        site_multipliers: Dict[str, float],
        pending_samples: Dict[_Resource, List[float]],
    ) -> None:
        """Per-round link occupancy telemetry (telemetry-on path only).

        Consumes the aggregates :meth:`_assign_rates` collected for this
        round, so the per-round cost is O(resources in use).  Link
        samples are coalesced: contiguous rounds in which a link keeps
        the same capacity and flow count extend one pending ``[start,
        end, bytes, capacity_bps, flows]`` segment (accumulating the
        bytes carried) instead of emitting per round.  A segment is
        flushed as a single link-sample whose ``used_bps`` is the
        byte-weighted mean rate over the segment — so ``used_bps`` ×
        ``dt`` still integrates to the bytes the link actually carried,
        and utilization series reconcile with the sanitizer's byte
        conservation — when the link's capacity or flow count changes,
        the link goes idle, or the simulation drains
        (:meth:`_flush_link_samples`).  Also emits capacity-epoch events
        when a site's effective multiplier changes between rounds,
        flow-park at park-episode starts, and one flows-sample per round
        with occupancy counts.
        """
        parked = sample["parked"]
        for flow in parked:
            if not flow.was_parked:
                flow.was_parked = True
                telemetry.emit(
                    "flow-park",
                    t=now,
                    src=flow.transfer.src,
                    dst=flow.transfer.dst,
                    tag=flow.transfer.tag,
                    remaining_bytes=flow.remaining,
                )
        capacities = sample["capacity"]
        residual = sample["residual"]
        users = sample["users"]
        end = now + horizon
        pending_get = pending_samples.get
        # Insertion order of the capacity map follows deterministic flow
        # order, so iteration needs no sort to stay reproducible.
        for resource, capacity in capacities.items():
            rate = capacity - residual[resource]
            flows_on = len(users[resource])
            segment = pending_get(resource)
            if (
                segment is not None
                and segment[1] == now
                and segment[3] == capacity
                and segment[4] == flows_on
            ):
                # Contiguous, same capacity, same flow count: extend the
                # segment and accumulate the bytes this round carries.
                segment[1] = end
                segment[2] += rate * horizon
                continue
            direction, site = resource
            # A multiplier change always changes capacity_bps, so epoch
            # detection only needs to run on segment breaks.
            multiplier = self._capacity_multiplier(site, now)
            if site_multipliers.get(site) != multiplier:
                site_multipliers[site] = multiplier
                telemetry.emit(
                    "capacity-epoch", t=now, site=site, multiplier=multiplier
                )
            if segment is not None:
                duration = segment[1] - segment[0]
                telemetry.emit(
                    "link-sample",
                    t=segment[0],
                    site=site,
                    direction=direction,
                    used_bps=segment[2] / duration if duration > 0 else 0.0,
                    capacity_bps=segment[3],
                    flows=int(segment[4]),
                    dt=duration,
                )
            pending_samples[resource] = [
                now, end, rate * horizon, capacity, flows_on,
            ]
        if len(pending_samples) > len(capacities):
            idle = {
                resource: pending_samples.pop(resource)
                for resource in list(pending_samples)
                if resource not in capacities
            }
            self._flush_link_samples(telemetry, idle)
        telemetry.emit(
            "flows-sample",
            t=now,
            active=sample["wan"] - len(parked),
            parked=len(parked),
            lan=sample["lan"],
            dt=horizon,
        )

    @staticmethod
    def _flush_link_samples(
        telemetry, pending_samples: Dict[_Resource, List[float]]
    ) -> None:
        """Emit every pending coalesced link segment and clear the map."""
        for (direction, site), segment in pending_samples.items():
            duration = segment[1] - segment[0]
            telemetry.emit(
                "link-sample",
                t=segment[0],
                site=site,
                direction=direction,
                used_bps=segment[2] / duration if duration > 0 else 0.0,
                capacity_bps=segment[3],
                flows=int(segment[4]),
                dt=duration,
            )
        pending_samples.clear()

    def _next_capacity_change(self, now: float) -> Optional[float]:
        """Earliest upcoming profile epoch or fault window boundary."""
        upcoming = [
            profile.next_change_after(now)  # type: ignore[attr-defined]
            for profile in self.profiles.values()
        ]
        if self.faults is not None:
            upcoming.append(self.faults.next_change_after(now))
        upcoming = [epoch for epoch in upcoming if epoch is not None]
        return min(upcoming) if upcoming else None

    def _assign_rates(
        self,
        active: List[_Flow],
        now: float = 0.0,
        sample: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Max-min fair (progressive filling) rate assignment.

        When ``sample`` (an empty dict) is passed — the telemetry-on path
        — it is filled with the per-resource aggregates link sampling
        needs: the original capacities, the residual capacities after
        filling (their difference is the carried rate, which
        water-filling leaves behind for free), per-resource flow-id
        sets, and the parked flows.  This keeps round sampling
        O(resources) instead of adding a second O(flows) pass per round;
        per-flow park bookkeeping only runs while a fault window is
        actually parking flows.
        """
        wan_flows = [flow for flow in active if flow.transfer.src != flow.transfer.dst]
        for flow in active:
            if flow.transfer.src == flow.transfer.dst:
                flow.rate = self.lan_bps
        if sample is not None:
            sample["wan"] = len(wan_flows)
            sample["lan"] = len(active) - len(wan_flows)
            sample["parked"] = []
        if not wan_flows:
            if sample is not None:
                sample["capacity"] = {}
                sample["residual"] = {}
                sample["users"] = {}
            return

        capacity: Dict[_Resource, float] = {}
        users: Dict[_Resource, Set[int]] = {}
        flow_resources: Dict[int, Tuple[_Resource, _Resource]] = {}
        for flow in wan_flows:
            up: _Resource = ("up", flow.transfer.src)
            down: _Resource = ("down", flow.transfer.dst)
            capacity.setdefault(
                up,
                self.topology.uplink(flow.transfer.src)
                * self._capacity_multiplier(flow.transfer.src, now),
            )
            capacity.setdefault(
                down,
                self.topology.downlink(flow.transfer.dst)
                * self._capacity_multiplier(flow.transfer.dst, now),
            )
            users.setdefault(up, set()).add(flow.flow_id)
            users.setdefault(down, set()).add(flow.flow_id)
            flow_resources[flow.flow_id] = (up, down)

        original_capacity = dict(capacity) if sample is not None else None
        unfrozen: Set[int] = {flow.flow_id for flow in wan_flows}
        rates: Dict[int, float] = {}
        parked_possible = False
        while unfrozen:
            bottleneck: Optional[_Resource] = None
            bottleneck_share = math.inf
            for resource, resource_users in users.items():
                live = resource_users & unfrozen
                if not live:
                    continue
                share = capacity[resource] / len(live)
                if share < bottleneck_share:
                    bottleneck_share = share
                    bottleneck = resource
            assert bottleneck is not None
            if bottleneck_share <= 0.0:
                parked_possible = True
            frozen_now = users[bottleneck] & unfrozen
            for flow_id in frozen_now:
                rates[flow_id] = bottleneck_share
                unfrozen.discard(flow_id)
                for resource in flow_resources[flow_id]:
                    capacity[resource] = max(0.0, capacity[resource] - bottleneck_share)

        if sample is None:
            for flow in wan_flows:
                flow.rate = rates[flow.flow_id]
            return
        if parked_possible or self._had_parked:
            # Fault-window path: track park episodes per flow.
            parked = sample["parked"]
            for flow in wan_flows:
                rate = rates[flow.flow_id]
                flow.rate = rate
                if rate <= 0.0:
                    parked.append(flow)
                elif flow.was_parked:
                    flow.was_parked = False
            self._had_parked = bool(parked)
        else:
            for flow in wan_flows:
                flow.rate = rates[flow.flow_id]
        sample["capacity"] = original_capacity
        sample["residual"] = capacity
        sample["users"] = users

    def _next_event_horizon(
        self,
        active: List[_Flow],
        next_arrival: Optional[float],
        now: float,
        extra_bound: Optional[float] = None,
    ) -> float:
        """Time until the next completion, arrival, capacity change, or
        park-timeout expiry.

        Parked flows (rate zero under a fault blackout) contribute no
        completion event, but an upcoming capacity change point or a
        finite stall timeout still bounds the horizon; only when *none*
        of the four event sources lies ahead is the simulation genuinely
        stuck and the stall error raised.  ``extra_bound`` (a session's
        advance limit) caps the horizon and also rescues an otherwise
        stalled round — the session will simply stop at its limit.
        """
        horizon = math.inf
        parked = False
        for flow in active:
            if flow.rate > 0:
                horizon = min(horizon, flow.remaining / flow.rate)
            else:
                parked = True
                if not math.isinf(self.stall_timeout_seconds):
                    horizon = min(
                        horizon,
                        self.stall_timeout_seconds - flow.parked_seconds,
                    )
        if next_arrival is not None:
            horizon = min(horizon, max(next_arrival - now, 0.0))
        if parked or self.profiles or self.faults is not None:
            next_change = self._next_capacity_change(now)
            if next_change is not None:
                horizon = min(horizon, next_change - now)
        if extra_bound is not None:
            horizon = min(horizon, extra_bound)
        if math.isinf(horizon):
            raise TopologyError("transfer simulation stalled (all rates zero)")
        return max(horizon, _EPSILON_TIME)
