"""Bandwidth estimation (§7).

Bohr "periodically checks the available bandwidth of each site, assuming
it is relatively stable in the granularity of minutes".  The estimator
folds observed transfer throughputs into an exponentially weighted moving
average per (site, direction) and exposes the resulting estimated
topology for the placement LP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs import instrument
from repro.wan.topology import Site, WanTopology
from repro.wan.transfer import TransferResult

_Direction = str  # "up" | "down"

#: Ground-truth capacity oracle ``(site, direction, now) -> bps`` — the
#: scheduler's :meth:`~repro.wan.transfer.TransferScheduler.effective_bps`.
TruthFn = Callable[[str, _Direction, float], float]


@dataclass
class _Ewma:
    alpha: float
    value: Optional[float] = None
    samples: int = 0

    def update(self, observation: float) -> None:
        self.samples += 1
        if self.value is None:
            self.value = observation
        else:
            self.value = self.alpha * observation + (1.0 - self.alpha) * self.value


class BandwidthEstimator:
    """EWMA estimator of per-site uplink/downlink bandwidth."""

    def __init__(self, topology: WanTopology, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.topology = topology
        self.alpha = alpha
        self._estimates: Dict[Tuple[str, _Direction], _Ewma] = {}

    def observe(self, site: str, direction: _Direction, throughput_bps: float) -> None:
        """Record one observed throughput sample for a site link."""
        if direction not in ("up", "down"):
            raise ConfigurationError(f"direction must be 'up' or 'down', got {direction!r}")
        if site not in self.topology:
            raise ConfigurationError(f"unknown site {site!r}")
        if throughput_bps <= 0:
            return  # empty / degenerate transfers carry no signal
        self._estimates.setdefault((site, direction), _Ewma(self.alpha)).update(
            throughput_bps
        )

    def observe_transfers(
        self, results: List[TransferResult], truth: Optional[TruthFn] = None
    ) -> None:
        """Fold a batch of finished transfers into the estimates.

        A WAN transfer is a sample of both its source uplink and its
        destination downlink (it may under-estimate whichever was not the
        bottleneck; the EWMA and repeated sampling wash that out, which is
        the same simplification the paper makes).

        When ``truth`` is supplied (the scheduler's effective-capacity
        oracle) and the telemetry bus is live, every sample also emits an
        estimator-sample event pairing the post-update estimate with the
        true effective capacity at the transfer's finish time — the
        estimator-error series WANify argues the planner needs.
        """
        telemetry = instrument.current().telemetry
        for result in results:
            transfer = result.transfer
            if transfer.src == transfer.dst:
                continue
            self.observe(transfer.src, "up", result.throughput_bps)
            self.observe(transfer.dst, "down", result.throughput_bps)
            if telemetry.enabled and result.throughput_bps > 0:
                for site, direction in (
                    (transfer.src, "up"),
                    (transfer.dst, "down"),
                ):
                    estimate = (
                        self.uplink(site) if direction == "up" else self.downlink(site)
                    )
                    true_bps = (
                        truth(site, direction, result.finish_time)
                        if truth is not None
                        else None
                    )
                    telemetry.emit(
                        "estimator-sample",
                        t=result.finish_time,
                        site=site,
                        direction=direction,
                        observed_bps=result.throughput_bps,
                        estimate_bps=estimate,
                        true_bps=true_bps,
                    )

    def uplink(self, site: str) -> float:
        """Estimated uplink; falls back to the configured topology value."""
        estimate = self._estimates.get((site, "up"))
        if estimate is None or estimate.value is None:
            return self.topology.uplink(site)
        return estimate.value

    def downlink(self, site: str) -> float:
        """Estimated downlink; falls back to the configured topology value."""
        estimate = self._estimates.get((site, "down"))
        if estimate is None or estimate.value is None:
            return self.topology.downlink(site)
        return estimate.value

    def sample_count(self, site: str, direction: _Direction) -> int:
        estimate = self._estimates.get((site, direction))
        return estimate.samples if estimate else 0

    def estimated_topology(self) -> WanTopology:
        """A topology whose bandwidths are the current estimates.

        The placement LP is solved against this estimated view, never the
        ground-truth simulator topology — mirroring the deployment reality
        that Bohr only sees measured bandwidth.
        """
        sites = [
            Site(
                name=site.name,
                uplink_bps=self.uplink(site.name),
                downlink_bps=self.downlink(site.name),
                compute_bps=site.compute_bps,
                machines=site.machines,
                executors_per_machine=site.executors_per_machine,
            )
            for site in self.topology
        ]
        return WanTopology.from_sites(sites)
