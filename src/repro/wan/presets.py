"""Topology presets.

§8.1 of the paper: ten EC2 regions; WAN bandwidth of Singapore, Tokyo and
Oregon is about 2.5x larger than Virginia, Ohio and Frankfurt, and 5x
larger than the rest (Seoul, Sydney, London, Ireland).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.wan.topology import Site, WanTopology

#: The ten regions used in the paper's evaluation, grouped by bandwidth tier.
FAST_REGIONS = ("singapore", "tokyo", "oregon")
MID_REGIONS = ("virginia", "ohio", "frankfurt")
SLOW_REGIONS = ("seoul", "sydney", "london", "ireland")
ALL_REGIONS = FAST_REGIONS + MID_REGIONS + SLOW_REGIONS


def ec2_ten_sites(
    base_uplink: "str | float" = "20MB/s",
    machines: int = 2,
    executors_per_machine: int = 4,
    asymmetry: float = 1.0,
) -> WanTopology:
    """Build the paper's ten-region EC2 topology.

    ``base_uplink`` is the slowest tier's uplink; the mid tier gets 2x and
    the fast tier 5x of it (so fast is 2.5x mid, matching §8.1).
    ``asymmetry`` scales downlinks relative to uplinks (WAN downlinks are
    typically at least as fast; 1.0 keeps them symmetric).
    """
    from repro.util.units import parse_rate

    if asymmetry <= 0:
        raise ConfigurationError("asymmetry must be > 0")
    base = parse_rate(base_uplink)
    tiers = {}
    for region in FAST_REGIONS:
        tiers[region] = 5.0 * base
    for region in MID_REGIONS:
        tiers[region] = 2.0 * base
    for region in SLOW_REGIONS:
        tiers[region] = 1.0 * base
    sites = [
        Site(
            name=region,
            uplink_bps=rate,
            downlink_bps=rate * asymmetry,
            machines=machines,
            executors_per_machine=executors_per_machine,
        )
        for region, rate in tiers.items()
    ]
    return WanTopology.from_sites(sites)


def uniform_sites(
    count: int,
    uplink: "str | float" = "50MB/s",
    downlink: "Optional[str | float]" = None,
    machines: int = 2,
    executors_per_machine: int = 4,
) -> WanTopology:
    """Build ``count`` homogeneous sites named ``site-0..site-N``.

    Useful in tests and microbenchmarks where bandwidth heterogeneity is
    not the variable under study.
    """
    from repro.util.units import parse_rate

    if count < 1:
        raise ConfigurationError("count must be >= 1")
    up = parse_rate(uplink)
    down = parse_rate(downlink) if downlink is not None else up
    sites: List[Site] = [
        Site(
            name=f"site-{index}",
            uplink_bps=up,
            downlink_bps=down,
            machines=machines,
            executors_per_machine=executors_per_machine,
        )
        for index in range(count)
    ]
    return WanTopology.from_sites(sites)
