"""Sites and WAN topology.

Following §5 of the paper, the links between each site and the Internet
backbone are the only bottleneck: a site is described by one uplink and one
downlink bandwidth rather than a full mesh of pairwise links.  Compute and
storage are assumed abundant, but we still carry a compute rate per site so
the engine can model (small) map/reduce processing time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from repro.errors import TopologyError
from repro.util.units import format_rate, parse_rate


@dataclass(frozen=True)
class Site:
    """One data center.

    Parameters
    ----------
    name:
        Unique site identifier, e.g. ``"tokyo"``.
    uplink_bps / downlink_bps:
        Bandwidth between this site and the Internet backbone, in bytes
        per second (accepts ``"100MB/s"`` style strings at construction
        through :meth:`Site.create`).
    compute_bps:
        Rate at which one executor processes records, in bytes/second.
    machines / executors_per_machine:
        Cluster shape inside the site, used by the engine and by runtime
        RDD-similarity clustering (§6).
    """

    name: str
    uplink_bps: float
    downlink_bps: float
    compute_bps: float = 4.0e9
    machines: int = 2
    executors_per_machine: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("site name must be non-empty")
        for label, value in (
            ("uplink_bps", self.uplink_bps),
            ("downlink_bps", self.downlink_bps),
            ("compute_bps", self.compute_bps),
        ):
            if value <= 0:
                raise TopologyError(f"{label} of site {self.name!r} must be > 0")
        if self.machines < 1 or self.executors_per_machine < 1:
            raise TopologyError(f"site {self.name!r} needs >= 1 machine and executor")

    @classmethod
    def create(
        cls,
        name: str,
        uplink: "str | float",
        downlink: "str | float",
        compute: "str | float" = 4.0e9,
        machines: int = 2,
        executors_per_machine: int = 4,
    ) -> "Site":
        """Build a site from human-readable rates (``"100MB/s"``)."""
        return cls(
            name=name,
            uplink_bps=parse_rate(uplink),
            downlink_bps=parse_rate(downlink),
            compute_bps=parse_rate(compute),
            machines=machines,
            executors_per_machine=executors_per_machine,
        )

    @property
    def executors(self) -> int:
        """Total executor slots in the site."""
        return self.machines * self.executors_per_machine

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: up={format_rate(self.uplink_bps)} "
            f"down={format_rate(self.downlink_bps)} "
            f"machines={self.machines}x{self.executors_per_machine}"
        )


@dataclass
class WanTopology:
    """A set of sites connected through the Internet backbone."""

    sites: Dict[str, Site] = field(default_factory=dict)

    @classmethod
    def from_sites(cls, sites: "List[Site]") -> "WanTopology":
        """Build a topology, rejecting duplicate site names."""
        topology = cls()
        for site in sites:
            topology.add_site(site)
        return topology

    def add_site(self, site: Site) -> None:
        if site.name in self.sites:
            raise TopologyError(f"duplicate site {site.name!r}")
        self.sites[site.name] = site

    def site(self, name: str) -> Site:
        try:
            return self.sites[name]
        except KeyError:
            raise TopologyError(f"unknown site {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.sites

    def __len__(self) -> int:
        return len(self.sites)

    def __iter__(self) -> Iterator[Site]:
        return iter(self.sites.values())

    @property
    def site_names(self) -> List[str]:
        """Site names in insertion order (stable across runs)."""
        return list(self.sites.keys())

    def uplink(self, name: str) -> float:
        return self.site(name).uplink_bps

    def downlink(self, name: str) -> float:
        return self.site(name).downlink_bps

    def uplinks(self) -> Dict[str, float]:
        return {name: site.uplink_bps for name, site in self.sites.items()}

    def downlinks(self) -> Dict[str, float]:
        return {name: site.downlink_bps for name, site in self.sites.items()}

    def bottleneck_site(self, data_bytes: Optional[Mapping[str, float]] = None) -> str:
        """Identify the bottleneck site.

        Without data sizes this is the site with the slowest uplink.  With
        per-site input sizes it is the site with the largest upload time
        ``data / uplink`` — matching the paper's notion of a bottleneck DC
        (low uplink bandwidth *and* large dataset, §1).
        """
        if not self.sites:
            raise TopologyError("topology has no sites")
        if data_bytes is None:
            return min(self.sites.values(), key=lambda site: site.uplink_bps).name
        unknown = set(data_bytes) - set(self.sites)
        if unknown:
            raise TopologyError(f"data sizes reference unknown sites {sorted(unknown)}")
        return max(
            self.sites.values(),
            key=lambda site: data_bytes.get(site.name, 0.0) / site.uplink_bps,
        ).name

    def validate(self) -> None:
        """Check the topology is usable for placement (>= 2 sites)."""
        if len(self.sites) < 2:
            raise TopologyError("geo-distributed analytics needs >= 2 sites")

    def describe(self) -> str:
        """Multi-line human-readable summary of all sites."""
        return "\n".join(site.describe() for site in self.sites.values())
