"""MinHash signatures for Jaccard estimation.

Used two ways: inside the Jaccard-modified DIMSUM (§6) — records collide
when any of their m hash values match — and by :class:`MinHashLSH` to
prune dissimilar pairs cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import SimilarityError
from repro.util.rng import derive_rng

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def _stable_hash(item: object) -> int:
    """Deterministic 64-bit hash of an item (run-to-run stable)."""
    import hashlib

    digest = hashlib.blake2b(repr(item).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class MinHashSignature:
    """The m minimum hash values of one set."""

    values: Tuple[int, ...]

    def estimate_jaccard(self, other: "MinHashSignature") -> float:
        """Fraction of matching signature slots ≈ Jaccard similarity."""
        if len(self.values) != len(other.values):
            raise SimilarityError(
                f"signature lengths differ: {len(self.values)} vs {len(other.values)}"
            )
        matches = sum(
            1 for mine, theirs in zip(self.values, other.values) if mine == theirs
        )
        return matches / len(self.values)

    def collides_with(self, other: "MinHashSignature") -> bool:
        """True when any of the m hash slots agree (the DIMSUM map test)."""
        return any(
            mine == theirs for mine, theirs in zip(self.values, other.values)
        )


class MinHasher:
    """A family of m universal hash functions h(x) = (a·x + b) mod p."""

    def __init__(self, num_hashes: int = 64, seed: int = 7) -> None:
        if num_hashes < 1:
            raise SimilarityError("num_hashes must be >= 1")
        self.num_hashes = num_hashes
        rng = derive_rng(seed, "minhash")
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_hashes, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_hashes, dtype=np.uint64)

    def signature(self, items: Iterable[object]) -> MinHashSignature:
        """MinHash signature of a set of items.

        The signature of an empty set is all ``_MAX_HASH`` sentinel values,
        which never collide with real hashes.
        """
        # Sorted items: the min over permuted hashes is order-independent,
        # but fixing the array layout keeps signatures byte-identical
        # across Python hash-seed and version changes.
        hashes = np.array(
            [
                _stable_hash(item) & _MAX_HASH
                for item in sorted(set(items), key=repr)
            ],
            dtype=np.uint64,
        )
        if hashes.size == 0:
            return MinHashSignature(tuple([_MAX_HASH + 1] * self.num_hashes))
        # (m, n) matrix of permuted hashes, min over items per hash fn.
        permuted = (
            self._a[:, None] * hashes[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        mins = (permuted % (_MAX_HASH + 1)).min(axis=1)
        return MinHashSignature(tuple(int(value) for value in mins))

    def signatures(self, sets: Sequence[Iterable[object]]) -> List[MinHashSignature]:
        return [self.signature(items) for items in sets]
