"""MinHash signatures for Jaccard estimation.

Used two ways: inside the Jaccard-modified DIMSUM (§6) — records collide
when any of their m hash values match — and by :class:`MinHashLSH` to
prune dissimilar pairs cheaply.

:meth:`MinHasher.signatures` is the batched hot path: every distinct
item is hashed once across all sets, the m×n permuted-hash matrices are
computed as one concatenated matrix, and per-set minima come from
``np.minimum.reduceat`` — bit-identical to calling
:meth:`MinHasher.signature` per set (the retained scalar reference).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import SimilarityError
from repro.util.rng import derive_rng

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1
#: Signature slot value for empty sets — outside the real min-hash range
#: [0, 2^32 - 1], so an empty set never collides with a non-empty one.
_EMPTY_SENTINEL = _MAX_HASH + 1
#: Column budget per batched permuted-hash matrix: bounds peak memory at
#: num_hashes × 65536 × 8 bytes while keeping per-chunk overhead small.
_BATCH_COLUMNS = 65536


def _stable_hash(item: object) -> int:
    """Deterministic 64-bit hash of an item (run-to-run stable)."""
    digest = hashlib.blake2b(repr(item).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@lru_cache(maxsize=1 << 20)
def _masked_hash(text: str) -> int:
    """``_stable_hash`` of a repr string, masked to the hash range.

    The value is a pure function of the repr, so one process-wide cache
    serves every :class:`MinHasher` instance and every batched call.
    """
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") & _MAX_HASH


def _mod_mersenne(values: np.ndarray) -> np.ndarray:
    """``values % (2^61 - 1)`` without uint64 division (exact).

    For p = 2^61 - 1 and any y < 2^64: y ≡ (y & p) + (y >> 61) (mod p),
    and that sum is at most p + 7, so one conditional subtraction
    finishes the reduction.  Bit-identical to the ``%`` operator the
    scalar reference uses, several times faster on large matrices.
    """
    prime = np.uint64(_MERSENNE_PRIME)
    reduced = (values & prime) + (values >> np.uint64(61))
    np.subtract(reduced, prime, out=reduced, where=reduced >= prime)
    return reduced


@dataclass(frozen=True)
class MinHashSignature:
    """The m minimum hash values of one set."""

    values: Tuple[int, ...]

    @property
    def is_empty(self) -> bool:
        """True when this is the empty-set sentinel signature."""
        return bool(self.values) and self.values[0] == _EMPTY_SENTINEL

    def estimate_jaccard(self, other: "MinHashSignature") -> float:
        """Fraction of matching signature slots ≈ Jaccard similarity.

        Empty sets share no elements with anything, including each
        other: if either side is the empty-set sentinel the estimate is
        0.0 (two sentinels are slot-identical, which would otherwise
        report ∅ vs ∅ as perfectly similar).
        """
        if len(self.values) != len(other.values):
            raise SimilarityError(
                f"signature lengths differ: {len(self.values)} vs {len(other.values)}"
            )
        if self.is_empty or other.is_empty:
            return 0.0
        matches = sum(
            1 for mine, theirs in zip(self.values, other.values) if mine == theirs
        )
        return matches / len(self.values)

    def collides_with(self, other: "MinHashSignature") -> bool:
        """True when any of the m hash slots agree (the DIMSUM map test).

        Empty-set sentinels never collide — not with real signatures
        (the sentinel is outside the hash range) and not with each other.
        """
        if self.is_empty or other.is_empty:
            return False
        return any(
            mine == theirs for mine, theirs in zip(self.values, other.values)
        )


class MinHasher:
    """A family of m universal hash functions h(x) = (a·x + b) mod p."""

    def __init__(self, num_hashes: int = 64, seed: int = 7) -> None:
        if num_hashes < 1:
            raise SimilarityError("num_hashes must be >= 1")
        self.num_hashes = num_hashes
        rng = derive_rng(seed, "minhash")
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_hashes, dtype=np.uint64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_hashes, dtype=np.uint64)

    def _item_hashes(self, items: Iterable[object]) -> np.ndarray:
        """Masked item hashes in the scalar path's array layout.

        Deduplication and ordering mirror :meth:`signature` exactly:
        sorting distinct reprs equals ``sorted(set(items), key=repr)``
        because the hash depends only on the repr.  Digests come from
        the process-wide ``_masked_hash`` cache.
        """
        texts = sorted(map(repr, set(items)))
        return np.fromiter(
            map(_masked_hash, texts), dtype=np.uint64, count=len(texts)
        )

    def signature(self, items: Iterable[object]) -> MinHashSignature:
        """MinHash signature of a set of items (scalar reference path).

        The signature of an empty set is all ``_EMPTY_SENTINEL`` values,
        which never collide with real hashes.
        """
        # Sorted items: the min over permuted hashes is order-independent,
        # but fixing the array layout keeps signatures byte-identical
        # across Python hash-seed and version changes.
        hashes = np.array(
            [
                _stable_hash(item) & _MAX_HASH
                for item in sorted(set(items), key=repr)
            ],
            dtype=np.uint64,
        )
        if hashes.size == 0:
            return MinHashSignature(tuple([_EMPTY_SENTINEL] * self.num_hashes))
        # (m, n) matrix of permuted hashes, min over items per hash fn.
        permuted = (
            self._a[:, None] * hashes[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        mins = (permuted % (_MAX_HASH + 1)).min(axis=1)
        return MinHashSignature(tuple(int(value) for value in mins))

    def signatures_scalar(
        self, sets: Sequence[Iterable[object]]
    ) -> List[MinHashSignature]:
        """Per-set reference implementation of :meth:`signatures`."""
        return [self.signature(items) for items in sets]

    def signatures(self, sets: Sequence[Iterable[object]]) -> List[MinHashSignature]:
        """Signatures for many sets in one batched computation.

        All sets' item hashes form one concatenated vector; the m×total
        permuted-hash matrix is computed in memory-bounded column chunks
        and per-set minima are taken with ``np.minimum.reduceat``.
        uint64 products wrap mod 2^64 exactly as in the scalar path, so
        every signature is bit-identical to :meth:`signature`.
        """
        per_set = [self._item_hashes(items) for items in sets]
        empty = MinHashSignature(tuple([_EMPTY_SENTINEL] * self.num_hashes))
        results: List[MinHashSignature] = [empty] * len(per_set)

        chunk_sets: List[int] = []
        chunk_parts: List[np.ndarray] = []
        chunk_columns = 0

        def flush() -> None:
            nonlocal chunk_sets, chunk_parts, chunk_columns
            if not chunk_sets:
                return
            hashes = np.concatenate(chunk_parts)
            starts = np.cumsum([0] + [part.size for part in chunk_parts[:-1]])
            # uint64 multiply-add wraps mod 2^64 exactly like the scalar
            # path; the Mersenne reduction and the power-of-two mask are
            # exact rewrites of the reference's two % operators.
            permuted = self._a[:, None] * hashes[None, :]
            permuted += self._b[:, None]
            permuted = _mod_mersenne(permuted)
            permuted &= np.uint64(_MAX_HASH)
            mins = np.minimum.reduceat(permuted, starts, axis=1)
            columns = mins.T.tolist()  # python ints, one row per set
            for column, set_index in enumerate(chunk_sets):
                results[set_index] = MinHashSignature(tuple(columns[column]))
            chunk_sets, chunk_parts, chunk_columns = [], [], 0

        for set_index, hashes in enumerate(per_set):
            if hashes.size == 0:
                continue  # sentinel already in place
            if chunk_columns and chunk_columns + hashes.size > _BATCH_COLUMNS:
                flush()
            chunk_sets.append(set_index)
            chunk_parts.append(hashes)
            chunk_columns += hashes.size
        flush()
        return results
