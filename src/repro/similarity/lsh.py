"""Locality sensitive hashing (§4.2, [18]).

Two LSH schemes:

- :class:`MinHashLSH` — banding over MinHash signatures, for set-valued
  records (log keys).  Candidate pairs are those agreeing on at least one
  band.
- :class:`CosineLSH` — random-hyperplane signatures that compress
  high-dimensional feature vectors (the paper's image datasets) into
  short bit strings whose Hamming similarity tracks cosine similarity.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimilarityError
from repro.similarity.minhash import MinHasher, MinHashSignature
from repro.util.rng import derive_rng


class MinHashLSH:
    """Banded MinHash index producing candidate similar pairs."""

    def __init__(self, num_hashes: int = 64, bands: int = 16, seed: int = 7) -> None:
        if bands < 1 or num_hashes % bands != 0:
            raise SimilarityError(
                f"bands ({bands}) must divide num_hashes ({num_hashes})"
            )
        self.hasher = MinHasher(num_hashes=num_hashes, seed=seed)
        self.bands = bands
        self.rows_per_band = num_hashes // bands

    def candidate_pairs(
        self, sets: Sequence[Iterable[object]]
    ) -> Set[Tuple[int, int]]:
        """Index all sets and return candidate (i, j) pairs with i < j."""
        signatures = self.hasher.signatures(sets)
        buckets: Dict[Tuple[int, Tuple[int, ...]], List[int]] = defaultdict(list)
        for index, signature in enumerate(signatures):
            for band in range(self.bands):
                start = band * self.rows_per_band
                chunk = signature.values[start : start + self.rows_per_band]
                buckets[(band, chunk)].append(index)
        pairs: Set[Tuple[int, int]] = set()
        for members in buckets.values():
            for position, left in enumerate(members):
                for right in members[position + 1 :]:
                    pairs.add((min(left, right), max(left, right)))
        return pairs

    def signature(self, items: Iterable[object]) -> MinHashSignature:
        return self.hasher.signature(items)


class CosineLSH:
    """Random-hyperplane LSH reducing vector dimensionality (§4.2).

    Each of ``num_bits`` random hyperplanes contributes one sign bit; the
    fraction of agreeing bits between two signatures estimates
    ``1 − θ/π`` where θ is the angle between the vectors.
    """

    def __init__(self, input_dim: int, num_bits: int = 64, seed: int = 7) -> None:
        if input_dim < 1:
            raise SimilarityError("input_dim must be >= 1")
        if num_bits < 1:
            raise SimilarityError("num_bits must be >= 1")
        self.input_dim = input_dim
        self.num_bits = num_bits
        rng = derive_rng(seed, "cosine-lsh")
        self._planes = rng.standard_normal((num_bits, input_dim))

    def signature(self, vector: Sequence[float]) -> np.ndarray:
        """Bit signature (array of 0/1) of one vector."""
        arr = np.asarray(vector, dtype=float)
        if arr.shape != (self.input_dim,):
            raise SimilarityError(
                f"expected vector of dim {self.input_dim}, got shape {arr.shape}"
            )
        return (self._planes @ arr >= 0.0).astype(np.uint8)

    def signatures(self, vectors: Sequence[Sequence[float]]) -> np.ndarray:
        matrix = np.asarray(vectors, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.input_dim:
            raise SimilarityError(
                f"expected (n, {self.input_dim}) matrix, got {matrix.shape}"
            )
        return (matrix @ self._planes.T >= 0.0).astype(np.uint8)

    @staticmethod
    def estimate_cosine(sig_left: np.ndarray, sig_right: np.ndarray) -> float:
        """Estimated cosine similarity from two bit signatures."""
        if sig_left.shape != sig_right.shape:
            raise SimilarityError("signature shapes differ")
        agreement = float(np.mean(sig_left == sig_right))
        theta = (1.0 - agreement) * math.pi
        return math.cos(theta)
