"""Vector space model and synthetic image features (§4.1).

Image datasets cannot be aggregated directly; the paper extracts feature
vectors per image (VSM, [29]) and builds cubes over those.  We provide
(1) a hashing VSM for text — term frequency vectors in a fixed dimension,
and (2) a synthetic image-feature generator that produces clustered
feature vectors, standing in for a real extractor while exercising the
same downstream path (LSH → similarity → cube dimensions).
"""

from __future__ import annotations

import hashlib
import math
import re
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import SimilarityError
from repro.util.rng import derive_rng

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


class VectorSpaceModel:
    """Hashing term-frequency vectorizer with L2 normalization."""

    def __init__(self, dim: int = 128, normalize: bool = True) -> None:
        if dim < 1:
            raise SimilarityError("dim must be >= 1")
        self.dim = dim
        self.normalize = normalize

    def _bucket(self, token: str) -> int:
        digest = hashlib.blake2b(token.lower().encode(), digest_size=4).digest()
        return int.from_bytes(digest, "little") % self.dim

    def transform(self, text: str) -> np.ndarray:
        """Map one document to its term-frequency vector."""
        vector = np.zeros(self.dim, dtype=float)
        for token in _TOKEN_RE.findall(text):
            vector[self._bucket(token)] += 1.0
        if self.normalize:
            norm = float(np.linalg.norm(vector))
            if norm > 0.0:
                vector /= norm
        return vector

    def transform_many(self, texts: Sequence[str]) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.dim), dtype=float)
        return np.stack([self.transform(text) for text in texts])


def synthetic_image_features(
    count: int,
    dim: int = 64,
    num_classes: int = 8,
    noise: float = 0.1,
    seed: int = 7,
) -> Tuple[np.ndarray, List[int]]:
    """Generate clustered feature vectors mimicking extracted image features.

    Returns ``(features, labels)`` where vectors of the same label sit near
    a shared class centroid — the structure a real extractor produces for
    near-duplicate images, which is what makes image datasets "similar".
    """
    if count < 0:
        raise SimilarityError("count must be >= 0")
    if num_classes < 1:
        raise SimilarityError("num_classes must be >= 1")
    if noise < 0:
        raise SimilarityError("noise must be >= 0")
    rng = derive_rng(seed, "image-features", dim, num_classes)
    centroids = rng.standard_normal((num_classes, dim))
    centroids /= np.linalg.norm(centroids, axis=1, keepdims=True) + 1e-12
    labels = [int(label) for label in rng.integers(0, num_classes, size=count)]
    features = np.empty((count, dim), dtype=float)
    for row, label in enumerate(labels):
        sample = centroids[label] + noise * rng.standard_normal(dim)
        norm = float(np.linalg.norm(sample))
        features[row] = sample / norm if norm > 0 else sample
    return features, labels


def feature_bucket(vector: Sequence[float], buckets: int = 256) -> int:
    """Quantize a feature vector to a coarse bucket id.

    Image records enter OLAP cubes through this bucket id: images with
    near-identical features land in the same cube cell and can be
    aggregated — the image analogue of identical log keys.
    """
    arr = np.asarray(vector, dtype=float)
    signs = (arr[: min(len(arr), int(math.log2(buckets)) if buckets > 1 else 1)] >= 0)
    value = 0
    for bit in signs:
        value = (value << 1) | int(bit)
    return value % buckets
