"""Jaccard-modified DIMSUM for all-pairs RDD-partition similarity (§6).

Computing exact pairwise Jaccard over all RDD partitions on a machine is
quadratic in records.  DIMSUM [34, 35] probabilistically skips pairs that
are very likely dissimilar, trading accuracy for time through a single
parameter γ.  The paper modifies it from cosine to Jaccard:

- *map*: each record gets m hash values (MinHash); two partitions become
  collision candidates whenever any hash slot matches, and the mapper
  emits candidate pairs with probability ``min(1, γ / sqrt(|X|·|Y|))``
  (the DIMSUM sampling rule, with partition cardinality standing in for
  column norms).
- *reduce*: count, per pair, the fraction of matching hash slots — the
  MinHash estimate of Jaccard — scaled back by the sampling probability.

Large γ ⇒ inspect (almost) every pair ⇒ accurate but slow; small γ ⇒ skip
most pairs ⇒ fast but approximate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimilarityError
from repro.similarity.metrics import jaccard
from repro.similarity.minhash import MinHasher
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class DimsumConfig:
    """Tuning knobs for the DIMSUM pass."""

    gamma: float = 4.0
    num_hashes: int = 64
    seed: int = 7
    exact_below: int = 64  # partitions smaller than this compare exactly

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise SimilarityError("gamma must be > 0")
        if self.num_hashes < 1:
            raise SimilarityError("num_hashes must be >= 1")
        if self.exact_below < 0:
            raise SimilarityError("exact_below must be >= 0")


@dataclass
class DimsumStats:
    """Work accounting: how many pairs were examined vs skipped."""

    pairs_total: int = 0
    pairs_examined: int = 0
    pairs_skipped: int = 0

    @property
    def skip_fraction(self) -> float:
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_skipped / self.pairs_total


def dimsum_similarity_matrix(
    partitions: Sequence[Set],
    config: DimsumConfig = DimsumConfig(),
) -> Tuple[np.ndarray, DimsumStats]:
    """All-pairs Jaccard similarity matrix over record-key sets.

    Returns an ``(n, n)`` symmetric matrix with unit diagonal and the
    work-accounting stats.  Skipped pairs get similarity 0.0 — by
    construction they are pairs the sampling rule deemed very unlikely to
    be similar.
    """
    n = len(partitions)
    matrix = np.eye(n, dtype=float)
    stats = DimsumStats()
    if n < 2:
        return matrix, stats

    hasher = MinHasher(num_hashes=config.num_hashes, seed=config.seed)
    signatures = hasher.signatures(partitions)
    sizes = [max(len(partition), 1) for partition in partitions]
    rng = derive_rng(config.seed, "dimsum-sampling")

    for i in range(n):
        for j in range(i + 1, n):
            stats.pairs_total += 1
            # DIMSUM sampling rule: examine with prob min(1, γ/sqrt(ni·nj)).
            probability = min(1.0, config.gamma / math.sqrt(sizes[i] * sizes[j]))
            if rng.random() > probability:
                stats.pairs_skipped += 1
                continue
            stats.pairs_examined += 1
            small = min(len(partitions[i]), len(partitions[j]))
            if small < config.exact_below:
                similarity = jaccard(partitions[i], partitions[j])
            else:
                # Map/reduce estimate: fraction of colliding hash slots.
                similarity = signatures[i].estimate_jaccard(signatures[j])
            matrix[i, j] = matrix[j, i] = similarity
    return matrix, stats


def exact_similarity_matrix(partitions: Sequence[Set]) -> np.ndarray:
    """Exact all-pairs Jaccard (the oracle DIMSUM approximates)."""
    n = len(partitions)
    matrix = np.eye(n, dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = jaccard(partitions[i], partitions[j])
    return matrix


def matrix_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Mean absolute error between two similarity matrices' upper triangles."""
    if approx.shape != exact.shape:
        raise SimilarityError("matrix shapes differ")
    n = approx.shape[0]
    if n < 2:
        return 0.0
    indices = np.triu_indices(n, k=1)
    return float(np.mean(np.abs(approx[indices] - exact[indices])))
