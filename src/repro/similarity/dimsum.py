"""Jaccard-modified DIMSUM for all-pairs RDD-partition similarity (§6).

Computing exact pairwise Jaccard over all RDD partitions on a machine is
quadratic in records.  DIMSUM [34, 35] probabilistically skips pairs that
are very likely dissimilar, trading accuracy for time through a single
parameter γ.  The paper modifies it from cosine to Jaccard:

- *map*: each record gets m hash values (MinHash); two partitions become
  collision candidates whenever any hash slot matches, and the mapper
  emits candidate pairs with probability ``min(1, γ / sqrt(|X|·|Y|))``
  (the DIMSUM sampling rule, with partition cardinality standing in for
  column norms).
- *reduce*: count, per pair, the fraction of matching hash slots — the
  MinHash estimate of Jaccard — scaled back by the sampling probability.

Large γ ⇒ inspect (almost) every pair ⇒ accurate but slow; small γ ⇒ skip
most pairs ⇒ fast but approximate.

The hot path (:func:`dimsum_similarity_matrix`) is vectorized under an
RNG consumption-order contract: the scalar reference draws one uniform
per pair in upper-triangle ``(i, j)`` order, and the columnar path draws
the whole vector at once with ``rng.random(num_pairs)`` over
``np.triu_indices`` — the identical stream in the identical order, so
the same seed skips the same pairs bit-for-bit.  Empty partitions share
no keys with anything, including each other: any pair with an empty side
reports 0.0 similarity in both paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Set, Tuple

import numpy as np

from repro.errors import SimilarityError
from repro.similarity.metrics import jaccard
from repro.similarity.minhash import MinHasher
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class DimsumConfig:
    """Tuning knobs for the DIMSUM pass."""

    gamma: float = 4.0
    num_hashes: int = 64
    seed: int = 7
    exact_below: int = 64  # partitions smaller than this compare exactly

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise SimilarityError("gamma must be > 0")
        if self.num_hashes < 1:
            raise SimilarityError("num_hashes must be >= 1")
        if self.exact_below < 0:
            raise SimilarityError("exact_below must be >= 0")


@dataclass
class DimsumStats:
    """Work accounting: how many pairs were examined vs skipped."""

    pairs_total: int = 0
    pairs_examined: int = 0
    pairs_skipped: int = 0

    @property
    def skip_fraction(self) -> float:
        if self.pairs_total == 0:
            return 0.0
        return self.pairs_skipped / self.pairs_total


def dimsum_similarity_matrix_scalar(
    partitions: Sequence[Set],
    config: DimsumConfig = DimsumConfig(),
) -> Tuple[np.ndarray, DimsumStats]:
    """Per-pair reference implementation of :func:`dimsum_similarity_matrix`.

    Retained for the scalar/columnar parity suite; draws one uniform per
    pair in upper-triangle order — the consumption-order contract the
    vectorized path reproduces.
    """
    n = len(partitions)
    matrix = np.eye(n, dtype=float)
    stats = DimsumStats()
    if n < 2:
        return matrix, stats

    hasher = MinHasher(num_hashes=config.num_hashes, seed=config.seed)
    signatures = hasher.signatures_scalar(partitions)
    sizes = [max(len(partition), 1) for partition in partitions]
    rng = derive_rng(config.seed, "dimsum-sampling")

    for i in range(n):
        for j in range(i + 1, n):
            stats.pairs_total += 1
            # DIMSUM sampling rule: examine with prob min(1, γ/sqrt(ni·nj)).
            probability = min(1.0, config.gamma / math.sqrt(sizes[i] * sizes[j]))
            if rng.random() > probability:
                stats.pairs_skipped += 1
                continue
            stats.pairs_examined += 1
            if not partitions[i] or not partitions[j]:
                # Empty partitions share no keys with anything — including
                # each other (set-based jaccard would report ∅ vs ∅ as 1.0).
                continue
            small = min(len(partitions[i]), len(partitions[j]))
            if small < config.exact_below:
                similarity = jaccard(partitions[i], partitions[j])
            else:
                # Map/reduce estimate: fraction of colliding hash slots.
                similarity = signatures[i].estimate_jaccard(signatures[j])
            matrix[i, j] = matrix[j, i] = similarity
    return matrix, stats


def dimsum_similarity_matrix(
    partitions: Sequence[Set],
    config: DimsumConfig = DimsumConfig(),
) -> Tuple[np.ndarray, DimsumStats]:
    """All-pairs Jaccard similarity matrix over record-key sets.

    Returns an ``(n, n)`` symmetric matrix with unit diagonal and the
    work-accounting stats.  Skipped pairs get similarity 0.0 — by
    construction they are pairs the sampling rule deemed very unlikely to
    be similar.  Pairs with an empty side also report 0.0.

    This is the columnar path: batched signatures, the full sampling-
    probability vector over ``np.triu_indices``, one ``rng.random(k)``
    draw matching the scalar per-pair stream, and matrix-slot comparison
    for every estimated pair at once.  Bit-identical to
    :func:`dimsum_similarity_matrix_scalar`.
    """
    n = len(partitions)
    matrix = np.eye(n, dtype=float)
    stats = DimsumStats()
    if n < 2:
        return matrix, stats

    hasher = MinHasher(num_hashes=config.num_hashes, seed=config.seed)
    signatures = hasher.signatures(partitions)
    rng = derive_rng(config.seed, "dimsum-sampling")

    lengths = np.fromiter(
        (len(partition) for partition in partitions), dtype=np.int64, count=n
    )
    sizes = np.maximum(lengths, 1).astype(np.float64)
    rows, cols = np.triu_indices(n, k=1)
    num_pairs = rows.size
    # min(1, γ/√(ni·nj)) per pair; int sizes convert to float64 exactly
    # and np.sqrt is correctly rounded like math.sqrt, so each entry
    # equals the scalar per-pair probability bit-for-bit.
    probability = np.minimum(
        1.0, config.gamma / np.sqrt(sizes[rows] * sizes[cols])
    )
    # RNG consumption-order contract: one vector draw is the same stream
    # as num_pairs successive rng.random() calls in triu (i, j) order.
    draws = rng.random(num_pairs)
    examined = ~(draws > probability)

    stats.pairs_total = num_pairs
    stats.pairs_examined = int(np.count_nonzero(examined))
    stats.pairs_skipped = num_pairs - stats.pairs_examined

    nonempty = (lengths[rows] > 0) & (lengths[cols] > 0)
    small = np.minimum(lengths[rows], lengths[cols])
    exact_mask = examined & nonempty & (small < config.exact_below)
    estimate_mask = examined & nonempty & ~(small < config.exact_below)

    # Exact path: set-based Jaccard stays a per-pair Python computation
    # (set intersections do not vectorize); only sampled small pairs pay.
    for i, j in zip(rows[exact_mask].tolist(), cols[exact_mask].tolist()):
        matrix[i, j] = matrix[j, i] = jaccard(partitions[i], partitions[j])

    if np.any(estimate_mask):
        slots = np.array(
            [signature.values for signature in signatures], dtype=np.int64
        )
        est_rows = rows[estimate_mask]
        est_cols = cols[estimate_mask]
        matches = np.count_nonzero(
            slots[est_rows] == slots[est_cols], axis=1
        )
        estimates = matches / config.num_hashes
        matrix[est_rows, est_cols] = estimates
        matrix[est_cols, est_rows] = estimates
    return matrix, stats


def exact_similarity_matrix(partitions: Sequence[Set]) -> np.ndarray:
    """Exact all-pairs Jaccard (the oracle DIMSUM approximates)."""
    n = len(partitions)
    matrix = np.eye(n, dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = jaccard(partitions[i], partitions[j])
    return matrix


def matrix_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Mean absolute error between two similarity matrices' upper triangles."""
    if approx.shape != exact.shape:
        raise SimilarityError("matrix shapes differ")
    n = approx.shape[0]
    if n < 2:
        return 0.0
    indices = np.triu_indices(n, k=1)
    return float(np.mean(np.abs(approx[indices] - exact[indices])))
