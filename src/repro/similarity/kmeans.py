"""Seeded Lloyd's k-means (stand-in for Spark MLlib's k-means, §7).

Used at runtime to cluster RDD partitions by their rows of the similarity
matrix, so similar partitions land on the same executor (§6).  Includes
k-means++ seeding and empty-cluster repair; deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import SimilarityError
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class KMeansResult:
    """Clustering outcome."""

    labels: List[int]
    centroids: np.ndarray
    inertia: float
    iterations: int

    @property
    def num_clusters(self) -> int:
        return self.centroids.shape[0]

    def members(self, cluster: int) -> List[int]:
        return [index for index, label in enumerate(self.labels) if label == cluster]


def kmeans(
    data: "Sequence[Sequence[float]] | np.ndarray",
    k: int,
    seed: int = 7,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> KMeansResult:
    """Cluster rows of ``data`` into ``k`` groups.

    When ``k >= n`` every point gets its own cluster.  Empty clusters are
    re-seeded with the point farthest from its centroid, so exactly ``k``
    non-degenerate clusters come back whenever ``n >= k``.
    """
    matrix = np.asarray(data, dtype=float)
    if matrix.ndim != 2:
        raise SimilarityError(f"data must be 2-D, got shape {matrix.shape}")
    n = matrix.shape[0]
    if k < 1:
        raise SimilarityError("k must be >= 1")
    if n == 0:
        return KMeansResult([], np.zeros((0, matrix.shape[1])), 0.0, 0)
    if k >= n:
        return KMeansResult(
            labels=list(range(n)), centroids=matrix.copy(), inertia=0.0, iterations=0
        )

    rng = derive_rng(seed, "kmeans", n, k)
    centroids = _kmeanspp_init(matrix, k, rng)
    labels = np.zeros(n, dtype=int)
    iterations = 0
    previous_inertia = np.inf
    for iterations in range(1, max_iter + 1):
        distances = _pairwise_sq_distances(matrix, centroids)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(n), labels].sum())
        for cluster in range(k):
            members = matrix[labels == cluster]
            if len(members) == 0:
                # Re-seed with the globally worst-fit point.
                worst = int(np.argmax(distances[np.arange(n), labels]))
                centroids[cluster] = matrix[worst]
                labels[worst] = cluster
            else:
                centroids[cluster] = members.mean(axis=0)
        if previous_inertia - inertia <= tol:
            break
        previous_inertia = inertia
    distances = _pairwise_sq_distances(matrix, centroids)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(
        labels=[int(label) for label in labels],
        centroids=centroids,
        inertia=inertia,
        iterations=iterations,
    )


def _kmeanspp_init(matrix: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = matrix.shape[0]
    centroids = np.empty((k, matrix.shape[1]), dtype=float)
    centroids[0] = matrix[rng.integers(0, n)]
    closest = _pairwise_sq_distances(matrix, centroids[:1]).ravel()
    for index in range(1, k):
        total = closest.sum()
        if total <= 0:
            centroids[index] = matrix[rng.integers(0, n)]
            continue
        probabilities = closest / total
        choice = rng.choice(n, p=probabilities)
        centroids[index] = matrix[choice]
        distances = _pairwise_sq_distances(matrix, centroids[index : index + 1]).ravel()
        closest = np.minimum(closest, distances)
    return centroids


def _pairwise_sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (n_points, n_centers)."""
    diff = points[:, None, :] - centers[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)
