"""Cross-site similarity checking with probes (§4.2) and local similarity.

Upon receiving a probe from the bottleneck site, a site looks each probe
record up in its own dimension cube for that query type.  The weighted
fraction of matched probe records estimates how much of the bottleneck
site's (clustered) data would combine away if moved here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.errors import SimilarityError
from repro.obs import instrument
from repro.olap.cube import OLAPCube
from repro.olap.dimension_cube import DimensionCubeSet, QueryTypeKey
from repro.similarity.probes import Probe


@dataclass(frozen=True)
class SiteSimilarity:
    """Estimated similarity between an origin site's data and a target's."""

    dataset_id: str
    origin_site: str
    target_site: str
    similarity: float
    per_query_type: Mapping[QueryTypeKey, float]
    elapsed_seconds: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity <= 1.0:
            raise SimilarityError(
                f"similarity must be within [0, 1], got {self.similarity}"
            )


@dataclass
class SimilarityChecker:
    """Evaluates probes against a site's cubes; accumulates timing."""

    total_checks: int = 0
    total_seconds: float = 0.0
    _history: List[SiteSimilarity] = field(default_factory=list)

    def check(
        self, probe: Probe, target_site: str, target_cubes: DimensionCubeSet
    ) -> SiteSimilarity:
        """Estimate similarity of the probe's origin data to a target site.

        Returns the cluster-size-weighted match fraction: a probe record
        matches when its key exists as a cell of the target's dimension
        cube for the same query type.
        """
        # Wall-clock on purpose: offline probe-checking cost, Table 3.
        started = time.perf_counter()  # lint: allow[R001]
        matched_weight: Dict[QueryTypeKey, float] = {}
        total_weight: Dict[QueryTypeKey, float] = {}
        for record in probe.records:
            cube = target_cubes.cube_for(list(record.query_type))
            total_weight[record.query_type] = (
                total_weight.get(record.query_type, 0.0) + record.weight
            )
            if record.key in cube.cells:
                matched_weight[record.query_type] = (
                    matched_weight.get(record.query_type, 0.0) + record.weight
                )
        per_type = {
            type_key: matched_weight.get(type_key, 0.0) / weight
            for type_key, weight in total_weight.items()
        }
        overall_total = sum(total_weight.values())
        overall_matched = sum(matched_weight.values())
        similarity = overall_matched / overall_total if overall_total else 0.0
        elapsed = time.perf_counter() - started  # lint: allow[R001]
        result = SiteSimilarity(
            dataset_id=probe.dataset_id,
            origin_site=probe.origin_site,
            target_site=target_site,
            similarity=similarity,
            per_query_type=per_type,
            elapsed_seconds=elapsed,
        )
        self.total_checks += 1
        self.total_seconds += elapsed
        self._history.append(result)
        obs = instrument.current()
        if obs.enabled:
            obs.tracer.record(
                f"similarity-check {probe.origin_site}->{target_site}",
                stage="probe",
                wall_seconds=elapsed,
                dataset=probe.dataset_id,
                origin=probe.origin_site,
                target=target_site,
                similarity=similarity,
            )
            obs.metrics.counter("similarity_checks").inc()
            obs.metrics.histogram("similarity_check_seconds").observe(elapsed)
            obs.metrics.histogram("cross_site_similarity").observe(similarity)
        return result

    def check_against_sites(
        self, probe: Probe, cubes_by_site: Mapping[str, DimensionCubeSet]
    ) -> Dict[str, SiteSimilarity]:
        """Check one probe against every other site's cubes."""
        return {
            site: self.check(probe, site, cube_set)
            for site, cube_set in cubes_by_site.items()
            if site != probe.origin_site
        }

    @property
    def history(self) -> List[SiteSimilarity]:
        return list(self._history)

    @property
    def mean_check_seconds(self) -> float:
        if not self.total_checks:
            return 0.0
        return self.total_seconds / self.total_checks


def intra_site_similarity(cube: OLAPCube) -> float:
    """:math:`S_i^a` from a site's dimension cube: 1 − cells/records.

    Exactly the fraction of the site's records a combiner merges away for
    queries of this cube's type.  Empty cubes combine nothing (0.0).
    """
    total = cube.total_count
    if total == 0:
        return 0.0
    return 1.0 - cube.num_cells / total
