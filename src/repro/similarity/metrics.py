"""Similarity metrics.

Two families are used in the paper: set-based Jaccard (for record keys,
§6) and cosine (for high-dimension feature vectors, DIMSUM's native
metric).  ``intra_similarity`` is the :math:`S_i^a` of Table 1 — the
fraction of a site's records the combiner can merge away.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Mapping, Sequence, Set

import numpy as np

from repro.errors import SimilarityError
from repro.types import Key


def jaccard(left: Set, right: Set) -> float:
    """Plain Jaccard similarity |X ∩ Y| / |X ∪ Y|; 1.0 for two empty sets."""
    if not left and not right:
        return 1.0
    union = len(left | right)
    return len(left & right) / union


def weighted_jaccard(left: Mapping[Key, float], right: Mapping[Key, float]) -> float:
    """Weighted (multiset) Jaccard: Σ min(w) / Σ max(w) over all keys."""
    if not left and not right:
        return 1.0
    numerator = 0.0
    denominator = 0.0
    # Sorted union: float accumulation order must not depend on the
    # process hash seed (keys may be any homogeneous Key type, so sort
    # on repr).
    for key in sorted(set(left) | set(right), key=repr):
        weight_left = left.get(key, 0.0)
        weight_right = right.get(key, 0.0)
        numerator += min(weight_left, weight_right)
        denominator += max(weight_left, weight_right)
    if denominator <= 0.0:
        return 1.0
    return numerator / denominator


def overlap_coefficient(left: Set, right: Set) -> float:
    """|X ∩ Y| / min(|X|, |Y|); 1.0 when either set is empty."""
    if not left or not right:
        return 1.0
    return len(left & right) / min(len(left), len(right))


def cosine_similarity(left: Sequence[float], right: Sequence[float]) -> float:
    """Cosine of the angle between two vectors; 0.0 for a zero vector."""
    left_arr = np.asarray(left, dtype=float)
    right_arr = np.asarray(right, dtype=float)
    if left_arr.shape != right_arr.shape:
        raise SimilarityError(
            f"vector shapes differ: {left_arr.shape} vs {right_arr.shape}"
        )
    norm = float(np.linalg.norm(left_arr) * np.linalg.norm(right_arr))
    if norm <= 0.0:
        return 0.0
    return float(np.dot(left_arr, right_arr) / norm)


def intra_similarity(keys: Iterable[Key]) -> float:
    """:math:`S_i^a`: 1 − distinct/total over a site's record keys.

    A combiner collapses identical keys, so a shard with ``total`` records
    but only ``distinct`` keys emits ``distinct`` combined records — i.e.
    a fraction ``1 − distinct/total`` of the intermediate data vanishes.
    Returns 0.0 for an empty shard (nothing to combine).
    """
    counts = Counter(keys)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    return 1.0 - len(counts) / total


def key_histogram(keys: Iterable[Key]) -> Dict[Key, int]:
    """Count occurrences of each key (helper shared by probes/checker)."""
    return dict(Counter(keys))


def merge_ratio(site_keys: Sequence[Key], incoming_keys: Sequence[Key]) -> float:
    """Fraction of incoming records whose keys already exist at the site.

    This is the quantity a receiving site cares about when data moves in:
    incoming records with locally-present keys are absorbed for free by
    the combiner (Figure 1c), the rest enlarge the shuffle (Figure 1b).
    """
    if not incoming_keys:
        return 1.0
    present = set(site_keys)
    matched = sum(1 for key in incoming_keys if key in present)
    return matched / len(incoming_keys)
