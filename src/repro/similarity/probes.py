"""Probe construction (§4.2).

A probe is a small set of representative records sent from the bottleneck
site so other sites can estimate similarity without bulk data exchange.
For each query type the probe carries the top cells (largest record
clusters) of the corresponding dimension cube.  The total budget of k
records is split across query types proportionally to each type's weight
— its fraction of the dataset's queries — and across datasets mainly by
dataset size (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import SimilarityError
from repro.obs import instrument
from repro.olap.dimension_cube import DimensionCubeSet, QueryTypeKey, query_type_key
from repro.olap.storage import PROBE_RECORD_BYTES
from repro.types import Key


@dataclass(frozen=True)
class ProbeRecord:
    """One representative record: a cube cell coordinate plus its weight."""

    key: Key
    weight: int
    query_type: QueryTypeKey

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise SimilarityError("probe record weight must be >= 1")


@dataclass
class Probe:
    """A probe for one dataset, sent from the bottleneck site."""

    dataset_id: str
    origin_site: str
    records: List[ProbeRecord] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return len(self.records) * PROBE_RECORD_BYTES

    def records_for(self, attributes: Sequence[str]) -> List[ProbeRecord]:
        wanted = query_type_key(attributes)
        return [record for record in self.records if record.query_type == wanted]

    @property
    def query_types(self) -> List[QueryTypeKey]:
        seen: List[QueryTypeKey] = []
        for record in self.records:
            if record.query_type not in seen:
                seen.append(record.query_type)
        return seen


def largest_remainder_allocation(
    weights: Mapping[str, float], total: int
) -> Dict[str, int]:
    """Split ``total`` units across keys proportionally to ``weights``.

    Uses the largest-remainder method so the shares sum exactly to
    ``total``.  Zero-weight keys get nothing; ties break by key order.
    """
    if total < 0:
        raise SimilarityError("total must be >= 0")
    weight_sum = sum(weights.values())
    if weight_sum <= 0:
        raise SimilarityError("weights must sum to a positive value")
    exact = {key: total * weight / weight_sum for key, weight in weights.items()}
    floors = {key: int(value) for key, value in exact.items()}
    shortfall = total - sum(floors.values())
    remainders = sorted(
        weights.keys(), key=lambda key: (-(exact[key] - floors[key]), str(key))
    )
    for key in remainders[:shortfall]:
        floors[key] += 1
    return floors


class ProbeBuilder:
    """Builds probes from a site's dimension cubes."""

    def __init__(self, k: int = 30) -> None:
        if k < 1:
            raise SimilarityError("probe size k must be >= 1")
        self.k = k

    def build(
        self,
        dataset_id: str,
        origin_site: str,
        cube_set: DimensionCubeSet,
        query_type_weights: Mapping[Tuple[str, ...], float],
        k: "int | None" = None,
    ) -> Probe:
        """Build the probe for one dataset.

        ``query_type_weights`` maps attribute tuples to the fraction of
        queries of that type (§4.2's weights); they need not be
        normalized.  Each type contributes its weighted share of the k
        records, taken from the top of its dimension cube's cluster
        ordering.
        """
        budget = self.k if k is None else k
        if budget < 1:
            raise SimilarityError("probe budget must be >= 1")
        if not query_type_weights:
            raise SimilarityError("at least one query type is required")
        canonical = {
            query_type_key(attributes): weight
            for attributes, weight in query_type_weights.items()
        }
        allocation = largest_remainder_allocation(
            {"|".join(key): weight for key, weight in canonical.items()}, budget
        )
        probe = Probe(dataset_id=dataset_id, origin_site=origin_site)
        for type_key in canonical:
            share = allocation["|".join(type_key)]
            if share == 0:
                continue
            cube = cube_set.cube_for(list(type_key))
            for coordinate, cell in cube.cells_by_weight()[:share]:
                probe.records.append(
                    ProbeRecord(key=coordinate, weight=cell.count, query_type=type_key)
                )
        if not probe.records:
            raise SimilarityError(
                f"probe for dataset {dataset_id!r} is empty; are the cubes empty?"
            )
        obs = instrument.current()
        if obs.enabled:
            obs.tracer.record(
                f"probe-build {dataset_id}",
                stage="probe",
                dataset=dataset_id,
                origin=origin_site,
                records=len(probe.records),
                bytes=probe.size_bytes,
            )
            obs.metrics.counter("probe_records", dataset=dataset_id).inc(
                len(probe.records)
            )
            obs.metrics.counter("probe_bytes", dataset=dataset_id).inc(
                probe.size_bytes
            )
        return probe

    def allocate_across_datasets(
        self, dataset_bytes: Mapping[str, int], total_k: "int | None" = None
    ) -> Dict[str, int]:
        """Split a global probe budget across datasets by size (Table 2).

        "We determine the number of records contained in the probe for
        each dataset mainly based on the dataset size."  Every non-empty
        dataset receives at least one record when the budget allows.
        """
        budget = self.k if total_k is None else total_k
        if not dataset_bytes:
            return {}
        allocation = largest_remainder_allocation(
            {key: float(value) for key, value in dataset_bytes.items()}, budget
        )
        # Guarantee one record per non-empty dataset where possible.
        if budget >= len(dataset_bytes):
            starving = [
                key
                for key, size in dataset_bytes.items()
                if size > 0 and allocation[key] == 0
            ]
            donors = sorted(allocation, key=lambda key: -allocation[key])
            for key in starving:
                for donor in donors:
                    if allocation[donor] > 1:
                        allocation[donor] -= 1
                        allocation[key] += 1
                        break
        return allocation
