"""Similarity machinery (§4, §6).

Cross-site dataset similarity is estimated with *probes* built from the
top cells of OLAP dimension cubes; runtime RDD-partition similarity uses a
Jaccard-modified DIMSUM algorithm plus k-means clustering.  High-dimension
feature vectors (the paper's image datasets) go through a vector space
model and locality sensitive hashing.
"""

from repro.similarity.checker import SimilarityChecker, SiteSimilarity
from repro.similarity.dimsum import DimsumConfig, dimsum_similarity_matrix
from repro.similarity.kmeans import KMeansResult, kmeans
from repro.similarity.lsh import CosineLSH, MinHashLSH
from repro.similarity.metrics import (
    cosine_similarity,
    intra_similarity,
    jaccard,
    overlap_coefficient,
    weighted_jaccard,
)
from repro.similarity.minhash import MinHasher, MinHashSignature
from repro.similarity.probes import Probe, ProbeBuilder, ProbeRecord
from repro.similarity.vsm import VectorSpaceModel, synthetic_image_features

__all__ = [
    "CosineLSH",
    "DimsumConfig",
    "KMeansResult",
    "MinHashLSH",
    "MinHashSignature",
    "MinHasher",
    "Probe",
    "ProbeBuilder",
    "ProbeRecord",
    "SimilarityChecker",
    "SiteSimilarity",
    "VectorSpaceModel",
    "cosine_similarity",
    "dimsum_similarity_matrix",
    "intra_similarity",
    "jaccard",
    "kmeans",
    "overlap_coefficient",
    "synthetic_image_features",
    "weighted_jaccard",
]
