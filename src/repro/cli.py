"""Command-line interface.

::

    python -m repro schemes
    python -m repro topology [--base-uplink 2MB/s]
    python -m repro run --scheme bohr --workload tpcds [options]
    python -m repro compare --workload bigdata-aggregation \
        --schemes iridium,iridium-c,bohr [options]
    python -m repro inspect trace.jsonl [--chrome trace.json]

``run`` executes one scheme on one workload (with the vanilla in-place
baseline for the data-reduction metric) and prints the QCT and per-site
reduction; ``compare`` does the same for several schemes side by side.
Results can be saved to JSON with ``--json`` and reloaded by
:mod:`repro.core.persistence`.

``run`` and ``compare`` take ``--trace FILE`` (JSONL span trace),
``--chrome-trace FILE`` (Chrome ``chrome://tracing`` / Perfetto
trace-event format), ``--metrics FILE`` (metrics snapshot JSON) and
``--sanitize`` (runtime invariant sanitizer: bytes conservation,
sim-clock monotonicity, LP feasibility — non-zero exit on violation);
``inspect`` renders a saved JSONL trace as a per-stage latency
breakdown and can convert it to the Chrome format; ``lint`` runs the
project's simulation-aware static analysis (per-file rules R001–R008,
whole-program passes R009–R012 with ``--static``) and the two-run
``--determinism`` smoke.  ``--chaos PROFILE`` (with
``--chaos-seed``) injects a deterministic fault schedule — degraded and
blacked-out links, site outages, stragglers, lost task waves — and runs
the scheme on the failure-aware runtime (retries with exponential
backoff, degraded replanning, partial results)::

    python -m repro lint src/repro benchmarks
    python -m repro lint --determinism
    python -m repro run --scheme bohr --sanitize
    python -m repro run --scheme bohr --chaos flaky-wan --sanitize

``bench`` is the continuous-benchmarking harness: it discovers the
``benchmarks/bench_*.py`` suite (or a curated ``--suite
smoke|figures|tables|ablations`` subset), runs every registered case
with a pinned seed, and writes a versioned ``BENCH_<n>.json``;
``--compare BASELINE.json`` re-runs the suite and gates on per-metric
tolerance bands (tight for sim-time, loose for wall time).  ``--profile``
(on ``run``, ``compare`` and ``bench``) enables the two-clock profiler:
a QCT breakdown attributing each query's completion time across stages,
plus cProfile wall-clock hotspots with a collapsed-stack export
(``--profile-out``, flamegraph-renderable); ``inspect --breakdown``
prints the same QCT attribution for a saved trace::

    python -m repro bench --suite smoke --out BENCH_smoke.json
    python -m repro bench --suite smoke --compare BENCH_smoke.json
    python -m repro run --scheme bohr --profile
    python -m repro inspect trace.jsonl --breakdown

``--telemetry FILE`` (on ``run`` and ``compare``) records the streaming
runtime event bus — flow/link/stage/fault/plan events on the simulated
clock — as versioned JSONL (schema in DESIGN.md); ``report`` renders a
recorded stream as a static self-contained HTML dashboard (per-link
utilization heatmap with fault overlays, stage Gantt, estimator-error
curve, cumulative delivered vs. abandoned bytes); ``top`` drives a
dynamic-dataset sweep with a live terminal view over the same bus::

    python -m repro run --scheme bohr --chaos havoc --telemetry tele.jsonl
    python -m repro report tele.jsonl --out report.html
    python -m repro top --scheme bohr --queries 12
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.chaos.profiles import CHAOS_PROFILES
from repro.core.report import render_qct_table, render_reduction_table
from repro.core.runner import ExperimentResult, run_experiment
from repro.systems.base import SystemConfig
from repro.systems.registry import SCHEME_NAMES
from repro.util.units import format_bytes, format_seconds
from repro.wan.presets import ec2_ten_sites

WORKLOAD_CHOICES = (
    "bigdata-scan",
    "bigdata-udf",
    "bigdata-aggregation",
    "bigdata",
    "tpcds",
    "facebook",
    "images",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bohr (CoNEXT 2018) reproduction: geo-distributed "
        "analytics with similarity-aware placement.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("schemes", help="list the available schemes")

    topology_cmd = commands.add_parser(
        "topology", help="print the ten-region EC2 topology"
    )
    topology_cmd.add_argument("--base-uplink", default="2MB/s")

    for name, needs_schemes in (("run", False), ("compare", True)):
        cmd = commands.add_parser(
            name,
            help="execute one scheme" if name == "run" else "compare schemes",
        )
        if needs_schemes:
            cmd.add_argument(
                "--schemes",
                default="iridium,iridium-c,bohr",
                help="comma-separated scheme names",
            )
        else:
            cmd.add_argument("--scheme", default="bohr", choices=SCHEME_NAMES)
        cmd.add_argument("--workload", default="bigdata-aggregation",
                         choices=WORKLOAD_CHOICES)
        cmd.add_argument("--placement", default="random",
                         choices=("random", "locality"))
        cmd.add_argument("--base-uplink", default="2MB/s")
        cmd.add_argument("--lag", type=float, default=8.0,
                         help="query lag window T in seconds")
        cmd.add_argument("--probe-k", type=int, default=30)
        cmd.add_argument("--queries", type=int, default=6,
                         help="queries to execute per scheme")
        cmd.add_argument("--seed", type=int, default=11)
        cmd.add_argument("--scale", type=float, default=1.0)
        cmd.add_argument("--json", metavar="PATH",
                         help="also write results to a JSON file")
        cmd.add_argument("--trace", metavar="FILE",
                         help="write the span trace as JSONL")
        cmd.add_argument("--chrome-trace", metavar="FILE",
                         help="write the span trace in Chrome "
                         "chrome://tracing trace-event format")
        cmd.add_argument("--metrics", metavar="FILE",
                         help="write a metrics snapshot as JSON")
        cmd.add_argument("--telemetry", metavar="FILE",
                         help="record the streaming runtime event bus "
                         "as versioned JSONL (render with 'repro report')")
        cmd.add_argument("--sanitize", action="store_true",
                         help="check simulation invariants (bytes "
                         "conservation, clock monotonicity, LP "
                         "feasibility) during the run; exit 1 on any "
                         "violation")
        cmd.add_argument("--chaos", metavar="PROFILE", default=None,
                         choices=CHAOS_PROFILES,
                         help="inject a deterministic fault schedule "
                         f"({', '.join(CHAOS_PROFILES)}) and run the "
                         "scheme on the failure-aware runtime")
        cmd.add_argument("--chaos-seed", type=int, default=13,
                         help="seed deriving the fault schedule "
                         "(same seed => identical faults)")
        cmd.add_argument("--profile", action="store_true",
                         help="two-clock profiler: print the QCT stage "
                         "breakdown and collect wall-clock hotspots with "
                         "a collapsed-stack export")
        cmd.add_argument("--profile-out", metavar="FILE",
                         default="profile.collapsed",
                         help="collapsed-stack file for --profile "
                         "(default: profile.collapsed)")

    inspect_cmd = commands.add_parser(
        "inspect", help="per-stage latency breakdown of a saved trace"
    )
    inspect_cmd.add_argument("trace", metavar="TRACE",
                             help="JSONL trace written by --trace")
    inspect_cmd.add_argument("--chrome", metavar="FILE",
                             help="also convert the trace to Chrome "
                             "trace-event format")
    inspect_cmd.add_argument("--breakdown", action="store_true",
                             help="print the per-stage QCT attribution "
                             "table (percentages sum to 100)")

    report_cmd = commands.add_parser(
        "report",
        help="render a recorded telemetry stream as a static HTML dashboard",
    )
    report_cmd.add_argument("telemetry_file", metavar="TELEMETRY",
                            help="JSONL stream written by --telemetry")
    report_cmd.add_argument("--out", metavar="FILE", default="report.html",
                            help="output HTML path (default: report.html)")
    report_cmd.add_argument("--title", default="repro telemetry report")

    top_cmd = commands.add_parser(
        "top",
        help="dynamic-dataset sweep with a live terminal telemetry view",
    )
    top_cmd.add_argument("--scheme", default="bohr", choices=SCHEME_NAMES)
    top_cmd.add_argument("--workload", default="bigdata-aggregation",
                         choices=WORKLOAD_CHOICES)
    top_cmd.add_argument("--placement", default="random",
                         choices=("random", "locality"))
    top_cmd.add_argument("--base-uplink", default="2MB/s")
    top_cmd.add_argument("--lag", type=float, default=8.0)
    top_cmd.add_argument("--probe-k", type=int, default=30)
    top_cmd.add_argument("--queries", type=int, default=12,
                         help="queries to execute in the sweep")
    top_cmd.add_argument("--replan-every", type=int, default=5)
    top_cmd.add_argument("--batches", type=int, default=15,
                         help="dynamic batches per dataset feed")
    top_cmd.add_argument("--initial-fraction", type=float, default=0.25)
    top_cmd.add_argument("--interval", type=float, default=20.0,
                         help="seconds between batch arrivals")
    top_cmd.add_argument("--seed", type=int, default=11)
    top_cmd.add_argument("--scale", type=float, default=1.0)
    top_cmd.add_argument("--chaos", metavar="PROFILE", default=None,
                         choices=CHAOS_PROFILES)
    top_cmd.add_argument("--chaos-seed", type=int, default=13)
    top_cmd.add_argument("--refresh", type=int, default=500,
                         help="repaint every N telemetry events")
    top_cmd.add_argument("--telemetry", metavar="FILE",
                         help="also record the stream as JSONL")

    serve_cmd = commands.add_parser(
        "serve",
        help="concurrent multi-tenant serving: Zipf load over one shared "
        "sim clock with WFQ fairness, admission control, and a cube cache",
    )
    serve_cmd.add_argument("--scheme", default="bohr", choices=SCHEME_NAMES)
    serve_cmd.add_argument("--workload", default="bigdata-aggregation",
                           choices=WORKLOAD_CHOICES)
    serve_cmd.add_argument("--placement", default="random",
                           choices=("random", "locality"))
    serve_cmd.add_argument("--base-uplink", default="2MB/s")
    serve_cmd.add_argument("--lag", type=float, default=8.0)
    serve_cmd.add_argument("--probe-k", type=int, default=30)
    serve_cmd.add_argument("--seed", type=int, default=11)
    serve_cmd.add_argument("--scale", type=float, default=1.0)
    serve_cmd.add_argument("--tenants", type=int, default=4,
                           help="tenant population size")
    serve_cmd.add_argument("--weights", default="",
                           help="comma-separated tenant weights, cycled "
                           "over tenants (default: all 1.0)")
    serve_cmd.add_argument("--queries", type=int, default=40,
                           help="arrivals to offer")
    serve_cmd.add_argument("--rate", type=float, default=2.0,
                           help="aggregate arrivals per sim-second "
                           "(open loop)")
    serve_cmd.add_argument("--zipf", type=float, default=1.1,
                           help="tenant-popularity Zipf exponent")
    serve_cmd.add_argument("--max-inflight", type=int, default=8,
                           help="global concurrent-query ceiling")
    serve_cmd.add_argument("--max-inflight-per-tenant", type=int, default=4)
    serve_cmd.add_argument("--queue-depth", type=int, default=16,
                           help="per-tenant queue depth; arrivals beyond "
                           "are shed")
    serve_cmd.add_argument("--cache-size", type=int, default=32,
                           help="cube-cache capacity in entries (0 "
                           "disables the cache)")
    serve_cmd.add_argument("--cache-serve-seconds", type=float, default=0.05,
                           help="fixed sim cost of a cache-served answer")
    serve_cmd.add_argument("--map-slots", type=int, default=None,
                           help="per-site concurrent map-stage slots "
                           "(default: the site's executor count)")
    serve_cmd.add_argument("--hist", metavar="FILE",
                           help="write the latency histogram as JSON")
    serve_cmd.add_argument("--json", metavar="PATH",
                           help="write the full serve report as JSON")
    serve_cmd.add_argument("--telemetry", metavar="FILE",
                           help="record the streaming event bus (serve/"
                           "cache kinds included) as versioned JSONL")
    serve_cmd.add_argument("--slo", metavar="TENANT=TARGET",
                           action="append", default=[],
                           help="per-tenant QCT target in sim seconds "
                           "(repeatable; 'default=SECONDS' covers every "
                           "tenant not named).  Enables the critical-"
                           "path analyzer and the per-tenant SLO/"
                           "attainment table")
    serve_cmd.add_argument("--slo-goal", type=float, default=0.95,
                           help="attainment goal in (0, 1) shared by "
                           "every --slo target (default: 0.95)")
    serve_cmd.add_argument("--slo-window", type=float, default=5.0,
                           help="burn-rate window length in sim seconds "
                           "(default: 5.0)")
    serve_cmd.add_argument("--slo-report", metavar="FILE",
                           help="write the critical-path / blame / SLO "
                           "analysis as JSON (implies the analyzer even "
                           "without --slo)")
    serve_cmd.add_argument("--sanitize", action="store_true",
                           help="arm the invariant sanitizer during the "
                           "run and the critical-path conservation check "
                           "during analysis; exit 1 on any violation")

    from repro.bench.cli import add_bench_arguments

    bench_cmd = commands.add_parser(
        "bench",
        help="continuous-benchmarking harness: run suites, emit "
        "BENCH_<n>.json, gate on regressions",
    )
    add_bench_arguments(bench_cmd)

    from repro.lint.cli import add_lint_arguments

    lint_cmd = commands.add_parser(
        "lint",
        help="simulation-aware static analysis (R001-R008, --static "
        "adds whole-program R009-R012) + determinism smoke",
    )
    add_lint_arguments(lint_cmd)
    return parser


def _experiment(scheme: str, args: argparse.Namespace) -> ExperimentResult:
    from repro.workloads import build_workload

    topology = ec2_ten_sites(base_uplink=args.base_uplink)
    config = SystemConfig(
        lag_seconds=args.lag, probe_k=args.probe_k, seed=args.seed,
        partition_records=8,
    )
    chaos = None
    if args.chaos:
        from repro.chaos.profiles import build_schedule
        from repro.chaos.runtime import ChaosConfig

        chaos = ChaosConfig(
            faults=build_schedule(args.chaos, topology, seed=args.chaos_seed)
        )

    def factory():
        return build_workload(
            args.workload, topology, placement=args.placement,
            seed=args.seed, scale=args.scale,
        )

    return run_experiment(scheme, factory, topology, config,
                          query_limit=args.queries, chaos=chaos)


def _print_result(result: ExperimentResult) -> None:
    prep = result.prep
    print(
        f"{result.system} on {result.workload}: "
        f"mean QCT {format_seconds(result.mean_qct)} "
        f"(vanilla in-place: {format_seconds(result.baseline_mean_qct)}), "
        f"moved {format_bytes(prep.moved_bytes)}, "
        f"LP {prep.lp_solve_seconds * 1000:.1f} ms, "
        f"{len(prep.probes)} probes"
    )
    if result.chaos_profile is not None:
        print(
            f"  chaos [{result.chaos_profile}]: "
            f"{result.total_retries} retries, "
            f"lost {format_bytes(result.total_lost_bytes)}, "
            f"{result.aborted_queries} aborted queries"
        )


def _wants_observability(args: argparse.Namespace) -> bool:
    return bool(
        args.trace or args.chrome_trace or args.metrics or args.profile
        or args.telemetry
    )


def _fault_schedule(args: argparse.Namespace):
    """The deterministic fault schedule the run executed under (or None).

    Rebuilt from the same profile/seed/topology, so it is exactly the
    schedule the runtime saw — used to annotate the Chrome trace.
    """
    if not getattr(args, "chaos", None):
        return None
    from repro.chaos.profiles import build_schedule

    topology = ec2_ten_sites(base_uplink=args.base_uplink)
    return build_schedule(args.chaos, topology, seed=args.chaos_seed)


def _export_observability(args: argparse.Namespace, obs) -> None:
    from repro.obs.export import export_chrome, export_jsonl

    if args.trace:
        export_jsonl(obs.tracer, args.trace)
        print(f"trace written to {args.trace} ({len(obs.tracer.spans)} spans)")
    if args.chrome_trace:
        export_chrome(obs.tracer, args.chrome_trace, faults=_fault_schedule(args))
        print(f"Chrome trace written to {args.chrome_trace}")
    if args.metrics:
        obs.metrics.to_json(args.metrics)
        print(
            f"metrics written to {args.metrics} "
            f"({len(obs.metrics.series())} series)"
        )
    if args.telemetry:
        from repro.obs.telemetry import write_jsonl

        write_jsonl(obs.telemetry, args.telemetry)
        print(
            f"telemetry written to {args.telemetry} "
            f"({len(obs.telemetry.events)} events)"
        )


def _run_top(args: argparse.Namespace) -> int:
    from repro import make_system
    from repro.core.dynamic import initial_workload_from_feeds, run_dynamic
    from repro.obs import instrument
    from repro.obs.telemetry import TelemetryBus, write_jsonl
    from repro.obs.top import TelemetryTop
    from repro.workloads import build_workload
    from repro.workloads.dynamic import DynamicDataFeed

    topology = ec2_ten_sites(base_uplink=args.base_uplink)
    config = SystemConfig(
        lag_seconds=args.lag, probe_k=args.probe_k, seed=args.seed,
        partition_records=8,
    )
    chaos = None
    if args.chaos:
        from repro.chaos.profiles import build_schedule
        from repro.chaos.runtime import ChaosConfig

        chaos = ChaosConfig(
            faults=build_schedule(args.chaos, topology, seed=args.chaos_seed)
        )
    template = build_workload(
        args.workload, topology, placement=args.placement,
        seed=args.seed, scale=args.scale,
    )
    feeds = {
        dataset.dataset_id: DynamicDataFeed.split(
            dataset,
            initial_fraction=args.initial_fraction,
            num_batches=args.batches,
            interval_seconds=args.interval,
        )
        for dataset in template.catalog
    }
    workload = initial_workload_from_feeds(template, feeds)
    bus = TelemetryBus()
    view = TelemetryTop(refresh_events=args.refresh)
    view.attach(bus)
    with instrument.instrumented(telemetry=bus):
        # Built inside the slot so controller-construction events (the
        # chaos fault windows) reach the bus.
        controller = make_system(args.scheme, topology, config, chaos=chaos)
        result = run_dynamic(
            controller, workload, feeds,
            num_queries=args.queries, replan_every=args.replan_every,
        )
    view.close()
    print(
        f"\n{args.scheme} dynamic sweep on {args.workload}: "
        f"{len(result.qcts)} queries, mean QCT "
        f"{format_seconds(result.mean_qct)}, {result.replans} replans, "
        f"{result.batches_applied} batches, "
        f"{result.fault_replans} fault replans, "
        f"{result.aborted_queries} aborted"
    )
    if args.telemetry:
        write_jsonl(bus, args.telemetry)
        print(
            f"telemetry written to {args.telemetry} ({len(bus.events)} events)"
        )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeConfig, serve_workload
    from repro.workloads import build_workload

    topology = ec2_ten_sites(base_uplink=args.base_uplink)
    config = SystemConfig(
        lag_seconds=args.lag, probe_k=args.probe_k, seed=args.seed,
        partition_records=8,
    )

    def factory():
        return build_workload(
            args.workload, topology, placement=args.placement,
            seed=args.seed, scale=args.scale,
        )

    weights = tuple(
        float(part) for part in args.weights.split(",") if part.strip()
    )
    serve_config = ServeConfig(
        seed=args.seed,
        num_tenants=args.tenants,
        num_queries=args.queries,
        arrival_rate=args.rate,
        zipf_s=args.zipf,
        max_inflight=args.max_inflight,
        max_inflight_per_tenant=args.max_inflight_per_tenant,
        queue_depth=args.queue_depth,
        cache_capacity=args.cache_size,
        cache_serve_seconds=args.cache_serve_seconds,
        map_slots_per_site=args.map_slots,
        tenant_weights=weights,
    )
    analyze = bool(args.slo or args.slo_report)
    bus = None
    sanitizer = None
    if args.telemetry or analyze or args.sanitize:
        from repro.obs import instrument
        from repro.obs.telemetry import TelemetryBus

        if args.telemetry or analyze:
            bus = TelemetryBus()
        if args.sanitize:
            from repro.obs.sanitize import Sanitizer

            sanitizer = Sanitizer(mode="collect")
        with instrument.instrumented(telemetry=bus, sanitizer=sanitizer):
            report = serve_workload(
                args.scheme, factory, topology, config, serve_config
            )
            crit = slo_report = None
            if analyze:
                crit, slo_report = _analyze_serve(args, report, bus)
    else:
        report = serve_workload(
            args.scheme, factory, topology, config, serve_config
        )
        crit = slo_report = None

    print(
        f"{report.scheme} serving {args.workload}: "
        f"{len(report.queries)} arrivals from {args.tenants} tenants "
        f"(Zipf s={args.zipf}, rate {args.rate}/s, seed {args.seed})"
    )
    print(
        f"  completed {len(report.completed)} "
        f"({report.executed} executed, "
        f"{report.cache_hits} cache-served), shed {report.shed}"
    )
    print(
        f"  QCT p50 {format_seconds(report.p50_qct)}  "
        f"p99 {format_seconds(report.p99_qct)}  "
        f"mean {format_seconds(report.mean_qct)}  "
        f"makespan {format_seconds(report.makespan)}"
    )
    print(
        f"  cache: {report.cache_hits} hits / {report.cache_misses} misses "
        f"({100.0 * report.cache_hit_rate:.1f}%), "
        f"{report.cache_evictions} evictions"
    )
    print(f"  fairness (Jain, weight-normalized): {report.fairness:.4f}")
    print()
    print(f"  {'tenant':12s} {'weight':>6s} {'offered':>8s} {'executed':>9s} "
          f"{'cached':>7s} {'shed':>5s} {'mean QCT':>12s}")
    for tenant in report.tenants:
        print(
            f"  {tenant.name:12s} {tenant.weight:6.1f} {tenant.offered:8d} "
            f"{tenant.executed:9d} {tenant.cached:7d} {tenant.shed:5d} "
            f"{format_seconds(tenant.mean_qct):>12s}"
        )
    print()
    print(f"  sim digest: {report.sim_digest()}")
    if crit is not None:
        _print_serve_analysis(crit, slo_report)
    if args.slo_report:
        with open(args.slo_report, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "critpath": crit.to_dict(),
                    "slo": slo_report.to_dict() if slo_report else None,
                },
                handle,
                indent=2,
            )
        print(f"SLO/blame report written to {args.slo_report}")
    if args.hist:
        with open(args.hist, "w", encoding="utf-8") as handle:
            json.dump(report.latency_histogram(), handle, indent=2)
        print(f"latency histogram written to {args.hist}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"serve report written to {args.json}")
    if bus is not None and args.telemetry:
        from repro.obs.telemetry import write_jsonl

        write_jsonl(bus, args.telemetry)
        print(
            f"telemetry written to {args.telemetry} ({len(bus.events)} events)"
        )
    if sanitizer is not None:
        print()
        print(sanitizer.summary())
        if sanitizer.violations:
            return 1
    return 0


def _analyze_serve(args: argparse.Namespace, report, bus):
    """Run the critical-path analyzer + SLO tracker over a serve run.

    The derived ``slo-*`` / ``slo-blame`` events are appended to the bus
    (in deterministic order) before the archive is written, so
    ``--telemetry`` files, ``repro report`` panels and ``repro top``
    all see the same stream.
    """
    from repro.obs.critpath import analyze_critical_paths, emit_blame
    from repro.obs.slo import SloTracker, parse_slo_targets

    crit = analyze_critical_paths(bus.events)
    slo_report = None
    if args.slo:
        tenants = [tenant.name for tenant in report.tenants]
        specs = parse_slo_targets(args.slo, tenants, goal=args.slo_goal)
        tracker = SloTracker(specs, window_seconds=args.slo_window)
        tracker.observe_events(bus.events)
        slo_report = tracker.finalize(report.makespan)
        tracker.emit_events(bus, slo_report)
    emit_blame(crit, bus)
    return crit, slo_report


def _print_serve_analysis(crit, slo_report) -> None:
    totals = crit.component_totals()
    print()
    print(
        "  critical path (all queries): "
        f"queue {format_seconds(totals['queue_wait'])}  "
        f"slot {format_seconds(totals['slot_wait'])}  "
        f"map {format_seconds(totals['map_seconds'])}  "
        f"wan {format_seconds(totals['wan_serial'])}"
        f"+{format_seconds(totals['wan_contention'])} contended  "
        f"reduce {format_seconds(totals['reduce_seconds'])}  "
        f"cache {format_seconds(totals['cached_seconds'])}"
    )
    print(f"  conservation: max residual {crit.max_residual():.3e} s")
    if crit.blame:
        print("  blame (victim <- top culprits, contention seconds):")
        for victim in sorted(crit.blame):
            culprits = crit.blame[victim]
            ranked = sorted(
                culprits.items(), key=lambda item: (-item[1], item[0])
            )[:3]
            cells = ", ".join(
                f"{culprit} {seconds:.2f}s" for culprit, seconds in ranked
            )
            print(f"    {victim:12s} <- {cells}")
    if slo_report is not None:
        print()
        print(
            f"  {'tenant':12s} {'target':>8s} {'done':>5s} {'viol':>5s} "
            f"{'attain':>7s} {'goal':>5s} {'met':>4s} {'p50':>9s} "
            f"{'p99':>9s} {'burn':>6s}"
        )
        for row in slo_report.rows:
            print(
                f"  {row.tenant:12s} {row.target_seconds:8.2f} "
                f"{row.completed:5d} {row.violations:5d} "
                f"{row.attainment * 100:6.1f}% {row.goal * 100:4.0f}% "
                f"{'yes' if row.met else 'NO':>4s} "
                f"{format_seconds(row.p50):>9s} {format_seconds(row.p99):>9s} "
                f"{row.max_burn:5.1f}x"
            )
        print(f"  slo digest: {slo_report.digest()}")
    print(f"  critpath digest: {crit.digest()}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "schemes":
        from repro.systems.registry import profile_for

        for name in SCHEME_NAMES:
            profile = profile_for(name)
            flags = []
            if profile.uses_cubes:
                flags.append("cubes")
            if profile.uses_similarity:
                flags.append("similarity")
            flags.append(profile.placement_strategy)
            if profile.rdd_similarity:
                flags.append("rdd")
            print(f"{name:12s} {' + '.join(flags)}")
        return 0

    if args.command == "topology":
        print(ec2_ten_sites(base_uplink=args.base_uplink).describe())
        return 0

    if args.command == "inspect":
        from repro.obs.export import export_chrome, load_jsonl
        from repro.obs.inspect import render_inspection

        spans = load_jsonl(args.trace)
        print(render_inspection(spans, source=args.trace))
        if args.breakdown:
            from repro.obs.profile import qct_breakdown, render_breakdown

            print()
            print(render_breakdown(qct_breakdown(spans)))
        if args.chrome:
            export_chrome(spans, args.chrome)
            print(f"\nChrome trace written to {args.chrome}")
        return 0

    if args.command == "bench":
        from repro.bench.cli import run_bench
        from repro.errors import BenchError

        try:
            return run_bench(args)
        except BenchError as error:
            print(f"bench error: {error}")
            return 2

    if args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)

    if args.command == "report":
        from repro.obs.report_html import write_report
        from repro.obs.telemetry import load_jsonl as load_telemetry

        header, events = load_telemetry(args.telemetry_file)
        write_report(
            events, args.out, title=args.title, source=args.telemetry_file
        )
        print(
            f"report written to {args.out} "
            f"({len(events)} events, schema v{header['version']})"
        )
        return 0

    if args.command == "top":
        return _run_top(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "run":
        schemes = [args.scheme]
    else:  # compare
        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]

    obs = None
    sanitizer = None
    profiler = None
    if args.profile:
        from repro.obs.profile import WallProfiler

        profiler = WallProfiler()
    if args.sanitize or _wants_observability(args):
        from repro.obs import instrument

        if args.sanitize:
            from repro.obs.sanitize import Sanitizer

            sanitizer = Sanitizer(mode="collect")
        telemetry = None
        if args.telemetry:
            from repro.obs.telemetry import TelemetryBus

            telemetry = TelemetryBus()
        with instrument.instrumented(
            sanitizer=sanitizer, telemetry=telemetry
        ) as obs:
            if profiler is not None:
                with profiler:
                    results = [_experiment(scheme, args) for scheme in schemes]
            else:
                results = [_experiment(scheme, args) for scheme in schemes]
    else:
        results = [_experiment(scheme, args) for scheme in schemes]

    for result in results:
        _print_result(result)
    print()
    if args.command == "compare":
        print(render_qct_table(results, title="Mean QCT (seconds)"))
        print()
    print(render_reduction_table(results,
                                 title="Data reduction vs in-place (%)"))
    if args.json:
        from repro.core.persistence import save_results

        save_results(results, args.json)
        print(f"\nresults written to {args.json}")
    if profiler is not None and obs is not None:
        from repro.obs.profile import qct_breakdown, render_breakdown

        print()
        print(render_breakdown(qct_breakdown(obs.tracer.spans)))
        print()
        print(profiler.render_hotspots(limit=15))
        stack_lines = profiler.write_collapsed(args.profile_out)
        print(
            f"collapsed stacks written to {args.profile_out} "
            f"({stack_lines} lines)"
        )
    if obs is not None and _wants_observability(args):
        print()
        _export_observability(args, obs)
    if sanitizer is not None:
        print()
        print(sanitizer.summary())
        if sanitizer.violations:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
