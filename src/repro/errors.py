"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class TopologyError(ReproError):
    """Raised for malformed WAN topologies (unknown sites, bad bandwidth)."""


class CubeError(ReproError):
    """Raised by OLAP cube operations (unknown dimension, bad coordinates)."""


class SchemaError(ReproError):
    """Raised when records do not match the dataset schema."""


class PlacementError(ReproError):
    """Raised when a data/task placement problem is infeasible or invalid."""


class SolverError(PlacementError):
    """Raised when an LP solver fails to converge or reports infeasibility."""


class QueryError(ReproError):
    """Raised for malformed queries (parse errors, unknown attributes)."""


class EngineError(ReproError):
    """Raised by the execution engine (bad DAG, missing partitions)."""


class SimilarityError(ReproError):
    """Raised by similarity checking (empty probes, dimension mismatch)."""


class WorkloadError(ReproError):
    """Raised by workload generators for invalid generation parameters."""


class ObservabilityError(ReproError):
    """Raised on malformed spans, traces or metric operations."""


class LintError(ReproError):
    """Raised by the static-analysis pass (bad rule ids, unreadable files)."""


class InvariantViolation(ReproError):
    """Raised by the runtime sanitizer when a simulation invariant breaks."""


class FaultError(ReproError):
    """Raised for malformed fault schedules or unknown chaos profiles."""


class TransferAbandoned(ReproError):
    """Raised when a transfer exhausts its retry budget under chaos."""


class BenchError(ReproError):
    """Raised by the benchmark harness (bad cases, malformed reports)."""


class ServeError(ReproError):
    """Raised by the serving layer (bad tenant config, wedged admission)."""
