"""Deterministic fault schedules (the chaos layer's ground truth).

A :class:`FaultSchedule` is a fixed, seed-derived list of
:class:`FaultEvent` windows that the WAN simulator and the engine consult
while they run.  Faults are *data*, not callbacks: two runs with the same
schedule replay the exact same failures, which is what makes chaos runs
comparable across schemes and reproducible in CI.

Fault kinds and their semantics:

``link-degrade``
    The site's uplink and downlink capacity is multiplied by
    ``severity`` (in ``(0, 1)``) during the window.
``link-blackout``
    Capacity drops to zero during the window.  Flows through the site
    *park* — they keep their place and resume when capacity returns —
    rather than erroring out (see
    :class:`~repro.wan.transfer.TransferScheduler`).
``transfer-stall``
    Same zero-capacity link effect as a blackout, but modelling an
    end-host pathology (TCP stall, dead connection) rather than the link
    itself going dark; reported separately.
``site-outage``
    The whole site is dark: links at zero *and* the site is reported
    dead to the runtime, which triggers degraded re-planning.
``straggler``
    The site's executors run ``severity``× slower (>= 1) for the whole
    job.
``task-failure``
    ``severity`` map-task waves at the site fail and re-execute, each
    re-run costing the busiest executor's map time again.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultError

#: Fault kinds that scale (or zero) a site's link capacity.
LINK_KINDS = ("link-degrade", "link-blackout", "transfer-stall", "site-outage")
#: Fault kinds that act on the site's compute.
COMPUTE_KINDS = ("straggler", "task-failure")
FAULT_KINDS = LINK_KINDS + COMPUTE_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One fault window at one site.

    ``severity`` is kind-specific: the capacity multiplier for
    ``link-degrade``, the slowdown factor for ``straggler``, the number
    of failed waves for ``task-failure``; unused (0.0) for the
    zero-capacity kinds.
    """

    kind: str
    site: str
    start: float
    end: float
    severity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not self.site:
            raise FaultError("fault event needs a site name")
        if self.start < 0:
            raise FaultError(f"fault start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise FaultError(
                f"fault window must be non-empty, got [{self.start}, {self.end}]"
            )
        if self.kind == "link-degrade" and not 0.0 < self.severity < 1.0:
            raise FaultError(
                f"link-degrade severity must be in (0, 1), got {self.severity}"
            )
        if self.kind == "straggler" and self.severity < 1.0:
            raise FaultError(
                f"straggler severity must be >= 1, got {self.severity}"
            )
        if self.kind == "task-failure" and (
            self.severity < 1.0 or self.severity != int(self.severity)
        ):
            raise FaultError(
                f"task-failure severity must be a positive integer wave "
                f"count, got {self.severity}"
            )

    def active_at(self, now: float) -> bool:
        """Whether the window covers ``now`` (start inclusive, end exclusive)."""
        return self.start <= now < self.end

    @property
    def is_link_fault(self) -> bool:
        return self.kind in LINK_KINDS

    def link_multiplier(self) -> float:
        """Capacity multiplier while the window is active (0 for blackouts)."""
        if self.kind == "link-degrade":
            return self.severity
        return 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "site": self.site,
            "start": self.start,
            "end": self.end,
            "severity": self.severity,
        }


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable batch of fault events plus fast lookup structure.

    The schedule precomputes, per site, the sorted link-fault windows and
    the global sorted list of capacity change points, so the transfer
    scheduler's inner loop pays one bisect per lookup.
    """

    events: Tuple[FaultEvent, ...]
    name: str = ""
    seed: Optional[int] = None
    _link_events: Dict[str, Tuple[FaultEvent, ...]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _change_points: Tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        per_site: Dict[str, List[FaultEvent]] = {}
        points: List[float] = []
        for event in self.events:
            if event.is_link_fault:
                per_site.setdefault(event.site, []).append(event)
                points.append(event.start)
                if not math.isinf(event.end):
                    points.append(event.end)
        object.__setattr__(
            self,
            "_link_events",
            {
                site: tuple(sorted(site_events, key=lambda e: (e.start, e.end)))
                for site, site_events in per_site.items()
            },
        )
        object.__setattr__(self, "_change_points", tuple(sorted(set(points))))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "FaultSchedule":
        return cls(events=(), name="none")

    @property
    def is_empty(self) -> bool:
        return not self.events

    def sites(self) -> List[str]:
        """All sites named by any event, sorted."""
        return sorted({event.site for event in self.events})

    # ------------------------------------------------------------------
    # link faults (consulted by the WAN simulator)
    # ------------------------------------------------------------------

    def link_multiplier(self, site: str, now: float) -> float:
        """Product of active link-fault multipliers at ``site`` (0 = dark)."""
        multiplier = 1.0
        for event in self._link_events.get(site, ()):
            if event.start > now:
                break
            if event.active_at(now):
                multiplier *= event.link_multiplier()
                if multiplier == 0.0:  # lint: allow[R004] — blackout multipliers are exact literal zeros
                    return 0.0
        return multiplier

    def next_change_after(self, now: float) -> Optional[float]:
        """Earliest link-capacity change point strictly after ``now``."""
        index = bisect.bisect_right(self._change_points, now + 1e-12)
        if index >= len(self._change_points):
            return None
        return self._change_points[index]

    # ------------------------------------------------------------------
    # compute faults (consulted by the engine)
    # ------------------------------------------------------------------

    def compute_slowdown(self, site: str) -> float:
        """Combined straggler slowdown factor for the site's executors."""
        slowdown = 1.0
        for event in self.events:
            if event.kind == "straggler" and event.site == site:
                slowdown *= event.severity
        return slowdown

    def task_failure_waves(self, site: str) -> int:
        """Total failed map-task waves to re-execute at the site."""
        return int(
            sum(
                event.severity
                for event in self.events
                if event.kind == "task-failure" and event.site == site
            )
        )

    # ------------------------------------------------------------------
    # outages (consulted by the failure-aware runtime)
    # ------------------------------------------------------------------

    def outage_sites(self) -> List[str]:
        """Sites with a whole-site outage anywhere in the schedule."""
        return sorted(
            {event.site for event in self.events if event.kind == "site-outage"}
        )

    def site_dead_at(self, site: str, now: float) -> bool:
        return any(
            event.kind == "site-outage" and event.site == site and event.active_at(now)
            for event in self.events
        )

    def outages_starting_in(self, start: float, end: float) -> List[FaultEvent]:
        """Site outages whose window opens inside ``[start, end)``."""
        return [
            event
            for event in self.events
            if event.kind == "site-outage" and start <= event.start < end
        ]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def describe(self) -> str:
        label = self.name or "custom"
        if self.is_empty:
            return f"chaos schedule {label}: no faults"
        parts = ", ".join(
            f"{count} {kind}"
            for kind, count in sorted(self.counts_by_kind().items())
        )
        return f"chaos schedule {label}: {parts} across {len(self.sites())} sites"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }


def merge_schedules(*schedules: FaultSchedule) -> FaultSchedule:
    """Concatenate schedules into one (events kept in given order)."""
    events: List[FaultEvent] = []
    for schedule in schedules:
        events.extend(schedule.events)
    name = "+".join(s.name for s in schedules if s.name) or "merged"
    return FaultSchedule(events=tuple(events), name=name)
