"""Deterministic fault injection and the failure-aware runtime.

``repro.chaos`` is the standard harness for every robustness claim: a
seed-derived :class:`~repro.chaos.schedule.FaultSchedule` describes link
degradations, blackouts, whole-site outages, stragglers and transfer
stalls; the WAN simulator and engine consume it during simulation, and
:mod:`repro.chaos.runtime` supplies the retry/backoff policy and the
:class:`~repro.chaos.runtime.ChaosConfig` bundle the controller runs
under.  Same seed, same faults, same results — chaos runs are as
deterministic as benign ones.
"""

from repro.chaos.profiles import CHAOS_PROFILES, build_schedule
from repro.chaos.runtime import (
    ChaosConfig,
    RetryOutcome,
    RetryPolicy,
    simulate_with_retries,
)
from repro.chaos.schedule import FaultEvent, FaultSchedule, merge_schedules

__all__ = [
    "CHAOS_PROFILES",
    "ChaosConfig",
    "FaultEvent",
    "FaultSchedule",
    "RetryOutcome",
    "RetryPolicy",
    "build_schedule",
    "merge_schedules",
    "simulate_with_retries",
]
