"""Named chaos profiles: seed → deterministic :class:`FaultSchedule`.

A profile is a recipe for drawing fault windows over a topology from a
derived RNG stream (:func:`repro.util.rng.derive_rng`), so the same
``(profile, seed, topology)`` triple always yields the identical
schedule — the property the CI determinism check pins.

Profiles (roughly ordered by hostility):

``flaky-wan``
    Every site suffers a couple of bandwidth-collapse windows
    (multiplier 0.1–0.5) and one site a short blackout — the everyday
    WAN weather WANify measures.
``blackout``
    One site's links go completely dark for a mid-run window.
``site-outage``
    One site goes fully dark (links + runtime-visible death), which
    exercises degraded re-planning.
``stragglers``
    A third of the sites run 2–4× slower executors.
``lossy-tasks``
    A third of the sites lose one or two map-task waves to failures.
``havoc``
    All of the above at once.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.errors import FaultError
from repro.util.rng import derive_rng
from repro.wan.topology import WanTopology

#: All built-in profile names (CLI ``--chaos`` choices).
CHAOS_PROFILES = (
    "flaky-wan",
    "blackout",
    "site-outage",
    "stragglers",
    "lossy-tasks",
    "havoc",
)

#: Default simulated horizon the fault windows are drawn over; chosen to
#: cover both the movement lag window and the query shuffles that follow.
DEFAULT_HORIZON_SECONDS = 120.0


def build_schedule(
    profile: str,
    topology: WanTopology,
    seed: int = 13,
    horizon_seconds: float = DEFAULT_HORIZON_SECONDS,
) -> FaultSchedule:
    """Materialize a named profile over ``topology``."""
    if profile not in CHAOS_PROFILES:
        raise FaultError(
            f"unknown chaos profile {profile!r}; expected one of {CHAOS_PROFILES}"
        )
    if horizon_seconds <= 0:
        raise FaultError("horizon_seconds must be > 0")
    sites = topology.site_names
    if not sites:
        raise FaultError("topology has no sites to fault")
    builders = {
        "flaky-wan": _flaky_wan,
        "blackout": _blackout,
        "site-outage": _site_outage,
        "stragglers": _stragglers,
        "lossy-tasks": _lossy_tasks,
        "havoc": _havoc,
    }
    events = builders[profile](sites, seed, horizon_seconds)
    return FaultSchedule(events=tuple(events), name=profile, seed=seed)


# ----------------------------------------------------------------------
# recipe internals — every random draw goes through a labelled stream so
# adding a recipe never perturbs another recipe's schedule.
# ----------------------------------------------------------------------


def _window(rng, horizon: float, min_len: float, max_len: float) -> Tuple[float, float]:
    # Starts are biased into the first ~15% of the horizon: every query's
    # WAN simulation restarts its clock at 0 and typically finishes well
    # before the horizon, so late windows would never intersect anything.
    length = float(rng.uniform(min_len, max_len))
    cap = max(min(horizon - length, horizon * 0.15), 1e-3)
    start = float(rng.uniform(0.0, cap))
    return start, start + length


def _flaky_wan(sites, seed: int, horizon: float) -> List[FaultEvent]:
    events: List[FaultEvent] = []
    for site in sites:
        rng = derive_rng(seed, "chaos", "flaky-wan", site)
        for _ in range(int(rng.integers(1, 3))):
            start, end = _window(rng, horizon, horizon * 0.05, horizon * 0.2)
            events.append(
                FaultEvent(
                    kind="link-degrade",
                    site=site,
                    start=start,
                    end=end,
                    severity=float(rng.uniform(0.1, 0.5)),
                )
            )
    rng = derive_rng(seed, "chaos", "flaky-wan", "blackout-pick")
    victim = sites[int(rng.integers(0, len(sites)))]
    start, end = _window(rng, horizon, horizon * 0.02, horizon * 0.08)
    events.append(
        FaultEvent(kind="link-blackout", site=victim, start=start, end=end)
    )
    return events


def _blackout(sites, seed: int, horizon: float) -> List[FaultEvent]:
    rng = derive_rng(seed, "chaos", "blackout")
    victim = sites[int(rng.integers(0, len(sites)))]
    start, end = _window(rng, horizon, horizon * 0.15, horizon * 0.35)
    return [FaultEvent(kind="link-blackout", site=victim, start=start, end=end)]


def _site_outage(sites, seed: int, horizon: float) -> List[FaultEvent]:
    rng = derive_rng(seed, "chaos", "site-outage")
    victim = sites[int(rng.integers(0, len(sites)))]
    start = float(rng.uniform(0.0, horizon * 0.3))
    return [
        FaultEvent(kind="site-outage", site=victim, start=start, end=math.inf)
    ]


def _faulted_subset(sites, rng, fraction: float = 1.0 / 3.0) -> List[str]:
    count = max(1, int(round(len(sites) * fraction)))
    picked = rng.choice(len(sites), size=count, replace=False)
    return [sites[index] for index in sorted(int(i) for i in picked)]


def _stragglers(sites, seed: int, horizon: float) -> List[FaultEvent]:
    rng = derive_rng(seed, "chaos", "stragglers")
    return [
        FaultEvent(
            kind="straggler",
            site=site,
            start=0.0,
            end=horizon,
            severity=float(rng.uniform(2.0, 4.0)),
        )
        for site in _faulted_subset(sites, rng)
    ]


def _lossy_tasks(sites, seed: int, horizon: float) -> List[FaultEvent]:
    rng = derive_rng(seed, "chaos", "lossy-tasks")
    return [
        FaultEvent(
            kind="task-failure",
            site=site,
            start=0.0,
            end=horizon,
            severity=float(rng.integers(1, 3)),
        )
        for site in _faulted_subset(sites, rng)
    ]


def _havoc(sites, seed: int, horizon: float) -> List[FaultEvent]:
    events = _flaky_wan(sites, seed, horizon)
    events.extend(_stragglers(sites, seed, horizon))
    events.extend(_lossy_tasks(sites, seed, horizon))
    # One transfer-stall window on the flakiest-drawn site.
    rng = derive_rng(seed, "chaos", "havoc", "stall")
    victim = sites[int(rng.integers(0, len(sites)))]
    start, end = _window(rng, horizon, horizon * 0.02, horizon * 0.06)
    events.append(
        FaultEvent(kind="transfer-stall", site=victim, start=start, end=end)
    )
    return events
