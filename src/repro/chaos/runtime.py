"""The failure-aware runtime: retries, backoff, and chaos configuration.

The chaos layer (:mod:`repro.chaos.schedule`) decides *what breaks*;
this module decides *how the system survives it*:

* :class:`RetryPolicy` — exponential backoff with a stall timeout and a
  bounded attempt budget, the knobs every production data mover exposes;
* :func:`simulate_with_retries` — drives a
  :class:`~repro.wan.transfer.TransferScheduler` until every transfer
  either delivered or exhausted its attempts, re-submitting failed
  transfers after backoff (a retry re-sends the transfer's full byte
  count: attempts are all-or-nothing, like a connection reset);
* :class:`ChaosConfig` — the bundle (schedule + retry policy + query
  deadline) a :class:`~repro.core.controller.Controller` runs under.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chaos.schedule import FaultSchedule
from repro.errors import ConfigurationError
from repro.obs import instrument
from repro.wan.transfer import Transfer, TransferResult, TransferScheduler


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget for WAN transfers."""

    max_attempts: int = 4
    base_backoff_seconds: float = 0.5
    backoff_multiplier: float = 2.0
    #: A flow parked at zero capacity for this long fails its attempt.
    stall_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff_seconds < 0:
            raise ConfigurationError("base_backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.stall_timeout_seconds <= 0:
            raise ConfigurationError("stall_timeout_seconds must be > 0")

    def backoff_seconds(self, attempt: int) -> float:
        """Delay before re-submitting after the ``attempt``-th failure."""
        if attempt < 1:
            raise ConfigurationError("attempt is 1-based")
        return self.base_backoff_seconds * self.backoff_multiplier ** (attempt - 1)


@dataclass(frozen=True)
class ChaosConfig:
    """Everything a controller needs to run under injected faults."""

    faults: FaultSchedule
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Queries whose QCT overshoots this are aborted with partial results.
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError("deadline_seconds must be > 0")


@dataclass
class RetryOutcome:
    """Final state of a batch of transfers after the retry loop."""

    #: Final result per input transfer, in input order (the last attempt).
    results: List[TransferResult] = field(default_factory=list)
    #: Total re-submissions across all transfers.
    retries: int = 0
    #: Transfers that exhausted the attempt budget (their last failure).
    abandoned: List[TransferResult] = field(default_factory=list)

    @property
    def requested_bytes(self) -> float:
        return sum(result.transfer.num_bytes for result in self.results)

    @property
    def delivered_bytes(self) -> float:
        return sum(result.delivered_bytes for result in self.results)

    @property
    def abandoned_bytes(self) -> float:
        return sum(result.transfer.num_bytes for result in self.abandoned)

    @property
    def makespan_seconds(self) -> float:
        if not self.results:
            return 0.0
        return max(result.finish_time for result in self.results)


def simulate_with_retries(
    scheduler: TransferScheduler,
    transfers: Sequence[Transfer],
    policy: RetryPolicy,
) -> RetryOutcome:
    """Simulate transfers, re-submitting failed attempts with backoff.

    The scheduler must have a finite stall timeout (normally the
    policy's) for failures to surface; each retry round re-simulates the
    still-failing transfers together so they contend with each other,
    starting after their per-transfer backoff delay.
    """
    obs = instrument.current()
    telemetry = obs.telemetry
    outcome = RetryOutcome()
    with obs.tracer.span(
        "retry-transfers", stage="chaos", transfers=len(transfers)
    ):
        final: List[Optional[TransferResult]] = [None] * len(transfers)
        attempts = [1] * len(transfers)
        live = list(range(len(transfers)))
        submitted = list(transfers)
        while live:
            results = scheduler.simulate([submitted[index] for index in live])
            next_live: List[int] = []
            for index, result in zip(live, results):
                stamped = TransferResult(
                    transfer=transfers[index],
                    finish_time=result.finish_time,
                    failed=result.failed,
                    attempts=attempts[index],
                )
                final[index] = stamped
                if not result.failed:
                    continue
                if attempts[index] >= policy.max_attempts:
                    outcome.abandoned.append(stamped)
                    if telemetry.enabled:
                        telemetry.emit(
                            "abandon",
                            t=result.finish_time,
                            src=transfers[index].src,
                            dst=transfers[index].dst,
                            num_bytes=transfers[index].num_bytes,
                            attempts=attempts[index],
                        )
                    continue
                delay = policy.backoff_seconds(attempts[index])
                original = transfers[index]
                if telemetry.enabled:
                    telemetry.emit(
                        "retry",
                        t=result.finish_time,
                        src=original.src,
                        dst=original.dst,
                        num_bytes=original.num_bytes,
                        attempt=attempts[index],
                        backoff_seconds=delay,
                        resume_at=result.finish_time + delay,
                    )
                submitted[index] = Transfer(
                    src=original.src,
                    dst=original.dst,
                    num_bytes=original.num_bytes,
                    start_time=result.finish_time + delay,
                    tag=original.tag,
                )
                attempts[index] += 1
                outcome.retries += 1
                next_live.append(index)
            live = next_live
        outcome.results = [result for result in final if result is not None]
    if obs.metrics.enabled and (outcome.retries or outcome.abandoned):
        obs.metrics.counter("retries").inc(outcome.retries)
        if outcome.abandoned:
            obs.metrics.counter("wan_fault_abandoned_transfers").inc(
                len(outcome.abandoned)
            )
            obs.metrics.counter("wan_fault_abandoned_bytes").inc(
                outcome.abandoned_bytes
            )
    if obs.sanitizer.enabled:
        obs.sanitizer.check_retry_outcome(outcome, policy)
    return outcome
