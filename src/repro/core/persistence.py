"""Serialization of experiment results to JSON.

Long sweeps write their results to disk so reports can be regenerated
without re-running experiments; round-tripping is exact for every field
the report helpers consume.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.core.controller import PreparationReport
from repro.core.runner import ExperimentResult, QueryRun
from repro.errors import ConfigurationError


def _run_to_dict(run: QueryRun) -> Dict:
    return {
        "dataset_id": run.dataset_id,
        "query_text": run.query_text,
        "qct": run.qct,
        "intermediate_bytes_by_site": dict(run.intermediate_bytes_by_site),
        "wan_bytes": run.wan_bytes,
        "rdd_overhead_seconds": run.rdd_overhead_seconds,
    }


def _run_from_dict(payload: Dict) -> QueryRun:
    return QueryRun(
        dataset_id=payload["dataset_id"],
        query_text=payload["query_text"],
        qct=payload["qct"],
        intermediate_bytes_by_site=dict(payload["intermediate_bytes_by_site"]),
        wan_bytes=payload["wan_bytes"],
        rdd_overhead_seconds=payload["rdd_overhead_seconds"],
    )


def result_to_dict(result: ExperimentResult) -> Dict:
    """JSON-safe dictionary of one experiment result.

    Preparation details keep the scalar observables (timings, moved
    bytes, fractions); probes and transfer traces are summarized, not
    serialized record-by-record.
    """
    prep = result.prep
    return {
        "system": result.system,
        "workload": result.workload,
        "prep": {
            "scheme": prep.scheme,
            "cube_build_seconds": prep.cube_build_seconds,
            "probe_build_seconds": prep.probe_build_seconds,
            "similarity_check_seconds": prep.similarity_check_seconds,
            "lp_solve_seconds": prep.lp_solve_seconds,
            "planner_iterations": prep.planner_iterations,
            "estimated_shuffle_seconds": prep.estimated_shuffle_seconds,
            "reduce_fractions": dict(prep.reduce_fractions),
            "moved_bytes": prep.moved_bytes,
            "num_probes": len(prep.probes),
            "total_probe_bytes": prep.total_probe_bytes,
            "cross_similarity": {
                "|".join(key): value
                for key, value in prep.cross_similarity.items()
            },
            "intra_similarity": {
                "|".join(key): value
                for key, value in prep.intra_similarity.items()
            },
        },
        "runs": [_run_to_dict(run) for run in result.runs],
        "baseline_runs": [_run_to_dict(run) for run in result.baseline_runs],
    }


def result_from_dict(payload: Dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict`.

    The preparation report is reconstructed with its scalar fields;
    probe/movement objects are not resurrected (``movement`` is None and
    ``moved_bytes`` is therefore 0 on the round-tripped object).
    """
    prep_payload = payload["prep"]
    prep = PreparationReport(scheme=prep_payload["scheme"])
    prep.cube_build_seconds = prep_payload["cube_build_seconds"]
    prep.probe_build_seconds = prep_payload["probe_build_seconds"]
    prep.similarity_check_seconds = prep_payload["similarity_check_seconds"]
    prep.lp_solve_seconds = prep_payload["lp_solve_seconds"]
    prep.planner_iterations = prep_payload["planner_iterations"]
    prep.estimated_shuffle_seconds = prep_payload["estimated_shuffle_seconds"]
    prep.reduce_fractions = dict(prep_payload["reduce_fractions"])
    prep.cross_similarity = {
        tuple(key.split("|")): value
        for key, value in prep_payload.get("cross_similarity", {}).items()
    }
    prep.intra_similarity = {
        tuple(key.split("|")): value
        for key, value in prep_payload.get("intra_similarity", {}).items()
    }
    return ExperimentResult(
        system=payload["system"],
        workload=payload["workload"],
        prep=prep,
        runs=[_run_from_dict(run) for run in payload["runs"]],
        baseline_runs=[_run_from_dict(run) for run in payload["baseline_runs"]],
    )


def save_results(results: List[ExperimentResult], path: "str | Path") -> None:
    """Write a batch of results as a JSON document."""
    document = {"version": 1, "results": [result_to_dict(r) for r in results]}
    Path(path).write_text(json.dumps(document, indent=2))


def load_results(path: "str | Path") -> List[ExperimentResult]:
    """Load a batch previously written by :func:`save_results`."""
    document = json.loads(Path(path).read_text())
    if document.get("version") != 1:
        raise ConfigurationError(
            f"unsupported results file version {document.get('version')!r}"
        )
    return [result_from_dict(payload) for payload in document["results"]]
