"""Bohr's controller and experiment harness.

:class:`~repro.core.controller.Controller` is the logically centralized
controller of §3: it pre-processes data into cubes, checks similarity
with probes, solves placement, executes the data movement in the query
lag, and runs queries on the engine.  The experiment runner and report
helpers regenerate the paper's tables and figures from it.
"""

from repro.core.controller import Controller, PreparationReport
from repro.core.dynamic import (
    DynamicRunResult,
    initial_workload_from_feeds,
    run_dynamic,
)
from repro.core.persistence import load_results, save_results
from repro.core.runner import ExperimentResult, QueryRun, run_experiment
from repro.core.report import (
    data_reduction_by_site,
    mean_qct_by_workload,
    summarize_reduction,
)

__all__ = [
    "Controller",
    "DynamicRunResult",
    "ExperimentResult",
    "PreparationReport",
    "QueryRun",
    "data_reduction_by_site",
    "initial_workload_from_feeds",
    "load_results",
    "mean_qct_by_workload",
    "run_dynamic",
    "run_experiment",
    "save_results",
    "summarize_reduction",
]
