"""Experiment runner: one scheme on one workload, with a vanilla baseline.

The paper's data-reduction metric is defined against processing in place
with stock Spark; the runner therefore executes the same queries twice —
once with the scheme under test (after its offline preparation), once
with a vanilla in-place engine — on identical fresh copies of the
workload, and reports QCT and per-site intermediate data for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.runtime import ChaosConfig
from repro.core.controller import Controller, PreparationReport
from repro.engine.job import MapReduceEngine
from repro.obs import instrument
from repro.query.compiler import compile_query
from repro.systems.base import SystemConfig
from repro.systems.registry import make_system
from repro.util.stats import mean
from repro.wan.topology import WanTopology
from repro.workloads.base import Workload

#: Builds a fresh identical workload each call (schemes mutate shards).
WorkloadFactory = Callable[[], Workload]


@dataclass
class QueryRun:
    """One query execution's observables."""

    dataset_id: str
    query_text: str
    qct: float
    intermediate_bytes_by_site: Dict[str, float]
    wan_bytes: float
    rdd_overhead_seconds: float


@dataclass
class ExperimentResult:
    """A scheme's full run over a workload."""

    system: str
    workload: str
    prep: PreparationReport
    runs: List[QueryRun] = field(default_factory=list)
    baseline_runs: List[QueryRun] = field(default_factory=list)
    #: Chaos accounting (all zero / None on benign runs; not serialized).
    chaos_profile: Optional[str] = None
    aborted_queries: int = 0
    total_lost_bytes: float = 0.0
    total_retries: int = 0

    @property
    def mean_qct(self) -> float:
        return mean(run.qct for run in self.runs)

    @property
    def baseline_mean_qct(self) -> float:
        return mean(run.qct for run in self.baseline_runs)

    def intermediate_by_site(self, baseline: bool = False) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for run in self.baseline_runs if baseline else self.runs:
            for site, volume in run.intermediate_bytes_by_site.items():
                totals[site] = totals.get(site, 0.0) + volume
        return totals

    def data_reduction_by_site(self) -> Dict[str, float]:
        """Percent intermediate data saved vs in-place vanilla processing.

        Positive: the scheme shrank the site's shuffle data; negative:
        similarity-agnostic movement inflated it (as the paper observes
        for Iridium at some receiving sites, Figure 8).
        """
        scheme = self.intermediate_by_site()
        baseline = self.intermediate_by_site(baseline=True)
        reductions: Dict[str, float] = {}
        for site, base_volume in baseline.items():
            if base_volume <= 0:
                reductions[site] = 0.0
                continue
            reductions[site] = 100.0 * (1.0 - scheme.get(site, 0.0) / base_volume)
        return reductions

    @property
    def mean_data_reduction(self) -> float:
        return mean(self.data_reduction_by_site().values())


def run_experiment(
    system_name: str,
    workload_factory: WorkloadFactory,
    topology: WanTopology,
    config: Optional[SystemConfig] = None,
    query_limit: Optional[int] = None,
    chaos: "Optional[ChaosConfig]" = None,
) -> ExperimentResult:
    """Prepare + execute a scheme, and the vanilla baseline, on fresh
    copies of the same workload.

    With ``chaos``, the scheme under test runs on the failure-aware
    runtime (the vanilla baseline stays benign — it defines the metric's
    denominator) and the result carries abort/loss/retry accounting.
    """
    config = config or SystemConfig()
    obs = instrument.current()

    controller = make_system(system_name, topology, config, chaos=chaos)
    workload = workload_factory()
    with obs.tracer.span(
        f"experiment:{system_name}",
        stage="experiment",
        scheme=system_name,
        workload=workload.name,
    ):
        prep = controller.prepare(workload)
        result = ExperimentResult(
            system=system_name, workload=workload.name, prep=prep
        )
        if chaos is not None:
            result.chaos_profile = chaos.faults.name or "custom"
            if prep.movement is not None:
                result.total_retries += prep.movement.retries
                result.total_lost_bytes += prep.movement.abandoned_bytes
        queries = (
            workload.queries[:query_limit] if query_limit else workload.queries
        )
        for query in queries:
            if chaos is not None:
                outcome = controller.run_query_outcome(workload, query)
                job = outcome.result
                if outcome.aborted:
                    result.aborted_queries += 1
                result.total_lost_bytes += outcome.lost_bytes
                result.total_retries += sum(
                    r.attempts - 1 for r in job.transfers
                )
            else:
                job = controller.run_query(workload, query)
            result.runs.append(_to_run(query, job))

        baseline_workload = workload_factory()
        baseline_engine = MapReduceEngine(
            topology, partition_records=config.partition_records, seed=config.seed
        )
        baseline_queries = (
            baseline_workload.queries[:query_limit]
            if query_limit
            else baseline_workload.queries
        )
        for query in baseline_queries:
            schema = baseline_workload.schema(query.spec.dataset_id)
            job_spec = compile_query(
                query.spec, schema, num_reduce_tasks=config.num_reduce_tasks
            )
            with obs.tracer.span(
                f"query:{query.spec.dataset_id}",
                stage="query",
                dataset=query.spec.dataset_id,
                scheme="vanilla-baseline",
            ) as span:
                job = baseline_engine.run(
                    baseline_workload.catalog.get(query.spec.dataset_id),
                    job_spec,
                    cube_sorted=False,
                )
            if span is not None:
                span.attrs["qct"] = job.qct
                span.sim_start, span.sim_end = 0.0, job.qct
            obs.metrics.histogram(
                "qct_seconds", scheme="vanilla-baseline"
            ).observe(job.qct)
            result.baseline_runs.append(_to_run(query, job))
    return result


def _to_run(query, job) -> QueryRun:
    return QueryRun(
        dataset_id=query.spec.dataset_id,
        query_text=query.spec.text or str(query.spec.group_by),
        qct=job.qct,
        intermediate_bytes_by_site={
            site: metrics.intermediate_bytes
            for site, metrics in job.per_site.items()
        },
        wan_bytes=job.total_wan_bytes,
        rdd_overhead_seconds=job.total_rdd_overhead_seconds,
    )
