"""Highly dynamic datasets (§8.6, Table 7).

The experiment protocol from the paper:

1. the initial slice of data drives the first task and data placement;
2. each new batch is pre-processed into the cubes and transferred
   according to the *current* placement decision before the next query;
3. every query processes all data currently at each node;
4. every ``replan_every`` queries (five in the paper, i.e. 10 GB of new
   data) the controller re-runs similarity checking and the LP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.controller import Controller
from repro.errors import ConfigurationError
from repro.obs import instrument
from repro.query.spec import RecurringQuery
from repro.types import DatasetCatalog, GeoDataset
from repro.workloads.base import Workload
from repro.workloads.dynamic import DynamicDataFeed


@dataclass
class DynamicRunResult:
    """Per-query QCTs of one dynamic run."""

    qcts: List[float] = field(default_factory=list)
    replans: int = 0
    batches_applied: int = 0
    #: Out-of-band degraded replans triggered by site outages (chaos).
    fault_replans: int = 0
    aborted_queries: int = 0

    @property
    def mean_qct(self) -> float:
        if not self.qcts:
            return 0.0
        return sum(self.qcts) / len(self.qcts)


def run_dynamic(
    controller: Controller,
    workload: Workload,
    feeds: Dict[str, DynamicDataFeed],
    num_queries: int,
    replan_every: int = 5,
    query_cycle: Optional[List[RecurringQuery]] = None,
    cycle_seconds: Optional[float] = None,
    cache=None,
) -> DynamicRunResult:
    """Drive a controller through the dynamic-dataset protocol.

    ``workload.catalog`` must hold the datasets at their *initial* slice;
    ``feeds`` provides the batch schedule per dataset id.  One batch per
    dataset arrives between consecutive queries until each feed drains —
    but not after the final query, whose results nothing would consume.

    ``cache`` is any object with ``invalidate_dataset(dataset_id, now)``
    (duck-typed to avoid a core→serve dependency — in practice a
    :class:`repro.serve.cache.CubeCache`): every applied batch drops that
    dataset's cached cubes, stamped at the cycle-boundary sim time, so
    results computed before the batch are never served after it.

    When the controller carries a chaos schedule, each query/batch cycle
    advances a simulated wall-clock by ``cycle_seconds`` (the lag window
    by default); a site outage beginning inside the just-finished cycle
    invalidates the standing plan and triggers an out-of-band degraded
    replan over the surviving sites.
    """
    if num_queries < 1:
        raise ConfigurationError("num_queries must be >= 1")
    if replan_every < 1:
        raise ConfigurationError("replan_every must be >= 1")
    unknown = set(feeds) - set(workload.dataset_ids)
    if unknown:
        raise ConfigurationError(f"feeds reference unknown datasets {sorted(unknown)}")

    queries = query_cycle or workload.queries
    if not queries:
        raise ConfigurationError("no queries to run")

    faults = controller.chaos.faults if controller.chaos is not None else None
    cycle = cycle_seconds if cycle_seconds is not None else controller.config.lag_seconds

    result = DynamicRunResult()
    controller.prepare(workload)
    result.replans = 1
    for index in range(num_queries):
        outcome = controller.run_query_outcome(
            workload, queries[index % len(queries)]
        )
        result.qcts.append(outcome.result.qct)
        if outcome.aborted:
            result.aborted_queries += 1
        last_query = index + 1 == num_queries
        if last_query:
            # No query will ever see data arriving after the final one;
            # applying and placing that batch would only burn WAN bytes.
            break
        # New data lands between queries; it is pre-processed and moved
        # per the current placement decision before the next query, and a
        # fresh plan is computed on the replan boundary.
        telemetry = instrument.current().telemetry
        arrivals: Dict[str, Dict[str, float]] = {}
        for dataset_id, feed in feeds.items():
            if feed.exhausted:
                continue
            dataset = workload.catalog.get(dataset_id)
            before = dataset.bytes_by_site()
            feed.apply_next_batch(dataset)
            result.batches_applied += 1
            after = dataset.bytes_by_site()
            arrivals[dataset_id] = {
                site: after.get(site, 0) - before.get(site, 0)
                for site in after
                if after.get(site, 0) > before.get(site, 0)
            }
            if cache is not None:
                # The batch landed; every cached cube of this dataset is
                # stale from this cycle boundary on.
                cache.invalidate_dataset(dataset_id, (index + 1) * cycle)
            if telemetry.enabled:
                telemetry.emit(
                    "batch-applied",
                    dataset=dataset_id,
                    batch=feed.applied_batches,
                    num_bytes=sum(arrivals[dataset_id].values()),
                    after_query=index + 1,
                )
        if arrivals:
            controller.place_new_data(workload, arrivals)
        if faults is not None:
            window_start = index * cycle
            window_end = (index + 1) * cycle
            if faults.outages_starting_in(window_start, window_end):
                dead = [
                    site
                    for site in controller.topology.site_names
                    if faults.site_dead_at(site, window_end)
                ]
                if dead:
                    controller.prepare_degraded(workload, dead)
                    result.fault_replans += 1
                    continue  # the degraded plan replaces this cycle's replan
        if (index + 1) % replan_every == 0:
            controller.prepare(workload)
            result.replans += 1
            if telemetry.enabled:
                telemetry.emit(
                    "replan",
                    scheme=controller.profile.name,
                    after_query=index + 1,
                    total_replans=result.replans,
                )
    return result


def initial_workload_from_feeds(
    template: Workload, feeds: Dict[str, DynamicDataFeed]
) -> Workload:
    """A workload whose datasets hold only each feed's initial slice."""
    catalog = DatasetCatalog()
    for dataset in template.catalog:
        dataset_id = dataset.dataset_id
        schema = template.schema(dataset_id)
        feed = feeds.get(dataset_id)
        if feed is None:
            clone = GeoDataset(dataset_id, schema)
            for site, records in dataset.shards.items():
                clone.shards[site] = list(records)
            catalog.add(clone)
        else:
            catalog.add(feed.start_dataset(dataset_id, schema))
    return Workload(
        name=f"{template.name}-dynamic",
        catalog=catalog,
        queries=list(template.queries),
        schemas=dict(template.schemas),
    )
