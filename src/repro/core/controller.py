"""The Bohr controller (§3) — and, with capabilities switched off, every
baseline scheme.

``prepare`` runs the offline pipeline in the lag between recurring query
arrivals: (1) format shards into OLAP cubes, (2) probe-based similarity
checking from each dataset's bottleneck site, (3) data/task placement
(joint LP or the Iridium heuristic), (4) data movement with similarity-
aware or random record selection.  ``run_query`` then executes a query on
the engine under the prepared placement.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.engine.job import JobResult, MapReduceEngine
from repro.errors import ConfigurationError, FaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.runtime import ChaosConfig
from repro.obs import instrument
from repro.olap.dimension_cube import DimensionCubeSet
from repro.olap.storage import StorageModel, StorageReport
from repro.placement.iridium import IridiumPlanner
from repro.placement.joint import JointPlanner, PlacementDecision
from repro.placement.model import PlacementProblem
from repro.placement.plan import (
    MovementPolicy,
    MovementReport,
    PlacementPlan,
    execute_plan,
)
from repro.query.compiler import compile_query
from repro.query.profiler import ReductionProfiler
from repro.query.spec import RecurringQuery
from repro.similarity.checker import SimilarityChecker, intra_site_similarity
from repro.similarity.dimsum import DimsumConfig
from repro.similarity.probes import Probe, ProbeBuilder
from repro.systems.base import SystemConfig, SystemProfile
from repro.wan.estimator import BandwidthEstimator
from repro.wan.topology import WanTopology
from repro.wan.transfer import TransferScheduler
from repro.workloads.base import Workload


@dataclass
class PreparationReport:
    """Everything the offline phase produced and how long it took."""

    scheme: str
    cube_build_seconds: float = 0.0
    probe_build_seconds: float = 0.0
    similarity_check_seconds: float = 0.0
    lp_solve_seconds: float = 0.0
    planner_iterations: int = 0
    estimated_shuffle_seconds: float = math.inf
    reduce_fractions: Dict[str, float] = field(default_factory=dict)
    movement: Optional[MovementReport] = None
    probes: Dict[str, Probe] = field(default_factory=dict)
    cross_similarity: Dict[Tuple[str, str, str], float] = field(default_factory=dict)
    intra_similarity: Dict[Tuple[str, str], float] = field(default_factory=dict)

    @property
    def total_probe_bytes(self) -> int:
        return sum(probe.size_bytes for probe in self.probes.values())

    @property
    def moved_bytes(self) -> float:
        return self.movement.total_moved_bytes if self.movement else 0.0


@dataclass
class QueryOutcome:
    """One query execution under the failure-aware runtime.

    ``aborted`` queries overshot the chaos deadline: ``completed_sites``
    finished their reduce work in time and ``partial_fraction`` is the
    share of reduce-input bytes those sites account for — the
    partial-result the caller can still serve.  ``lost_bytes`` counts
    shuffle data abandoned by exhausted transfer retries.
    """

    result: JobResult
    aborted: bool = False
    deadline_seconds: Optional[float] = None
    completed_sites: List[str] = field(default_factory=list)
    partial_fraction: float = 1.0
    lost_bytes: float = 0.0


class Controller:
    """One scheme's controller over one topology."""

    def __init__(
        self,
        profile: SystemProfile,
        topology: WanTopology,
        config: SystemConfig = SystemConfig(),
        chaos: "Optional[ChaosConfig]" = None,
    ) -> None:
        topology.validate()
        self.profile = profile
        self.topology = topology
        self.config = config
        self.chaos = chaos
        faults = chaos.faults if chaos is not None else None
        stall_timeout = (
            chaos.retry.stall_timeout_seconds if chaos is not None else math.inf
        )
        self.engine = MapReduceEngine(
            topology,
            partition_records=config.partition_records,
            rdd_similarity=profile.rdd_similarity,
            dimsum_config=DimsumConfig(gamma=config.dimsum_gamma, seed=config.seed),
            seed=config.seed,
            charge_rdd_overhead=config.charge_rdd_overhead,
            faults=faults,
            stall_timeout_seconds=stall_timeout,
        )
        self.scheduler = TransferScheduler(
            topology, faults=faults, stall_timeout_seconds=stall_timeout
        )
        self.profiler = ReductionProfiler()
        self.bandwidth = BandwidthEstimator(topology)
        self.checker = SimilarityChecker()
        self._cubes: Dict[Tuple[str, str], DimensionCubeSet] = {}
        self._fractions: Optional[Dict[str, float]] = None
        #: Task-LP basis of the standing plan; degraded replans warm-start
        #: the simplex backend from its surviving-site restriction.
        self._task_basis: List[str] = []
        self._prepared: Optional[PreparationReport] = None
        self._movement_fractions: Dict[Tuple[str, str, str], float] = {}
        self._policy: MovementPolicy = MovementPolicy.RANDOM
        self.last_outcome: Optional[QueryOutcome] = None
        self.degraded_replans = 0
        #: Sites taken out by a fault; later replans keep excluding them.
        self.dead_sites: set = set()
        telemetry = instrument.current().telemetry
        if chaos is not None and telemetry.enabled:
            for event in chaos.faults.events:
                telemetry.emit(
                    "fault-window",
                    t=event.start,
                    fault=event.kind,
                    site=event.site,
                    start=event.start,
                    end=None if math.isinf(event.end) else event.end,
                    severity=event.severity,
                )

    # ------------------------------------------------------------------
    # offline phase
    # ------------------------------------------------------------------

    def prepare(self, workload: Workload) -> PreparationReport:
        """Run pre-processing, similarity checking, placement, movement."""
        obs = instrument.current()
        with obs.tracer.span(
            "prepare", stage="prepare", scheme=self.profile.name
        ):
            return self._prepare(workload, obs)

    def _prepare(self, workload: Workload, obs) -> PreparationReport:
        report = PreparationReport(scheme=self.profile.name)
        if self.profile.uses_cubes:
            with obs.tracer.span("cube-build", stage="cube"):
                self._build_cubes(workload, report)
            obs.metrics.histogram("cube_build_seconds").observe(
                report.cube_build_seconds
            )
        if self.profile.uses_similarity:
            with obs.tracer.span("similarity", stage="probe"):
                self._check_similarity(workload, report)
            obs.metrics.histogram("probe_build_seconds").observe(
                report.probe_build_seconds
            )

        with obs.tracer.span("placement", stage="placement"):
            alive = [
                site
                for site in self.topology.site_names
                if site not in self.dead_sites
            ]
            problem = self._placement_problem(
                workload, report, sites=alive if self.dead_sites else None
            )
            decision = self._plan(problem, workload)
        if obs.sanitizer.enabled:
            obs.sanitizer.check_placement(
                problem, decision.reduce_fractions, decision.moves
            )
        report.lp_solve_seconds = decision.solve_seconds
        report.planner_iterations = decision.iterations
        report.estimated_shuffle_seconds = decision.estimated_shuffle_seconds
        report.reduce_fractions = dict(decision.reduce_fractions)

        policy = (
            MovementPolicy.SIMILARITY
            if self.profile.uses_similarity
            else MovementPolicy.RANDOM
        )
        self._policy = policy
        pre_move_bytes = {
            dataset.dataset_id: dataset.bytes_by_site()
            for dataset in workload.catalog
        }
        plan = PlacementPlan(
            moves=decision.moves,
            reduce_fractions=decision.reduce_fractions,
            policy=policy,
        )
        with obs.tracer.span("movement", stage="movement", policy=policy.name):
            report.movement = execute_plan(
                workload.catalog,
                plan,
                workload.key_indices(),
                self.scheduler,
                lag_seconds=self.config.lag_seconds,
                seed=self.config.seed,
                retry_policy=self.chaos.retry if self.chaos is not None else None,
            )
        if obs.sanitizer.enabled:
            obs.sanitizer.check_movement(
                report.movement, self.config.lag_seconds
            )
        obs.metrics.counter("moved_bytes", scheme=self.profile.name).inc(
            report.movement.total_moved_bytes
        )
        self.bandwidth.observe_transfers(
            report.movement.transfers, truth=self.scheduler.effective_bps
        )
        if obs.telemetry.enabled:
            estimated = report.estimated_shuffle_seconds
            obs.telemetry.emit(
                "plan",
                scheme=self.profile.name,
                moved_bytes=report.movement.total_moved_bytes,
                estimated_shuffle_seconds=(
                    None if math.isinf(estimated) else estimated
                ),
                planner_iterations=report.planner_iterations,
                probes=len(report.probes),
                lp_wall_seconds=report.lp_solve_seconds,
            )
        self._fractions = dict(decision.reduce_fractions)
        self._task_basis = list(decision.task_basis)
        self._movement_fractions = {}
        for (dataset_id, src, dst), moved in report.movement.moved_bytes.items():
            held = pre_move_bytes.get(dataset_id, {}).get(src, 0.0)
            if held > 0:
                self._movement_fractions[(dataset_id, src, dst)] = min(
                    1.0, moved / held
                )
        self._prepared = report
        return report

    def place_new_data(
        self,
        workload: Workload,
        new_bytes_by_site: Dict[str, Dict[str, float]],
    ) -> Optional[MovementReport]:
        """Transfer newly arrived data per the current decision (§8.6).

        "When a new batch of data arrives, they are pre-processed ... and
        transferred to other sites if necessary according to the initial
        task and data placement decision before the next query arrives."
        The current plan's per-(dataset, src→dst) movement fractions are
        applied to the batch's bytes; records are selected under the same
        policy as the original movement.
        """
        if not self._movement_fractions:
            return None
        moves: Dict[Tuple[str, str, str], float] = {}
        for (dataset_id, src, dst), fraction in self._movement_fractions.items():
            batch = new_bytes_by_site.get(dataset_id, {}).get(src, 0.0)
            if batch > 0 and fraction > 0:
                moves[(dataset_id, src, dst)] = fraction * batch
        if not moves:
            return None
        plan = PlacementPlan(
            moves=moves,
            reduce_fractions=self._fractions or {},
            policy=self._policy,
        )
        return execute_plan(
            workload.catalog,
            plan,
            workload.key_indices(),
            self.scheduler,
            lag_seconds=self.config.lag_seconds,
            seed=self.config.seed,
        )

    def prepare_degraded(
        self, workload: Workload, dead_sites: List[str]
    ) -> PreparationReport:
        """Re-solve the placement with ``dead_sites`` excluded (chaos).

        Triggered when a site outage invalidates the standing plan:
        the placement LP runs again over the surviving sites only
        (reusing the already-measured probe similarities), and reduce
        fractions shift so no work is routed to dead sites.  Data held
        at dead sites is unreachable and drops out of the problem.
        """
        obs = instrument.current()
        dead = set(dead_sites) | self.dead_sites
        alive = [site for site in self.topology.site_names if site not in dead]
        if not alive:
            raise FaultError("all sites are down; no placement can survive")
        self.dead_sites = dead
        # Standing per-batch movement routes must not touch dead sites.
        self._movement_fractions = {
            key: fraction
            for key, fraction in self._movement_fractions.items()
            if key[1] not in dead and key[2] not in dead
        }
        with obs.tracer.span(
            "degraded-replan",
            stage="chaos",
            scheme=self.profile.name,
            dead=",".join(sorted(dead)),
        ):
            report = PreparationReport(scheme=self.profile.name)
            if self._prepared is not None:
                report.cross_similarity = dict(self._prepared.cross_similarity)
                report.intra_similarity = dict(self._prepared.intra_similarity)
            if len(alive) == 1:
                # Sole survivor: everything it still holds reduces locally.
                self._fractions = {alive[0]: 1.0}
                report.reduce_fractions = dict(self._fractions)
            else:
                problem = self._placement_problem(workload, report, sites=alive)
                # Seed the LP from the incumbent basis restricted to the
                # survivors: "t" always carries over, and each surviving
                # site's r-variable keeps its name in the smaller program.
                alive_names = {f"r[{site}]" for site in alive}
                warm_basis = [
                    name
                    for name in self._task_basis
                    if name == "t" or name in alive_names
                ]
                decision = self._plan(
                    problem, workload, warm_task_basis=warm_basis or None
                )
                self._task_basis = list(decision.task_basis)
                if obs.sanitizer.enabled:
                    obs.sanitizer.check_placement(
                        problem, decision.reduce_fractions, decision.moves
                    )
                report.lp_solve_seconds = decision.solve_seconds
                report.planner_iterations = decision.iterations
                report.estimated_shuffle_seconds = (
                    decision.estimated_shuffle_seconds
                )
                report.reduce_fractions = dict(decision.reduce_fractions)
                plan = PlacementPlan(
                    moves=decision.moves,
                    reduce_fractions=decision.reduce_fractions,
                    policy=self._policy,
                )
                report.movement = execute_plan(
                    workload.catalog,
                    plan,
                    workload.key_indices(),
                    self.scheduler,
                    lag_seconds=self.config.lag_seconds,
                    seed=self.config.seed,
                    retry_policy=(
                        self.chaos.retry if self.chaos is not None else None
                    ),
                )
                self.bandwidth.observe_transfers(
                    report.movement.transfers, truth=self.scheduler.effective_bps
                )
                self._fractions = dict(decision.reduce_fractions)
        self.degraded_replans += 1
        obs.metrics.counter(
            "degraded_replans", scheme=self.profile.name
        ).inc()
        if obs.telemetry.enabled:
            obs.telemetry.emit(
                "degraded-replan",
                scheme=self.profile.name,
                dead=",".join(sorted(dead)),
                survivors=len(alive),
                lp_wall_seconds=report.lp_solve_seconds,
            )
        return report

    # ------------------------------------------------------------------
    # online phase
    # ------------------------------------------------------------------

    def run_query(self, workload: Workload, query: RecurringQuery) -> JobResult:
        """Execute one recurring query under the prepared placement."""
        spec = query.spec
        obs = instrument.current()
        if obs.telemetry.enabled:
            obs.telemetry.emit(
                "query-start",
                t=0.0,
                dataset=spec.dataset_id,
                scheme=self.profile.name,
            )
        with obs.tracer.span(
            f"query:{spec.dataset_id}",
            stage="query",
            dataset=spec.dataset_id,
            scheme=self.profile.name,
        ) as span:
            schema = workload.schema(spec.dataset_id)
            job_spec = compile_query(
                spec,
                schema,
                self.profiler,
                num_reduce_tasks=self.config.num_reduce_tasks,
            )
            result = self.engine.run(
                workload.catalog.get(spec.dataset_id),
                job_spec,
                reduce_fractions=self._fractions,
                cube_sorted=self.profile.uses_cubes,
            )
        if span is not None:
            span.attrs["qct"] = result.qct
            span.sim_start, span.sim_end = 0.0, result.qct
        if obs.telemetry.enabled:
            obs.telemetry.emit(
                "query-finish",
                t=result.qct,
                dataset=spec.dataset_id,
                scheme=self.profile.name,
                qct=result.qct,
                wan_bytes=result.total_wan_bytes,
                lost_bytes=result.total_lost_bytes,
            )
        obs.metrics.histogram(
            "qct_seconds", scheme=self.profile.name
        ).observe(result.qct)
        self.profiler.observe(spec, result)
        query.record_execution()
        return result

    def run_query_outcome(
        self, workload: Workload, query: RecurringQuery
    ) -> QueryOutcome:
        """Run one query and judge it against the chaos deadline.

        Without a configured deadline this is :meth:`run_query` plus
        lost-byte accounting.  With one, a query whose QCT overshoots is
        marked aborted and the sites whose reduce work *did* finish in
        time are reported as the partial result, weighted by their share
        of reduce-input bytes.
        """
        result = self.run_query(workload, query)
        obs = instrument.current()
        deadline = (
            self.chaos.deadline_seconds if self.chaos is not None else None
        )
        outcome = QueryOutcome(
            result=result,
            deadline_seconds=deadline,
            lost_bytes=result.total_lost_bytes,
        )
        if deadline is not None and result.qct > deadline:
            outcome.aborted = True
            active = {
                site: metrics
                for site, metrics in result.per_site.items()
                if not metrics.excluded
            }
            outcome.completed_sites = [
                site
                for site, metrics in active.items()
                if metrics.finish_time <= deadline + 1e-9
            ]
            total = sum(
                metrics.downloaded_bytes + metrics.local_shuffle_bytes
                for metrics in active.values()
            )
            done = sum(
                active[site].downloaded_bytes + active[site].local_shuffle_bytes
                for site in outcome.completed_sites
            )
            outcome.partial_fraction = done / total if total > 0 else 1.0
            obs.metrics.counter(
                "query_aborts", scheme=self.profile.name
            ).inc()
            if obs.telemetry.enabled:
                obs.telemetry.emit(
                    "query-abort",
                    t=deadline,
                    dataset=query.spec.dataset_id,
                    scheme=self.profile.name,
                    qct=result.qct,
                    deadline=deadline,
                    partial_fraction=outcome.partial_fraction,
                )
        self.last_outcome = outcome
        return outcome

    def run_all_queries(
        self, workload: Workload, limit: Optional[int] = None
    ) -> List[JobResult]:
        queries = workload.queries[:limit] if limit else workload.queries
        return [self.run_query(workload, query) for query in queries]

    # ------------------------------------------------------------------
    # serving-layer hooks (repro.serve)
    # ------------------------------------------------------------------

    @property
    def reduce_fractions(self) -> Optional[Dict[str, float]]:
        """The prepared placement's reduce fractions (None before prepare)."""
        return dict(self._fractions) if self._fractions is not None else None

    def compile(self, workload: Workload, spec):
        """Compile one query spec against the current profiler state.

        The serving layer plans jobs itself (plan/complete split on the
        engine) but must compile exactly like :meth:`run_query` does, so
        reduction-ratio feedback flows the same way.
        """
        schema = workload.schema(spec.dataset_id)
        return compile_query(
            spec,
            schema,
            self.profiler,
            num_reduce_tasks=self.config.num_reduce_tasks,
        )

    def record_observation(self, query: RecurringQuery, result: JobResult) -> None:
        """Post-completion bookkeeping, called by the serving layer in
        deterministic completion order: reduction-profile feedback plus
        the query's recurrence counter."""
        self.profiler.observe(query.spec, result)
        query.record_execution()

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------

    @property
    def preparation(self) -> Optional[PreparationReport]:
        return self._prepared

    def storage_report(self, site: str, workload: Workload) -> StorageReport:
        """Per-node storage breakdown for this scheme (Table 6 row).

        Raw storage counts the data currently at the node *plus* what it
        moved away: §7 leaves HDFS replication untouched, so movement
        only creates additional copies and the origin keeps its blocks.
        """
        raw_bytes = sum(
            dataset.bytes_at(site) for dataset in workload.catalog
        )
        if self._prepared and self._prepared.movement:
            raw_bytes += int(sum(
                moved
                for (_dataset, src, _dst), moved
                in self._prepared.movement.moved_bytes.items()
                if src == site
            ))
        model = StorageModel(raw_bytes)
        if not self.profile.uses_cubes:
            return model.iridium()
        cubes = []
        for dataset in workload.catalog:
            cube_set = self._cubes.get((dataset.dataset_id, site))
            if cube_set is not None:
                cubes.append(cube_set.base)
                for query_type in cube_set.query_types:
                    cubes.append(cube_set.cube_for(list(query_type)))
        if not self.profile.uses_similarity:
            return model.iridium_c(cubes)
        probe_records = sum(
            len(probe.records)
            for probe in (self._prepared.probes.values() if self._prepared else [])
        )
        return model.bohr(cubes, probe_records)

    def mean_storage_report(self, workload: Workload) -> StorageReport:
        """Average per-node storage across all sites (the Table 6 view).

        Per-site numbers vary with where movement deposited copies; the
        paper reports the average per-node overhead.
        """
        reports = [
            self.storage_report(site, workload)
            for site in self.topology.site_names
        ]
        count = len(reports)
        return StorageReport(
            scheme=self.profile.name,
            raw_bytes=sum(r.raw_bytes for r in reports) // count,
            cube_bytes=sum(r.cube_bytes for r in reports) // count,
            similarity_bytes=sum(r.similarity_bytes for r in reports) // count,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _build_cubes(self, workload: Workload, report: PreparationReport) -> None:
        # Wall-clock on purpose: offline cube-build cost (Tables 3-5 prep).
        started = time.perf_counter()  # lint: allow[R001]
        for dataset in workload.catalog:
            schema = workload.schema(dataset.dataset_id)
            types = [
                query.spec.group_by
                for query in workload.queries_for(dataset.dataset_id)
            ]
            measure = self._cube_measure(workload, dataset.dataset_id, schema)
            for site in self.topology.site_names:
                cube_set = DimensionCubeSet.build(
                    dataset.shard(site), schema, measure=measure
                )
                for group_by in types:
                    cube_set.register_query_type(list(group_by))
                self._cubes[(dataset.dataset_id, site)] = cube_set
        report.cube_build_seconds = time.perf_counter() - started  # lint: allow[R001]

    @staticmethod
    def _cube_measure(workload: Workload, dataset_id: str, schema) -> Optional[str]:
        """The numeric attribute the dataset's cubes keep a sum of.

        Chosen as the first SUM/AVG column among the dataset's queries, so
        those aggregations can be answered straight from the cubes.
        """
        from repro.olap.query import parse_aggregate

        for query in workload.queries_for(dataset_id):
            for expression in query.spec.aggregates:
                func, column = parse_aggregate(expression)
                if func in ("SUM", "AVG") and column in schema:
                    return column
        return None

    def answer_aggregation(self, workload: Workload, query) -> Dict:
        """Serve an aggregation query straight from the OLAP cubes.

        This is Table 6's cube-only serving path: no raw data is touched.
        Works for COUNT over any query type and SUM/AVG over the cube's
        measure attribute; other shapes raise and the caller falls back
        to :meth:`run_query`.
        """
        from repro.errors import QueryError
        from repro.olap.query import answer_query

        if not self.profile.uses_cubes:
            raise QueryError(
                f"{self.profile.name} keeps no cubes; use run_query instead"
            )
        cube_sets = [
            self._cubes[(query.dataset_id, site)]
            for site in self.topology.site_names
            if (query.dataset_id, site) in self._cubes
        ]
        if not cube_sets:
            raise QueryError(
                f"no cubes built for dataset {query.dataset_id!r}; call "
                "prepare() first"
            )
        return answer_query(query, cube_sets)

    def _check_similarity(self, workload: Workload, report: PreparationReport) -> None:
        """Probes from each dataset's bottleneck site → similarity info."""
        builder = ProbeBuilder(k=self.config.probe_k)
        dataset_bytes = {
            dataset.dataset_id: dataset.total_bytes for dataset in workload.catalog
        }
        if not any(dataset_bytes.values()):
            return
        budget = builder.allocate_across_datasets(
            {key: value for key, value in dataset_bytes.items() if value > 0}
        )
        # Wall-clock on purpose: offline probe-build cost (Tables 3-5 prep).
        started = time.perf_counter()  # lint: allow[R001]
        for dataset in workload.catalog:
            allocation = budget.get(dataset.dataset_id, 0)
            if allocation < 1:
                continue
            bottleneck = self.topology.bottleneck_site(dataset.bytes_by_site())
            cube_set = self._cubes.get((dataset.dataset_id, bottleneck))
            if cube_set is None or cube_set.base.total_count == 0:
                continue
            weights = workload.query_type_weights_for(dataset.dataset_id)
            probe = builder.build(
                dataset.dataset_id,
                bottleneck,
                cube_set,
                {tuple(key): weight for key, weight in weights.items()},
                k=allocation,
            )
            report.probes[dataset.dataset_id] = probe
        report.probe_build_seconds = time.perf_counter() - started  # lint: allow[R001]

        checker_seconds_before = self.checker.total_seconds
        for dataset_id, probe in report.probes.items():
            cubes_by_site = {
                site: self._cubes[(dataset_id, site)]
                for site in self.topology.site_names
                if (dataset_id, site) in self._cubes
            }
            results = self.checker.check_against_sites(probe, cubes_by_site)
            for site, similarity in results.items():
                report.cross_similarity[
                    (dataset_id, probe.origin_site, site)
                ] = similarity.similarity
        report.similarity_check_seconds = (
            self.checker.total_seconds - checker_seconds_before
        )

    def _placement_problem(
        self,
        workload: Workload,
        report: PreparationReport,
        sites: Optional[List[str]] = None,
    ) -> PlacementProblem:
        """Build the LP input; ``sites`` restricts it to survivors only
        (degraded replanning under a site outage — dead sites' data is
        unreachable and drops out)."""
        site_names = sites if sites is not None else self.topology.site_names
        allowed = set(site_names)
        input_bytes: Dict[str, Dict[str, float]] = {}
        reduction: Dict[str, float] = {}
        similarity: Dict[str, Dict[str, float]] = {}
        cross: Dict[str, Dict[Tuple[str, str], float]] = {}
        for dataset in workload.catalog:
            dataset_id = dataset.dataset_id
            input_bytes[dataset_id] = {
                site: float(size)
                for site, size in dataset.bytes_by_site().items()
                if site in allowed
            }
            primary = workload.primary_query(dataset_id)
            reduction[dataset_id] = self.profiler.ratio_for(primary)
            if self.profile.uses_similarity:
                # S_i^a is the query-weighted mean across the dataset's
                # query types: each type combines on its own keys, and the
                # reduce placement serves all of them (§4.1's per-type
                # dimension cubes give each type's similarity for free).
                type_weights = workload.query_type_weights_for(dataset_id)
                per_site: Dict[str, float] = {}
                for site in site_names:
                    cube_set = self._cubes.get((dataset_id, site))
                    if cube_set is None:
                        continue
                    weighted = 0.0
                    for type_key, weight in type_weights.items():
                        cube = cube_set.cube_for(list(type_key))
                        weighted += weight * intra_site_similarity(cube)
                    per_site[site] = min(weighted, 0.999)
                    report.intra_similarity[(dataset_id, site)] = per_site[site]
                similarity[dataset_id] = per_site
                # Probe-measured S^a_{i,j} prices inflows in the LP; pairs
                # the probes did not cover stay at the conservative 0.
                pairs = {
                    (origin, target): value
                    for (d_id, origin, target), value
                    in report.cross_similarity.items()
                    if d_id == dataset_id
                    and origin in allowed
                    and target in allowed
                }
                if pairs:
                    cross[dataset_id] = pairs
        compute = {}
        if self.config.consider_compute:
            compute = {
                site.name: site.compute_bps * site.executors
                for site in self.topology
                if site.name in allowed
            }
        estimated = self.bandwidth.estimated_topology()
        if sites is not None:
            estimated = WanTopology.from_sites(
                [estimated.site(name) for name in site_names]
            )
        return PlacementProblem(
            topology=estimated,
            input_bytes=input_bytes,
            reduction_ratio=reduction,
            similarity=similarity,
            lag_seconds=self.config.lag_seconds,
            cross_similarity=cross,
            compute_bps=compute,
        )

    def _plan(
        self,
        problem: PlacementProblem,
        workload: Workload,
        warm_task_basis: Optional[List[str]] = None,
    ) -> PlacementDecision:
        strategy = self.profile.placement_strategy
        if strategy == "joint":
            return JointPlanner(backend=self.config.lp_backend).plan(
                problem, warm_task_basis=warm_task_basis
            )
        if strategy == "heuristic":
            query_counts = {
                dataset.dataset_id: len(workload.queries_for(dataset.dataset_id))
                for dataset in workload.catalog
            }
            return IridiumPlanner(backend=self.config.lp_backend).plan(
                problem, query_counts=query_counts
            )
        from repro.placement.baselines import CentralizedPlanner, InPlacePlanner

        if strategy == "centralized":
            return CentralizedPlanner().plan(problem)
        return InPlacePlanner().plan(problem)
