"""Report helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.runner import ExperimentResult
from repro.util.stats import mean
from repro.util.tabulate import format_table


def mean_qct_by_workload(
    results: Iterable[ExperimentResult],
) -> Dict[str, Dict[str, float]]:
    """{workload: {system: mean QCT}} over a batch of experiment results."""
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        table.setdefault(result.workload, {})[result.system] = result.mean_qct
    return table


def data_reduction_by_site(
    results: Iterable[ExperimentResult],
) -> Dict[str, Dict[str, float]]:
    """{site: {system: reduction %}} over a batch of experiment results."""
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        for site, reduction in result.data_reduction_by_site().items():
            table.setdefault(site, {})[result.system] = reduction
    return table


def summarize_reduction(result: ExperimentResult) -> Dict[str, float]:
    """Best / worst / mean site reduction for one result."""
    reductions = result.data_reduction_by_site()
    if not reductions:
        return {"best": 0.0, "worst": 0.0, "mean": 0.0}
    values = list(reductions.values())
    return {"best": max(values), "worst": min(values), "mean": mean(values)}


def render_qct_table(
    results: Sequence[ExperimentResult], title: str = ""
) -> str:
    """ASCII rendering of a QCT comparison (one Figure 6/7/10 panel)."""
    by_workload = mean_qct_by_workload(results)
    systems: List[str] = []
    for result in results:
        if result.system not in systems:
            systems.append(result.system)
    rows = [
        [workload] + [per_system.get(system, float("nan")) for system in systems]
        for workload, per_system in by_workload.items()
    ]
    return format_table(rows, headers=["workload"] + systems, title=title)


def render_reduction_table(
    results: Sequence[ExperimentResult], title: str = ""
) -> str:
    """ASCII rendering of a per-site reduction comparison (Figure 8/9/11)."""
    by_site = data_reduction_by_site(results)
    systems: List[str] = []
    for result in results:
        if result.system not in systems:
            systems.append(result.system)
    rows = [
        [site] + [per_system.get(system, float("nan")) for system in systems]
        for site, per_system in by_site.items()
    ]
    return format_table(
        rows, headers=["site"] + [f"{system} (%)" for system in systems], title=title
    )
