"""The six evaluated schemes (§8.1) as capability profiles.

=============  =====  ==========  =========  =========
scheme         cubes  similarity  joint LP   RDD sim.
=============  =====  ==========  =========  =========
iridium        no     no          no         no
iridium-c      yes    no          no         no
bohr-sim       yes    yes         no         no
bohr-joint     yes    yes         yes        no
bohr-rdd       yes    yes         no         yes
bohr           yes    yes         yes        yes
=============  =====  ==========  =========  =========
"""

from repro.systems.base import SystemProfile, SystemConfig
from repro.systems.registry import SCHEME_NAMES, make_system, profile_for

__all__ = [
    "SCHEME_NAMES",
    "SystemConfig",
    "SystemProfile",
    "make_system",
    "profile_for",
]
