"""System capability profiles and shared configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


#: How a scheme decides data movement and reduce-task placement.
#: "joint"       — Bohr's alternating joint LP (§5);
#: "heuristic"   — Iridium's greedy drain + task LP [27];
#: "centralized" — §1's strawman: ship everything to one hub site;
#: "none"        — vanilla in-place Spark: no movement, uniform tasks.
PLACEMENT_STRATEGIES = ("joint", "heuristic", "centralized", "none")


@dataclass(frozen=True)
class SystemProfile:
    """What a scheme is allowed to use (one row of §8.1's scheme list)."""

    name: str
    uses_cubes: bool
    uses_similarity: bool
    placement_strategy: str
    rdd_similarity: bool

    def __post_init__(self) -> None:
        if self.placement_strategy not in PLACEMENT_STRATEGIES:
            raise ConfigurationError(
                f"{self.name}: unknown placement strategy "
                f"{self.placement_strategy!r}; expected {PLACEMENT_STRATEGIES}"
            )
        if self.uses_similarity and not self.uses_cubes:
            raise ConfigurationError(
                f"{self.name}: similarity checking requires OLAP cubes"
            )
        if self.placement_strategy == "joint" and not self.uses_similarity:
            raise ConfigurationError(
                f"{self.name}: the joint LP is similarity-aware by definition"
            )

    @property
    def joint_placement(self) -> bool:
        return self.placement_strategy == "joint"


@dataclass(frozen=True)
class SystemConfig:
    """Tunables shared by all schemes."""

    lag_seconds: float = 120.0  # T: window between recurring queries
    probe_k: int = 30  # records per probe (§8.2 default)
    partition_records: int = 16
    num_reduce_tasks: int = 100
    lp_backend: str = "auto"
    dimsum_gamma: float = 4.0
    seed: int = 7
    charge_rdd_overhead: bool = True
    #: Feed per-site reduce-compute rates into the task LP (§5's
    #: compute-constraint extension; off by default like the paper).
    consider_compute: bool = False

    def __post_init__(self) -> None:
        if self.lag_seconds <= 0:
            raise ConfigurationError("lag_seconds must be > 0")
        if self.probe_k < 1:
            raise ConfigurationError("probe_k must be >= 1")
        if self.partition_records < 1:
            raise ConfigurationError("partition_records must be >= 1")
        if self.num_reduce_tasks < 1:
            raise ConfigurationError("num_reduce_tasks must be >= 1")
        if self.dimsum_gamma <= 0:
            raise ConfigurationError("dimsum_gamma must be > 0")
