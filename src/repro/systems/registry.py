"""Scheme registry: names → capability profiles → controllers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import ConfigurationError
from repro.systems.base import SystemConfig, SystemProfile
from repro.wan.topology import WanTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.runtime import ChaosConfig
    from repro.core.controller import Controller

_PROFILES: Dict[str, SystemProfile] = {
    # §1's baselines: vanilla in-place Spark and central aggregation.
    "spark": SystemProfile(
        name="spark",
        uses_cubes=False,
        uses_similarity=False,
        placement_strategy="none",
        rdd_similarity=False,
    ),
    "centralized": SystemProfile(
        name="centralized",
        uses_cubes=False,
        uses_similarity=False,
        placement_strategy="centralized",
        rdd_similarity=False,
    ),
    # §8.1's comparison schemes.
    "iridium": SystemProfile(
        name="iridium",
        uses_cubes=False,
        uses_similarity=False,
        placement_strategy="heuristic",
        rdd_similarity=False,
    ),
    "iridium-c": SystemProfile(
        name="iridium-c",
        uses_cubes=True,
        uses_similarity=False,
        placement_strategy="heuristic",
        rdd_similarity=False,
    ),
    "bohr-sim": SystemProfile(
        name="bohr-sim",
        uses_cubes=True,
        uses_similarity=True,
        placement_strategy="heuristic",
        rdd_similarity=False,
    ),
    "bohr-joint": SystemProfile(
        name="bohr-joint",
        uses_cubes=True,
        uses_similarity=True,
        placement_strategy="joint",
        rdd_similarity=False,
    ),
    "bohr-rdd": SystemProfile(
        name="bohr-rdd",
        uses_cubes=True,
        uses_similarity=True,
        placement_strategy="heuristic",
        rdd_similarity=True,
    ),
    "bohr": SystemProfile(
        name="bohr",
        uses_cubes=True,
        uses_similarity=True,
        placement_strategy="joint",
        rdd_similarity=True,
    ),
}

#: All scheme names: the two §1 baselines + the paper's comparison order.
SCHEME_NAMES = tuple(_PROFILES.keys())


def profile_for(name: str) -> SystemProfile:
    """Capability profile of a scheme by name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {name!r}; expected one of {SCHEME_NAMES}"
        ) from None


def make_system(
    name: str,
    topology: WanTopology,
    config: Optional[SystemConfig] = None,
    chaos: "Optional[ChaosConfig]" = None,
) -> "Controller":
    """Instantiate a scheme's controller over a topology.

    ``chaos`` runs the controller under an injected fault schedule with
    the failure-aware runtime (retries, degraded replanning, deadlines).
    """
    from repro.core.controller import Controller

    return Controller(
        profile=profile_for(name),
        topology=topology,
        config=config or SystemConfig(),
        chaos=chaos,
    )
