"""Query specifications."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryError


class QueryClass(str, enum.Enum):
    """The three workload classes of §8.1's big-data benchmark."""

    SCAN = "scan"
    AGGREGATION = "aggregation"
    UDF = "udf"


#: Default map-output/input ratios per class, used until the profiler has
#: observed a real run (§7: estimated from the previous recurring query).
DEFAULT_REDUCTION_RATIOS: Dict[QueryClass, float] = {
    QueryClass.SCAN: 0.25,
    QueryClass.AGGREGATION: 0.55,
    QueryClass.UDF: 0.9,
}


@dataclass(frozen=True)
class QuerySpec:
    """One analytical query over one dataset.

    ``group_by`` names the attributes whose values form the combine key —
    Bohr's query type.  ``filters`` are optional equality predicates
    applied at the map stage (they lower the effective input volume).
    """

    dataset_id: str
    group_by: Tuple[str, ...]
    query_class: QueryClass = QueryClass.AGGREGATION
    aggregates: Tuple[str, ...] = ()
    filters: Tuple[Tuple[str, str], ...] = ()
    reduction_ratio: Optional[float] = None
    text: str = ""

    def __post_init__(self) -> None:
        if not self.dataset_id:
            raise QueryError("query needs a dataset_id")
        if not self.group_by:
            raise QueryError("query needs at least one group-by attribute")
        if len(set(self.group_by)) != len(self.group_by):
            raise QueryError(f"duplicate group-by attributes: {self.group_by}")
        if self.reduction_ratio is not None and not 0.0 < self.reduction_ratio <= 1.0:
            raise QueryError(
                f"reduction_ratio must be in (0, 1], got {self.reduction_ratio}"
            )

    @property
    def query_type(self) -> Tuple[str, ...]:
        """Canonical query-type key (§4.1): sorted accessed attributes."""
        return tuple(sorted(self.group_by))

    def default_reduction_ratio(self) -> float:
        if self.reduction_ratio is not None:
            return self.reduction_ratio
        return DEFAULT_REDUCTION_RATIOS[self.query_class]


@dataclass
class RecurringQuery:
    """A query that re-executes every ``interval_seconds`` (§2.1).

    ``executions`` counts completed runs; the paper's query-type weights
    are computed from these counts across a dataset's queries.
    """

    spec: QuerySpec
    interval_seconds: float = 30.0
    executions: int = 0

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise QueryError("interval_seconds must be > 0")

    def record_execution(self) -> None:
        self.executions += 1


def query_type_weights(
    queries: List[RecurringQuery],
) -> Dict[Tuple[str, ...], float]:
    """Weight of each query type = its fraction of all queries (§4.2).

    Queries that have executed more count proportionally more; brand-new
    queries count once.
    """
    if not queries:
        raise QueryError("need at least one query to compute weights")
    counts: Dict[Tuple[str, ...], float] = {}
    for query in queries:
        weight = max(query.executions, 1)
        key = query.spec.query_type
        counts[key] = counts.get(key, 0.0) + weight
    total = sum(counts.values())
    return {key: value / total for key, value in counts.items()}
