"""Compile a :class:`QuerySpec` into an engine :class:`MapReduceSpec`."""

from __future__ import annotations

from typing import Optional

from repro.engine.spec import MapReduceSpec
from repro.errors import QueryError
from repro.query.profiler import ReductionProfiler
from repro.query.spec import QuerySpec
from repro.types import Schema


def compile_query(
    spec: QuerySpec,
    schema: Schema,
    profiler: Optional[ReductionProfiler] = None,
    num_reduce_tasks: int = 100,
) -> MapReduceSpec:
    """Resolve attribute names to positions and pick the reduction ratio.

    Raises :class:`QueryError` when the query references attributes the
    dataset schema does not have (including filter columns).
    """
    filters = []
    for column, value in spec.filters:
        if column not in schema:
            raise QueryError(
                f"filter column {column!r} not in schema {schema.names}"
            )
        filters.append((schema.index(column), value))
    missing = [name for name in spec.group_by if name not in schema]
    if missing:
        raise QueryError(
            f"query group-by attributes {missing} not in schema {schema.names}"
        )
    key_indices = tuple(schema.index(name) for name in spec.group_by)
    if profiler is not None:
        ratio = profiler.ratio_for(spec)
    else:
        ratio = spec.default_reduction_ratio()
    return MapReduceSpec(
        key_indices=key_indices,
        reduction_ratio=ratio,
        num_reduce_tasks=num_reduce_tasks,
        filters=tuple(filters),
    )
