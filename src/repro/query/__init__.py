"""Queries: specification, SQL parsing, UDFs, profiling, compilation.

Recurring queries are the unit of optimization in Bohr: each query type
(the set of attributes accessed) is served by a dimension cube, profiled
for its data-reduction ratio, and compiled into an engine job spec.
"""

from repro.query.compiler import compile_query
from repro.query.pagerank import pagerank, pagerank_scores_from_records
from repro.query.parser import parse_sql
from repro.query.profiler import ReductionProfiler
from repro.query.spec import QueryClass, QuerySpec, RecurringQuery

__all__ = [
    "QueryClass",
    "QuerySpec",
    "RecurringQuery",
    "ReductionProfiler",
    "compile_query",
    "pagerank",
    "pagerank_scores_from_records",
    "parse_sql",
]
