"""Data-reduction-ratio estimation (§7).

"For data reduction ratio, it can be estimated with recurring queries
that perform the same analytics.  We use the input and actual
intermediate data size of the previous query at each site to calculate
the data reduction ratio to be used for the next recurring query."

The profiler keeps per-(dataset, query-type) EWMA estimates of
map-output / input, fed from engine job results; until a query type has
run once, the class default from :mod:`repro.query.spec` applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.engine.job import JobResult
from repro.errors import QueryError
from repro.query.spec import QuerySpec

_ProfileKey = Tuple[str, Tuple[str, ...]]


@dataclass
class ReductionProfiler:
    """Learns R^a per (dataset, query type) from observed executions."""

    alpha: float = 0.5
    _estimates: Dict[_ProfileKey, float] = field(default_factory=dict)
    _samples: Dict[_ProfileKey, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise QueryError("alpha must be in (0, 1]")

    def observe(self, spec: QuerySpec, result: JobResult) -> None:
        """Fold one finished job into the estimate for its query type."""
        input_bytes = sum(m.input_bytes for m in result.per_site.values())
        map_output = sum(m.map_output_bytes for m in result.per_site.values())
        if input_bytes <= 0:
            return
        ratio = min(max(map_output / input_bytes, 1e-6), 1.0)
        key = (spec.dataset_id, spec.query_type)
        previous = self._estimates.get(key)
        if previous is None:
            self._estimates[key] = ratio
        else:
            self._estimates[key] = self.alpha * ratio + (1 - self.alpha) * previous
        self._samples[key] = self._samples.get(key, 0) + 1

    def ratio_for(self, spec: QuerySpec) -> float:
        """Best current estimate: learned if available, else class default."""
        learned = self._estimates.get((spec.dataset_id, spec.query_type))
        if learned is not None:
            return learned
        return spec.default_reduction_ratio()

    def samples_for(self, spec: QuerySpec) -> int:
        return self._samples.get((spec.dataset_id, spec.query_type), 0)

    def is_profiled(self, spec: QuerySpec) -> bool:
        return (spec.dataset_id, spec.query_type) in self._estimates
