"""A tiny SQL dialect, enough for the benchmark workloads (§7).

Supported shape::

    SELECT <column | AGG(column) | udf(column, ...)> [, ...]
    FROM <dataset>
    [WHERE col = 'value' [AND ...]]
    [GROUP BY col [, ...]]

Aggregates: SUM, COUNT, AVG, MIN, MAX.  A non-aggregate function call in
the select list marks the query as a UDF (e.g. the simplified PageRank of
the AMPLab benchmark).  Plain selects with no aggregates are scans; with
GROUP BY they key on the grouped columns, otherwise on the selected ones.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import QueryError
from repro.query.spec import QueryClass, QuerySpec

_AGGREGATES = ("SUM", "COUNT", "AVG", "MIN", "MAX")

_SQL_RE = re.compile(
    r"^\s*SELECT\s+(?P<select>.+?)\s+FROM\s+(?P<dataset>[\w\-]+)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"(?:\s+GROUP\s+BY\s+(?P<group>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_CALL_RE = re.compile(r"^(?P<func>\w+)\s*\(\s*(?P<args>[^)]*)\s*\)$")


def parse_sql(sql: str) -> QuerySpec:
    """Parse one SQL statement into a :class:`QuerySpec`."""
    match = _SQL_RE.match(sql)
    if not match:
        raise QueryError(f"cannot parse query: {sql!r}")
    dataset = match.group("dataset")
    select_items = _split_commas(match.group("select"))
    if not select_items:
        raise QueryError("empty select list")

    plain_columns: List[str] = []
    aggregates: List[str] = []
    udf_args: List[str] = []
    has_udf = False
    for item in select_items:
        call = _CALL_RE.match(item)
        if call:
            func = call.group("func").upper()
            args = _split_commas(call.group("args"))
            if func in _AGGREGATES:
                if func != "COUNT" and len(args) != 1:
                    raise QueryError(f"{func} takes exactly one column: {item!r}")
                aggregates.append(f"{func}({','.join(args)})")
            else:
                has_udf = True
                udf_args.extend(arg for arg in args if _is_identifier(arg))
        elif _is_identifier(item):
            plain_columns.append(item)
        elif item == "*":
            raise QueryError("SELECT * is not supported; name the columns")
        else:
            raise QueryError(f"cannot parse select item {item!r}")

    filters: List[Tuple[str, str]] = []
    where = match.group("where")
    if where:
        for clause in re.split(r"\s+AND\s+", where, flags=re.IGNORECASE):
            eq = re.match(
                r"^\s*(\w+)\s*=\s*'?([^']*?)'?\s*$", clause
            )
            if not eq:
                raise QueryError(f"only equality predicates supported: {clause!r}")
            filters.append((eq.group(1), eq.group(2)))

    group = match.group("group")
    if group:
        group_by = tuple(_split_commas(group))
        for column in group_by:
            if not _is_identifier(column):
                raise QueryError(f"bad group-by column {column!r}")
    elif has_udf:
        # UDFs follow the aggregate convention: the last argument is the
        # measure, the rest are keys (pagerank(url, score) keys on url).
        if len(udf_args) > 1:
            group_by = tuple(udf_args[:-1])
        else:
            group_by = tuple(udf_args) or tuple(plain_columns)
    else:
        group_by = tuple(plain_columns)
    if not group_by:
        raise QueryError(f"query has no key attributes: {sql!r}")

    if has_udf:
        query_class = QueryClass.UDF
    elif aggregates:
        query_class = QueryClass.AGGREGATION
    else:
        query_class = QueryClass.SCAN
    return QuerySpec(
        dataset_id=dataset,
        group_by=group_by,
        query_class=query_class,
        aggregates=tuple(aggregates),
        filters=tuple(filters),
        text=sql.strip(),
    )


def _split_commas(text: str) -> List[str]:
    """Split on commas not nested inside parentheses."""
    pieces: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            pieces.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        pieces.append(tail)
    return [piece for piece in pieces if piece]


def _is_identifier(text: str) -> bool:
    return re.match(r"^\w+$", text) is not None
