"""Simplified PageRank (the AMPLab benchmark's UDF, §8.1).

The big-data workload's UDF query "calculates a simplified version of
PageRank".  We provide the real iterative algorithm over an edge list so
the UDF example application computes genuine ranks end-to-end.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import QueryError
from repro.types import Record, Schema


def pagerank(
    edges: Iterable[Tuple[str, str]],
    damping: float = 0.85,
    iterations: int = 20,
    tolerance: float = 1e-9,
) -> Dict[str, float]:
    """Iterative PageRank over a directed edge list.

    Dangling nodes redistribute uniformly.  Returns rank per node,
    summing to ~1.0.
    """
    if not 0.0 < damping < 1.0:
        raise QueryError("damping must be in (0, 1)")
    if iterations < 1:
        raise QueryError("iterations must be >= 1")
    out_links: Dict[str, List[str]] = {}
    nodes = set()
    for src, dst in edges:
        out_links.setdefault(src, []).append(dst)
        nodes.add(src)
        nodes.add(dst)
    if not nodes:
        return {}
    count = len(nodes)
    rank = {node: 1.0 / count for node in nodes}
    for _ in range(iterations):
        dangling_mass = sum(
            rank[node] for node in nodes if not out_links.get(node)
        )
        next_rank = {
            node: (1.0 - damping) / count + damping * dangling_mass / count
            for node in nodes
        }
        for src, targets in out_links.items():
            share = damping * rank[src] / len(targets)
            for dst in targets:
                next_rank[dst] += share
        delta = max(abs(next_rank[node] - rank[node]) for node in nodes)
        rank = next_rank
        if delta < tolerance:
            break
    return rank


def pagerank_scores_from_records(
    records: Sequence[Record],
    schema: Schema,
    url_attribute: str = "url",
    score_attribute: str = "score",
) -> Dict[str, float]:
    """The paper's toy UDF (Figure 1): sum scores per URL key.

    The motivating example's logs "record the score of a website using
    its URL as the key"; the query aggregates scores per URL — exactly
    what the map/combine/reduce pipeline does for UDF queries.
    """
    url_index = schema.index(url_attribute)
    score_index = schema.index(score_attribute)
    totals: Dict[str, float] = {}
    for record in records:
        url = str(record.values[url_index])
        raw = record.values[score_index]
        if not isinstance(raw, (int, float)) or isinstance(raw, bool):
            raise QueryError(f"score attribute must be numeric, got {raw!r}")
        totals[url] = totals.get(url, 0.0) + float(raw)
    return totals
