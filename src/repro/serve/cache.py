"""Cube-serving result cache: slice/dice reuse across tenants.

Keys are canonical query identities (:func:`repro.serve.spec.
canonical_query_key`), so the cache is shared across tenants by design —
the whole point of serving from cubes is that tenant B's dashboard
refresh of the slice tenant A just computed costs nothing.  Bounded LRU;
every lookup and eviction lands on the telemetry bus as
``cache-hit`` / ``cache-miss`` / ``cache-evict`` events.

All state is instance-level (no module globals): a serving scheduler owns
its cache, and interleaved queries mutate nothing shared beyond it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ServeError
from repro.obs import instrument
from repro.serve.spec import render_key


@dataclass
class CacheEntry:
    """One materialized answer and what producing it cost."""

    key: Tuple
    produced_at: float  # sim time the producing query finished
    service_seconds: float  # that query's execution time (admit -> finish)
    wan_bytes: float
    hits: int = 0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CubeCache:
    """Bounded LRU over canonical query keys."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ServeError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def lookup(self, key: Tuple, now: float) -> Optional[CacheEntry]:
        """Return the entry for ``key`` (refreshing recency) or None."""
        telemetry = instrument.current().telemetry
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if telemetry.enabled:
                telemetry.emit(
                    "cache-miss", t=now, dataset=key[0], key=render_key(key)
                )
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.stats.hits += 1
        if telemetry.enabled:
            telemetry.emit(
                "cache-hit",
                t=now,
                dataset=key[0],
                key=render_key(key),
                age_seconds=now - entry.produced_at,
                saved_seconds=entry.service_seconds,
            )
        return entry

    def insert(
        self,
        key: Tuple,
        now: float,
        service_seconds: float,
        wan_bytes: float,
    ) -> None:
        """Materialize an answer; evicts LRU entries past capacity."""
        if self.capacity == 0:
            return
        telemetry = instrument.current().telemetry
        self._entries[key] = CacheEntry(
            key=key,
            produced_at=now,
            service_seconds=service_seconds,
            wan_bytes=wan_bytes,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            evicted_key, evicted = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if telemetry.enabled:
                telemetry.emit(
                    "cache-evict",
                    t=now,
                    dataset=evicted_key[0],
                    key=render_key(evicted_key),
                    hits=evicted.hits,
                )

    def invalidate_dataset(self, dataset_id: str, now: float) -> int:
        """Drop every slice of ``dataset_id`` (new data batch landed)."""
        stale = [key for key in self._entries if key[0] == dataset_id]
        telemetry = instrument.current().telemetry
        for key in stale:
            entry = self._entries.pop(key)
            self.stats.invalidations += 1
            if telemetry.enabled:
                telemetry.emit(
                    "cache-evict",
                    t=now,
                    dataset=dataset_id,
                    key=render_key(key),
                    hits=entry.hits,
                    invalidated=True,
                )
        return len(stale)
