"""Weighted fair queueing and admission control across serve tenants.

Stride scheduling: each admission charges the picked tenant
``1 / weight`` of virtual time, so over any backlogged interval tenants
are admitted in proportion to their weights.  A tenant waking from idle
starts at the scheduler's current virtual time (not its stale pass), so
idleness banks no credit — the classic WFQ wake-up rule.

Admission control is two caps plus shedding: a global in-flight ceiling,
a per-tenant in-flight ceiling, and a per-tenant queue depth beyond
which new arrivals are shed (rejected outright) instead of queued.

All state is instance-level; nothing here touches module globals, so
schedulers for different serving runs never interfere.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple

from repro.errors import ServeError


@dataclass
class Tenant:
    """One tenant's identity, weight, queue, and running counters."""

    name: str
    weight: float = 1.0
    queue: Deque = field(default_factory=deque)
    pass_value: float = 0.0
    inflight: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ServeError(
                f"tenant {self.name!r} needs weight > 0, got {self.weight}"
            )


class TenantScheduler:
    """WFQ admission over a fixed tenant population."""

    def __init__(
        self,
        tenants: Sequence[Tenant],
        max_inflight: int = 8,
        max_inflight_per_tenant: int = 4,
        queue_depth: int = 16,
    ) -> None:
        if not tenants:
            raise ServeError("need at least one tenant")
        if max_inflight < 1 or max_inflight_per_tenant < 1:
            raise ServeError("in-flight caps must be >= 1")
        if queue_depth < 0:
            raise ServeError("queue_depth must be >= 0")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ServeError(f"duplicate tenant names: {names}")
        self.tenants: "OrderedDict[str, Tenant]" = OrderedDict(
            (tenant.name, tenant) for tenant in tenants
        )
        self.max_inflight = max_inflight
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.queue_depth = queue_depth
        self.inflight = 0
        self._virtual = 0.0

    def __getitem__(self, name: str) -> Tenant:
        return self.tenants[name]

    @property
    def queued(self) -> int:
        return sum(len(tenant.queue) for tenant in self.tenants.values())

    def enqueue(self, name: str, item) -> bool:
        """Queue ``item`` for ``name``; False means shed (queue full)."""
        tenant = self.tenants[name]
        if len(tenant.queue) >= self.queue_depth:
            tenant.shed += 1
            return False
        if not tenant.queue and tenant.inflight == 0:
            # Wake-up rule: no credit for time spent idle.
            tenant.pass_value = max(tenant.pass_value, self._virtual)
        tenant.queue.append(item)
        return True

    def next_admission(self) -> Optional[Tuple[Tenant, object]]:
        """Pop the next admissible item under WFQ, or None if capped."""
        if self.inflight >= self.max_inflight:
            return None
        candidates = [
            tenant
            for tenant in self.tenants.values()
            if tenant.queue and tenant.inflight < self.max_inflight_per_tenant
        ]
        if not candidates:
            return None
        tenant = min(candidates, key=lambda t: (t.pass_value, t.name))
        item = tenant.queue.popleft()
        self._virtual = tenant.pass_value
        tenant.pass_value += 1.0 / tenant.weight
        tenant.inflight += 1
        tenant.admitted += 1
        self.inflight += 1
        return tenant, item

    def release(self, name: str) -> None:
        """A query from ``name`` finished; free its in-flight slot."""
        tenant = self.tenants[name]
        if tenant.inflight < 1:
            raise ServeError(f"release without admission for tenant {name!r}")
        tenant.inflight -= 1
        tenant.completed += 1
        self.inflight -= 1

    def weighted_shares(self) -> List[Tuple[str, float]]:
        """Per-tenant completed work normalized by weight (fairness input)."""
        return [
            (tenant.name, tenant.completed / tenant.weight)
            for tenant in self.tenants.values()
        ]
