"""The serve event loop: admission, shared-clock execution, completion.

Four event sources drive one simulation clock:

1. **arrivals** from the open-loop load generator,
2. **flow completions** from the shared :class:`~repro.wan.transfer.
   WanSession` (every in-flight query's shuffle flows contend for the
   same max-min-fair capacity epochs),
3. **query finishes** (a job's reduce stage ends ``reduce_seconds``
   after its last inbound byte — a known absolute time the moment the
   last flow drains),
4. **data batches** (optional): at each scheduled batch time, every
   attached :class:`~repro.workloads.dynamic.DynamicDataFeed` applies its
   next batch to the served catalog and the cube cache drops that
   dataset's entries (``invalidate_dataset``) — a query arriving after
   the batch misses the cache instead of serving a stale cube.

Ties process finishes first, then batches, then arrivals, so a query
arriving exactly at a batch time sees the post-batch (invalidated)
cache.

At each event the scheduler sheds or queues new arrivals (consulting the
cube cache first), releases finished queries, and admits queued work
under weighted fair queueing — planning each admitted job with the
engine's plan/complete split at an absolute start offset gated by
per-site executor-slot availability, so map stages from different
queries also contend.

Everything is seed-deterministic: event times come from the simulator
and the seeded load generator, ties break on arrival index, and
completions are processed in flow-submission order, so two runs with the
same seed produce bit-identical reports (the CI serve-smoke gate).
"""

from __future__ import annotations

import hashlib
import heapq
import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.dynamic import DynamicDataFeed

from repro.core.controller import Controller
from repro.engine.job import JobResult, PlannedJob
from repro.errors import ServeError
from repro.obs import instrument
from repro.query.spec import RecurringQuery
from repro.serve.cache import CubeCache
from repro.serve.loadgen import Arrival, LoadGenerator
from repro.serve.spec import canonical_query_key
from repro.serve.tenants import Tenant, TenantScheduler
from repro.systems.base import SystemConfig
from repro.util.stats import mean, percentile
from repro.wan.topology import WanTopology
from repro.workloads.base import Workload

_EPSILON = 1e-9


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving run (all sim-deterministic)."""

    seed: int = 11
    num_tenants: int = 4
    num_queries: int = 40
    arrival_rate: float = 2.0  # aggregate queries per sim-second
    zipf_s: float = 1.1
    max_inflight: int = 8
    max_inflight_per_tenant: int = 4
    queue_depth: int = 16
    cache_capacity: int = 32
    cache_serve_seconds: float = 0.05  # fixed cost of a cube-cache answer
    #: Per-site concurrent map-stage slots; None = the site's executor
    #: count.  Lower it to sharpen cross-query compute contention.
    map_slots_per_site: Optional[int] = None
    #: Tenant weights, cycled over tenants (default: all 1.0).
    tenant_weights: Tuple[float, ...] = ()

    def tenant_list(self) -> List[Tenant]:
        if self.num_tenants < 1:
            raise ServeError("need at least one tenant")
        weights = self.tenant_weights or (1.0,)
        return [
            Tenant(
                name=f"tenant-{index:02d}",
                weight=float(weights[index % len(weights)]),
            )
            for index in range(self.num_tenants)
        ]


@dataclass
class ServedQuery:
    """One arrival's full lifecycle on the shared clock."""

    index: int
    tenant: str
    dataset_id: str
    arrival: float
    status: str = "queued"  # queued | executed | cached | shed
    admit: Optional[float] = None
    start: Optional[float] = None
    finish: Optional[float] = None
    wan_bytes: float = 0.0

    @property
    def qct(self) -> float:
        """Queueing-inclusive latency: arrival to finish."""
        if self.finish is None:
            return math.inf
        return self.finish - self.arrival

    @property
    def service_seconds(self) -> float:
        """Execution-only latency: admission to finish."""
        if self.finish is None or self.admit is None:
            return 0.0
        return self.finish - self.admit


@dataclass
class TenantReport:
    name: str
    weight: float
    offered: int = 0
    executed: int = 0
    cached: int = 0
    shed: int = 0
    mean_qct: float = 0.0

    @property
    def completed(self) -> int:
        return self.executed + self.cached


@dataclass
class ServeReport:
    """What a serving run produced, ready for CLI/bench/CI consumption."""

    config: ServeConfig
    scheme: str
    queries: List[ServedQuery] = field(default_factory=list)
    tenants: List[TenantReport] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    makespan: float = 0.0  # sim time the last query finished
    wall_seconds: float = 0.0  # excluded from digests by name

    @property
    def completed(self) -> List[ServedQuery]:
        return [q for q in self.queries if q.status in ("executed", "cached")]

    @property
    def shed(self) -> int:
        return sum(1 for q in self.queries if q.status == "shed")

    @property
    def executed(self) -> int:
        return sum(1 for q in self.queries if q.status == "executed")

    @property
    def latencies(self) -> List[float]:
        return [q.qct for q in self.completed]

    @property
    def p50_qct(self) -> float:
        return percentile(self.latencies, 50.0)

    @property
    def p99_qct(self) -> float:
        return percentile(self.latencies, 99.0)

    @property
    def mean_qct(self) -> float:
        return mean(self.latencies)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def total_wan_bytes(self) -> float:
        return sum(q.wan_bytes for q in self.queries)

    @property
    def fairness(self) -> float:
        """Jain's index over weight-normalized completed throughput.

        1.0 means every tenant that offered load got service exactly in
        proportion to its weight; 1/n means one tenant got everything.
        """
        shares = [
            report.completed / report.weight
            for report in self.tenants
            if report.offered > 0
        ]
        if not shares:
            return 1.0
        squared_sum = sum(shares) ** 2
        sum_squared = sum(share**2 for share in shares)
        if sum_squared <= 0.0:  # no tenant completed anything yet
            return 1.0
        return squared_sum / (len(shares) * sum_squared)

    def sim_digest(self) -> str:
        """Hash of every sim-clock observable (wall excluded)."""
        digest = hashlib.sha256()
        for query in self.queries:
            line = "|".join(
                [
                    str(query.index),
                    query.tenant,
                    query.dataset_id,
                    query.status,
                    _canonical(query.arrival),
                    _canonical(query.admit),
                    _canonical(query.start),
                    _canonical(query.finish),
                    _canonical(query.wan_bytes),
                ]
            )
            digest.update(line.encode())
            digest.update(b"\n")
        digest.update(
            f"cache|{self.cache_hits}|{self.cache_misses}|"
            f"{self.cache_evictions}".encode()
        )
        return digest.hexdigest()

    def latency_histogram(self, bins: int = 20) -> Dict[str, List[float]]:
        """Fixed-width latency histogram (the CI artifact payload)."""
        latencies = self.latencies
        if not latencies or bins < 1:
            return {"edges": [], "counts": []}
        top = max(latencies)
        width = top / bins if top > 0 else 1.0
        counts = [0] * bins
        for value in latencies:
            slot = min(int(value / width), bins - 1) if width > 0 else 0
            counts[slot] += 1
        edges = [width * index for index in range(bins + 1)]
        return {"edges": edges, "counts": counts}

    def to_dict(self) -> Dict:
        return {
            "scheme": self.scheme,
            "seed": self.config.seed,
            "tenants": [
                {
                    "name": report.name,
                    "weight": report.weight,
                    "offered": report.offered,
                    "executed": report.executed,
                    "cached": report.cached,
                    "shed": report.shed,
                    "mean_qct": report.mean_qct,
                }
                for report in self.tenants
            ],
            "queries": len(self.queries),
            "completed": len(self.completed),
            "executed": self.executed,
            "shed": self.shed,
            "p50_qct": self.p50_qct,
            "p99_qct": self.p99_qct,
            "mean_qct": self.mean_qct,
            "makespan": self.makespan,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": self.cache_hit_rate,
            "fairness": self.fairness,
            "total_wan_bytes": self.total_wan_bytes,
            "sim_digest": self.sim_digest(),
            "wall_seconds": self.wall_seconds,
        }


def _canonical(value: Optional[float]) -> str:
    """Canonical float text for digests (matches telemetry_digest's idea)."""
    if value is None:
        return "-"
    return format(float(value), ".12e")


@dataclass
class _Running:
    """Book-keeping for one admitted, executing query."""

    arrival: Arrival
    tenant: str
    query: RecurringQuery
    planned: PlannedJob
    remaining_flows: int
    results: List = field(default_factory=list)
    job: Optional[JobResult] = None


class ServeScheduler:
    """Serves one workload to many tenants over one shared sim clock."""

    def __init__(
        self,
        controller: Controller,
        workload: Workload,
        config: ServeConfig = ServeConfig(),
        tenants: Optional[Sequence[Tenant]] = None,
        feeds: Optional[Dict[str, "DynamicDataFeed"]] = None,
        batch_times: Optional[Sequence[float]] = None,
    ) -> None:
        """``feeds`` maps dataset ids to dynamic data feeds; at each time
        in ``batch_times`` (sorted, sim seconds) every non-exhausted feed
        applies one batch and the cube cache invalidates that dataset.
        ``batch_times`` without ``feeds`` (or vice versa) is an error."""
        if not workload.queries:
            raise ServeError(f"workload {workload.name!r} has no queries")
        if bool(feeds) != bool(batch_times):
            raise ServeError("feeds and batch_times must be given together")
        self.controller = controller
        self.workload = workload
        self.config = config
        self._feeds = dict(feeds) if feeds else {}
        self._batch_times = sorted(batch_times) if batch_times else []
        self._batch_cursor = 0
        self.batches_applied = 0
        unknown = set(self._feeds) - set(workload.dataset_ids)
        if unknown:
            raise ServeError(
                f"feeds reference unknown datasets {sorted(unknown)}"
            )
        self.tenants = TenantScheduler(
            list(tenants) if tenants is not None else config.tenant_list(),
            max_inflight=config.max_inflight,
            max_inflight_per_tenant=config.max_inflight_per_tenant,
            queue_depth=config.queue_depth,
        )
        self.cache = CubeCache(config.cache_capacity)
        self.loadgen = LoadGenerator(
            config.seed,
            list(self.tenants.tenants),
            len(workload.queries),
            rate=config.arrival_rate,
            zipf_s=config.zipf_s,
        )
        topology: WanTopology = controller.topology
        self._slot_capacity = {
            site.name: (
                config.map_slots_per_site
                if config.map_slots_per_site is not None
                else site.executors
            )
            for site in topology
        }
        if any(cap < 1 for cap in self._slot_capacity.values()):
            raise ServeError("map_slots_per_site must be >= 1")
        self._site_busy: Dict[str, List[float]] = {
            name: [] for name in self._slot_capacity
        }

    # ------------------------------------------------------------------

    def run(self) -> ServeReport:
        """Drive the event loop to completion; returns the report."""
        started_wall = time.perf_counter()  # lint: allow[R001]
        engine = self.controller.engine
        session = engine.scheduler.session()
        arrivals = self.loadgen.generate(self.config.num_queries)
        records: Dict[int, ServedQuery] = {}
        running: Dict[int, _Running] = {}
        finish_heap: List[Tuple[float, int]] = []
        cursor = 0
        clock = 0.0

        while cursor < len(arrivals) or running or self.tenants.queued:
            next_arrival = (
                arrivals[cursor].time if cursor < len(arrivals) else math.inf
            )
            next_finish = finish_heap[0][0] if finish_heap else math.inf
            next_batch = (
                self._batch_times[self._batch_cursor]
                if self._batch_cursor < len(self._batch_times)
                else math.inf
            )
            limit = min(next_arrival, next_finish, next_batch)
            if not session.drained:
                done = session.advance(limit=limit, stop_on_completion=True)
                if done:
                    clock = session.now
                    self._absorb_flows(done, running, finish_heap, engine)
                    continue
            if math.isinf(limit):
                stuck = self.tenants.queued
                raise ServeError(
                    f"admission wedged: {stuck} queries queued with no "
                    "in-flight work and no arrivals left"
                )
            clock = max(clock, limit)
            # Tie order: finishes, then batches, then arrivals — a query
            # arriving at the batch instant sees the invalidated cache.
            if next_finish <= limit:
                self._drain_finishes(clock, finish_heap, running, records)
            elif next_batch <= limit:
                self._apply_batches(clock)
            else:
                while (
                    cursor < len(arrivals)
                    and arrivals[cursor].time <= clock + _EPSILON
                ):
                    self._arrive(arrivals[cursor], records)
                    cursor += 1
            self._admit(clock, session, running, finish_heap, records, engine)

        session.flush_telemetry()
        report = self._build_report(records)
        report.wall_seconds = time.perf_counter() - started_wall  # lint: allow[R001]
        return report

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _arrive(self, arrival: Arrival, records: Dict[int, ServedQuery]) -> None:
        """Cache-check, then queue or shed one offered query."""
        query = self.workload.queries[arrival.query_index]
        record = ServedQuery(
            index=arrival.index,
            tenant=arrival.tenant,
            dataset_id=query.spec.dataset_id,
            arrival=arrival.time,
        )
        records[arrival.index] = record
        telemetry = instrument.current().telemetry
        key = canonical_query_key(query.spec)
        entry = self.cache.lookup(key, arrival.time)
        if entry is not None:
            record.status = "cached"
            record.admit = arrival.time
            record.start = arrival.time
            record.finish = arrival.time + self.config.cache_serve_seconds
            if telemetry.enabled:
                telemetry.emit(
                    "serve-finish",
                    t=record.finish,
                    tenant=record.tenant,
                    query=arrival.index,
                    dataset=record.dataset_id,
                    qct=record.qct,
                    cached=True,
                )
            return
        if not self.tenants.enqueue(arrival.tenant, arrival):
            record.status = "shed"
            if telemetry.enabled:
                telemetry.emit(
                    "serve-shed",
                    t=arrival.time,
                    tenant=record.tenant,
                    query=arrival.index,
                    dataset=record.dataset_id,
                    queue_depth=self.config.queue_depth,
                )
            return
        if telemetry.enabled:
            telemetry.emit(
                "serve-queue",
                t=arrival.time,
                tenant=record.tenant,
                query=arrival.index,
                dataset=record.dataset_id,
                depth=len(self.tenants[record.tenant].queue),
            )
            # Explicit admission-wait marker (schema v3): the queue wait
            # starts here; serve-admit closes it with queue_seconds.
            telemetry.emit(
                "queue-enter",
                t=arrival.time,
                tenant=record.tenant,
                query=arrival.index,
                position=len(self.tenants[record.tenant].queue),
                queued_total=self.tenants.queued,
            )

    def _admit(
        self,
        clock: float,
        session,
        running: Dict[int, _Running],
        finish_heap: List[Tuple[float, int]],
        records: Dict[int, ServedQuery],
        engine,
    ) -> None:
        """Admit queued queries under WFQ until a cap binds."""
        telemetry = instrument.current().telemetry
        while True:
            picked = self.tenants.next_admission()
            if picked is None:
                return
            tenant, arrival = picked
            query = self.workload.queries[arrival.query_index]
            record = records[arrival.index]
            start = self._slot_start(clock)
            job_spec = self.controller.compile(self.workload, query.spec)
            task_map, dead_sites = engine.resolve_routing(
                self.controller.reduce_fractions, job_spec.num_reduce_tasks
            )
            planned = engine.plan_job(
                self.workload.catalog.get(query.spec.dataset_id),
                job_spec,
                task_map,
                dead_sites=dead_sites,
                cube_sorted=self.controller.profile.uses_cubes,
                tag=f"q{arrival.index}",
                start_offset=start,
            )
            self._occupy_slots(start, planned)
            record.status = "executing"
            record.admit = clock
            record.start = start
            if telemetry.enabled:
                telemetry.emit(
                    "serve-admit",
                    t=clock,
                    tenant=tenant.name,
                    query=arrival.index,
                    dataset=record.dataset_id,
                    queue_seconds=clock - arrival.time,
                )
                # Explicit slot-wait marker (schema v3): how long the
                # admitted query sat waiting for a free map slot.
                telemetry.emit(
                    "slot-wait",
                    t=clock,
                    tenant=tenant.name,
                    query=arrival.index,
                    seconds=start - clock,
                    start=start,
                )
                telemetry.emit(
                    "serve-start",
                    t=start,
                    tenant=tenant.name,
                    query=arrival.index,
                    dataset=record.dataset_id,
                    slot_wait_seconds=start - clock,
                )
            entry = _Running(
                arrival=arrival,
                tenant=tenant.name,
                query=query,
                planned=planned,
                remaining_flows=len(planned.transfers),
            )
            running[arrival.index] = entry
            if planned.transfers:
                session.submit(planned.transfers)
            else:
                # No shuffle at all: the finish time is known right away.
                entry.job = engine.complete_job(planned, [])
                heapq.heappush(finish_heap, (entry.job.qct, arrival.index))

    def _absorb_flows(
        self,
        done,
        running: Dict[int, _Running],
        finish_heap: List[Tuple[float, int]],
        engine,
    ) -> None:
        """Route completed WAN flows to their queries; finish drained jobs."""
        for result in done:
            index = int(result.transfer.tag[1:])
            entry = running[index]
            entry.results.append(result)
            entry.remaining_flows -= 1
            if entry.remaining_flows == 0:
                entry.job = engine.complete_job(entry.planned, entry.results)
                heapq.heappush(finish_heap, (entry.job.qct, index))

    def _drain_finishes(
        self,
        clock: float,
        finish_heap: List[Tuple[float, int]],
        running: Dict[int, _Running],
        records: Dict[int, ServedQuery],
    ) -> None:
        """Retire every query whose reduce stage ended by ``clock``."""
        telemetry = instrument.current().telemetry
        while finish_heap and finish_heap[0][0] <= clock + _EPSILON:
            finish, index = heapq.heappop(finish_heap)
            entry = running.pop(index)
            record = records[index]
            record.status = "executed"
            record.finish = finish
            record.wan_bytes = entry.job.total_wan_bytes
            self.tenants.release(entry.tenant)
            # Deterministic completion order: profiler feedback and the
            # recurrence counter advance exactly as queries finish.
            self.controller.record_observation(entry.query, entry.job)
            self.cache.insert(
                canonical_query_key(entry.query.spec),
                now=finish,
                service_seconds=record.service_seconds,
                wan_bytes=entry.job.total_wan_bytes,
            )
            if telemetry.enabled:
                telemetry.emit(
                    "serve-finish",
                    t=finish,
                    tenant=record.tenant,
                    query=index,
                    dataset=record.dataset_id,
                    qct=record.qct,
                    cached=False,
                )

    def _apply_batches(self, clock: float) -> None:
        """Land one scheduled data batch per feed; invalidate its cubes.

        Every cached slice of a grown dataset is stale the moment the
        batch lands, so the cache drops them — the next arrival for that
        dataset misses and recomputes against the grown shards.
        """
        telemetry = instrument.current().telemetry
        self._batch_cursor += 1
        for dataset_id, feed in self._feeds.items():
            if feed.exhausted:
                continue
            dataset = self.workload.catalog.get(dataset_id)
            feed.apply_next_batch(dataset)
            self.batches_applied += 1
            invalidated = self.cache.invalidate_dataset(dataset_id, clock)
            if telemetry.enabled:
                telemetry.emit(
                    "serve-batch",
                    t=clock,
                    dataset=dataset_id,
                    batch=feed.applied_batches,
                    invalidated=invalidated,
                )

    # ------------------------------------------------------------------
    # executor-slot gating
    # ------------------------------------------------------------------

    def _slot_start(self, clock: float) -> float:
        """Earliest time every site has a free map slot (>= ``clock``)."""
        start = clock
        for site, busy in self._site_busy.items():
            still_busy = [until for until in busy if until > clock + _EPSILON]
            self._site_busy[site] = still_busy
            capacity = self._slot_capacity[site]
            if len(still_busy) >= capacity:
                ordered = sorted(still_busy)
                start = max(start, ordered[len(ordered) - capacity])
        return start

    def _occupy_slots(self, start: float, planned: PlannedJob) -> None:
        """Hold one slot per site for the query's map interval."""
        for site, metrics in planned.per_site.items():
            if metrics.excluded or metrics.map_finish <= start + _EPSILON:
                continue
            busy = [
                until
                for until in self._site_busy[site]
                if until > start + _EPSILON
            ]
            busy.append(metrics.map_finish)
            self._site_busy[site] = busy

    # ------------------------------------------------------------------

    def _build_report(self, records: Dict[int, ServedQuery]) -> ServeReport:
        queries = [records[index] for index in sorted(records)]
        makespan = max(
            (q.finish for q in queries if q.finish is not None), default=0.0
        )
        tenant_reports = []
        for tenant in self.tenants.tenants.values():
            own = [q for q in queries if q.tenant == tenant.name]
            done = [q for q in own if q.status in ("executed", "cached")]
            tenant_reports.append(
                TenantReport(
                    name=tenant.name,
                    weight=tenant.weight,
                    offered=len(own),
                    executed=sum(1 for q in own if q.status == "executed"),
                    cached=sum(1 for q in own if q.status == "cached"),
                    shed=sum(1 for q in own if q.status == "shed"),
                    mean_qct=mean(q.qct for q in done),
                )
            )
        return ServeReport(
            config=self.config,
            scheme=self.controller.profile.name,
            queries=queries,
            tenants=tenant_reports,
            cache_hits=self.cache.stats.hits,
            cache_misses=self.cache.stats.misses,
            cache_evictions=self.cache.stats.evictions,
            makespan=makespan,
        )


def serve_workload(
    scheme: str,
    workload_factory,
    topology: WanTopology,
    system_config: Optional[SystemConfig] = None,
    serve_config: ServeConfig = ServeConfig(),
) -> ServeReport:
    """Prepare a scheme and serve a Zipf workload against it."""
    from dataclasses import replace

    from repro.systems.registry import make_system

    config = system_config or SystemConfig()
    if config.charge_rdd_overhead:
        # RDD overhead is wall-measured; charging it into map_finish
        # would make sim_digest() vary run to run.
        config = replace(config, charge_rdd_overhead=False)
    controller = make_system(scheme, topology, config)
    workload = workload_factory()
    controller.prepare(workload)
    scheduler = ServeScheduler(controller, workload, serve_config)
    return scheduler.run()
