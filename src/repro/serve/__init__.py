"""Concurrent multi-tenant query serving over one shared simulation clock.

The serving layer turns the one-query-at-a-time reproduction into a
multi-tenant front-end: an event-driven scheduler admits, queues, and
interleaves many concurrent queries whose WAN flows and executor slots
contend for the same capacity epochs (via
:class:`repro.wan.transfer.WanSession` and the engine's plan/complete
split), with weighted fair queueing across tenants, admission control,
and a cube-serving result cache that reuses slices across tenants.
"""

from repro.serve.cache import CacheEntry, CacheStats, CubeCache
from repro.serve.loadgen import Arrival, LoadGenerator
from repro.serve.scheduler import (
    ServeConfig,
    ServedQuery,
    ServeReport,
    ServeScheduler,
    TenantReport,
    serve_workload,
)
from repro.serve.spec import canonical_query_key
from repro.serve.tenants import Tenant, TenantScheduler

__all__ = [
    "Arrival",
    "CacheEntry",
    "CacheStats",
    "CubeCache",
    "LoadGenerator",
    "ServeConfig",
    "ServeReport",
    "ServeScheduler",
    "ServedQuery",
    "Tenant",
    "TenantReport",
    "TenantScheduler",
    "canonical_query_key",
    "serve_workload",
]
