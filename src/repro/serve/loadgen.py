"""Seed-deterministic open-loop load generation.

Arrivals are open-loop (a Poisson process: exponential inter-arrival
gaps at a configured aggregate rate) so the offered load does not slow
down when the system backs up — the regime where queueing, fairness, and
shedding actually matter.  Tenant popularity is Zipf-distributed
(tenant 0 most popular), matching the heavy-skew traffic the paper's
recurring-query setting implies.

Every stream derives from the experiment seed via
:func:`repro.util.rng.derive_rng` with distinct labels, so the same seed
always produces bit-identical arrival times, tenant picks, and query
picks — the substrate of the serve determinism gate in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ServeError
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class Arrival:
    """One offered query: who asks what, when."""

    index: int
    time: float
    tenant: str
    query_index: int


class LoadGenerator:
    """Zipf-over-tenants, Poisson-in-time query arrival stream."""

    def __init__(
        self,
        seed: int,
        tenant_names: Sequence[str],
        num_workload_queries: int,
        rate: float = 2.0,
        zipf_s: float = 1.1,
    ) -> None:
        if not tenant_names:
            raise ServeError("need at least one tenant name")
        if num_workload_queries < 1:
            raise ServeError("workload has no queries to serve")
        if rate <= 0:
            raise ServeError(f"arrival rate must be > 0, got {rate}")
        if zipf_s < 0:
            raise ServeError(f"zipf exponent must be >= 0, got {zipf_s}")
        self.seed = seed
        self.tenant_names = list(tenant_names)
        self.num_workload_queries = num_workload_queries
        self.rate = rate
        self.zipf_s = zipf_s

    def popularity(self) -> List[float]:
        """Zipf pmf over tenants by rank (rank 0 most popular)."""
        raw = [
            (rank + 1) ** -self.zipf_s
            for rank in range(len(self.tenant_names))
        ]
        total = sum(raw)
        return [value / total for value in raw]

    def generate(self, count: int) -> List[Arrival]:
        """The first ``count`` arrivals, sorted by time."""
        if count < 1:
            raise ServeError(f"need at least one arrival, got {count}")
        gaps = derive_rng(self.seed, "serve", "arrivals").exponential(
            scale=1.0 / self.rate, size=count
        )
        tenant_picks = derive_rng(self.seed, "serve", "tenants").choice(
            len(self.tenant_names), size=count, p=self.popularity()
        )
        query_picks = derive_rng(self.seed, "serve", "queries").integers(
            0, self.num_workload_queries, size=count
        )
        arrivals: List[Arrival] = []
        clock = 0.0
        for index in range(count):
            clock += float(gaps[index])
            arrivals.append(
                Arrival(
                    index=index,
                    time=clock,
                    tenant=self.tenant_names[int(tenant_picks[index])],
                    query_index=int(query_picks[index]),
                )
            )
        return arrivals
