"""Canonical query-spec keys for the cube-serving result cache."""

from __future__ import annotations

from typing import Tuple

from repro.query.spec import QuerySpec


def canonical_query_key(spec: QuerySpec) -> Tuple:
    """A hashable identity under slice/dice equivalence.

    Two specs that group by the same attributes (in any order), apply the
    same equality filters (in any order), and request the same aggregates
    (in any order) over the same dataset canonicalize to the same key, so
    one tenant's materialized answer serves another tenant's re-ordered
    phrasing of the same cube slice.  Changing any filter value, group-by
    attribute, or aggregate — a different slice or dice — changes the key.
    """
    return (
        spec.dataset_id,
        tuple(sorted(spec.group_by)),
        tuple(sorted(spec.filters)),
        tuple(sorted(spec.aggregates)),
        spec.query_class.value,
    )


def render_key(key: Tuple) -> str:
    """Short printable form of a canonical key (telemetry payloads)."""
    dataset, group_by, filters, aggregates, query_class = key
    parts = [dataset, ",".join(group_by)]
    if filters:
        parts.append("&".join(f"{attr}={value}" for attr, value in filters))
    if aggregates:
        parts.append(",".join(aggregates))
    parts.append(query_class)
    return "|".join(parts)
