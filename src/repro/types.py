"""Core data model shared by every subsystem.

Geo-distributed datasets are collections of structured records sharded
across sites.  A record's *key* for a given query is the tuple of values
of the query's group-by attributes; combiners merge records with equal
keys, which is where all of Bohr's intermediate-data reduction comes from.

Records carry an explicit serialized size so the WAN simulator can work in
bytes while the engine works record-by-record.  Experiments typically use
records that each *represent* a slab of raw data (e.g. 1 MB per record) so
that a 40 GB/site deployment stays tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SchemaError

#: A single attribute value inside a record.
Value = Union[str, int, float]

#: A record key for some query: values of the query's group-by attributes.
Key = Tuple[Value, ...]


@dataclass(frozen=True)
class Attribute:
    """One column of a dataset schema."""

    name: str
    kind: str = "categorical"  # "categorical" | "numeric" | "text"

    _KINDS = ("categorical", "numeric", "text")

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.kind not in self._KINDS:
            raise SchemaError(
                f"attribute {self.name!r} has unknown kind {self.kind!r}; "
                f"expected one of {self._KINDS}"
            )


@dataclass(frozen=True)
class Schema:
    """An ordered set of attributes describing one dataset."""

    attributes: Tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [attribute.name for attribute in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        if not names:
            raise SchemaError("schema must have at least one attribute")

    @classmethod
    def of(cls, *names: str, kinds: Optional[Mapping[str, str]] = None) -> "Schema":
        """Shorthand constructor: ``Schema.of("url", "score")``."""
        kinds = kinds or {}
        return cls(
            tuple(Attribute(name, kinds.get(name, "categorical")) for name in names)
        )

    @property
    def names(self) -> List[str]:
        return [attribute.name for attribute in self.attributes]

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: str) -> bool:
        return any(attribute.name == name for attribute in self.attributes)

    def index(self, name: str) -> int:
        """Position of an attribute; raises :class:`SchemaError` if absent."""
        for position, attribute in enumerate(self.attributes):
            if attribute.name == name:
                return position
        raise SchemaError(f"schema has no attribute {name!r}; has {self.names}")

    def indices(self, names: Sequence[str]) -> List[int]:
        return [self.index(name) for name in names]

    def validate_record(self, record: "Record") -> None:
        if len(record.values) != len(self.attributes):
            raise SchemaError(
                f"record has {len(record.values)} values, schema expects "
                f"{len(self.attributes)}"
            )


@dataclass(frozen=True)
class Record:
    """One structured record.

    ``size_bytes`` is the serialized size this record stands for; the
    engine and WAN simulator sum these to get transfer volumes.
    """

    values: Key
    size_bytes: int = 100

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise SchemaError("record size_bytes must be > 0")

    def key(self, indices: Sequence[int]) -> Key:
        """Project the record onto the given attribute positions."""
        return tuple(self.values[index] for index in indices)

    def value_of(self, schema: Schema, name: str) -> Value:
        return self.values[schema.index(name)]


def records_bytes(records: Iterable[Record]) -> int:
    """Total serialized size of an iterable of records."""
    return sum(record.size_bytes for record in records)


@dataclass
class GeoDataset:
    """A dataset sharded across sites.

    ``shards`` maps site name to the list of records currently stored
    there.  Shards are mutable: the placement executor moves records
    between sites, and dynamic workloads append new batches (§8.6).
    """

    dataset_id: str
    schema: Schema
    shards: Dict[str, List[Record]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.dataset_id:
            raise SchemaError("dataset_id must be non-empty")

    @property
    def sites(self) -> List[str]:
        return list(self.shards.keys())

    def shard(self, site: str) -> List[Record]:
        """Records at ``site`` (empty list if the site holds nothing)."""
        return self.shards.get(site, [])

    def add_records(self, site: str, records: Iterable[Record]) -> None:
        batch = list(records)
        for record in batch:
            self.schema.validate_record(record)
        self.shards.setdefault(site, []).extend(batch)

    def move_records(self, src: str, dst: str, records: List[Record]) -> None:
        """Relocate specific record objects from one shard to another.

        The records must currently live in the source shard; identity (not
        equality) is used so duplicate-valued records move correctly.
        """
        source = self.shards.get(src, [])
        moving = {id(record) for record in records}
        if len(moving) != len(records):
            raise SchemaError("duplicate record objects in move request")
        remaining = [record for record in source if id(record) not in moving]
        if len(source) - len(remaining) != len(records):
            raise SchemaError(
                f"some records to move from {src!r} are not stored there"
            )
        self.shards[src] = remaining
        self.shards.setdefault(dst, []).extend(records)

    def bytes_at(self, site: str) -> int:
        return records_bytes(self.shard(site))

    def bytes_by_site(self) -> Dict[str, int]:
        return {site: records_bytes(records) for site, records in self.shards.items()}

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_at(site) for site in self.shards)

    @property
    def total_records(self) -> int:
        return sum(len(records) for records in self.shards.values())

    def all_records(self) -> List[Record]:
        merged: List[Record] = []
        for records in self.shards.values():
            merged.extend(records)
        return merged


@dataclass
class DatasetCatalog:
    """All datasets known to the controller, by id."""

    datasets: Dict[str, GeoDataset] = field(default_factory=dict)

    def add(self, dataset: GeoDataset) -> None:
        if dataset.dataset_id in self.datasets:
            raise SchemaError(f"duplicate dataset {dataset.dataset_id!r}")
        self.datasets[dataset.dataset_id] = dataset

    def get(self, dataset_id: str) -> GeoDataset:
        try:
            return self.datasets[dataset_id]
        except KeyError:
            raise SchemaError(f"unknown dataset {dataset_id!r}") from None

    def __iter__(self):
        return iter(self.datasets.values())

    def __len__(self) -> int:
        return len(self.datasets)

    def __contains__(self, dataset_id: str) -> bool:
        return dataset_id in self.datasets
