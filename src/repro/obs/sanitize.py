"""Runtime invariant sanitizer (the ``--sanitize`` mode).

Production simulators ship with sanitizers the way native code ships
with ASan: cheap assertions on conservation laws that are *always* true
when the simulator is healthy, checked at the existing
:mod:`repro.obs.instrument` hook points.  The invariants:

* **bytes conservation** — per job, the combiner never creates bytes
  (``intermediate <= map_output``), a site never ships more than it
  combined (``uploaded + local <= intermediate``), and WAN bytes are
  conserved end-to-end (``Σ uploaded == Σ downloaded``);
* **sim-clock monotonicity** — the WAN progressive-filling loop's clock
  never runs backwards, and every transfer finishes at or after its
  (latency-adjusted) start;
* **LP feasibility** — placement fractions lie in [0, 1] and sum to 1,
  move budgets are non-negative and never exceed what the source site
  holds;
* **movement fit** — executed data movement lands inside the lag window
  whenever the plan claims it did;
* **fault accounting** (chaos runs only) — bytes lost to abandoned
  transfers match the failed transfers' payloads, outage-excluded sites
  did no work, and the retry loop conserves bytes (delivered + abandoned
  == requested) within the policy's attempt budget;
* **critical-path conservation** (serve analysis) — a reconstructed
  query path's components (queue wait, slot wait, map, WAN serial +
  contention, reduce, cache) are non-negative and sum to the query's
  QCT within 1e-9.

A disabled call site costs one attribute check (``sanitizer.enabled``),
mirroring the tracer/metrics no-op twins.  In ``collect`` mode (the CLI
default) violations accumulate for a summary report; in ``raise`` mode
(the test default) the first violation raises
:class:`~repro.errors.InvariantViolation` at the offending call site.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.errors import InvariantViolation

#: Absolute slack for byte comparisons (float accumulation noise).
_ABS_TOL_BYTES = 1e-3
#: Relative slack for all comparisons.
_REL_TOL = 1e-6
#: Absolute slack for clock comparisons (progressive-filling epsilon).
_ABS_TOL_SECONDS = 1e-9


class NullSanitizer:
    """No-op twin: every check is a cheap early return."""

    enabled = False
    violations: Tuple[str, ...] = ()  # always empty; shared on purpose
    checks_run = 0

    def check_job(self, result) -> None:
        return None

    def check_clock(self, previous: float, now: float, where: str = "wan") -> None:
        return None

    def check_placement(self, problem, reduce_fractions, moves) -> None:
        return None

    def check_movement(self, movement, lag_seconds: float) -> None:
        return None

    def check_retry_outcome(self, outcome, policy) -> None:
        return None

    def check_critical_path(self, path) -> None:
        return None


NULL_SANITIZER = NullSanitizer()


class Sanitizer:
    """Collects (or raises on) simulation invariant violations."""

    enabled = True

    def __init__(self, mode: str = "collect") -> None:
        if mode not in ("collect", "raise"):
            raise InvariantViolation(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.violations: List[str] = []
        self.checks_run = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _fail(self, invariant: str, message: str) -> None:
        record = f"[{invariant}] {message}"
        self.violations.append(record)
        if self.mode == "raise":
            raise InvariantViolation(record)

    def _check(self, invariant: str, condition: bool, message: str) -> None:
        self.checks_run += 1
        if not condition:
            self._fail(invariant, message)

    @staticmethod
    def _le(left: float, right: float, abs_tol: float) -> bool:
        return left <= right + abs_tol + _REL_TOL * max(abs(left), abs(right))

    @staticmethod
    def _eq(left: float, right: float, abs_tol: float) -> bool:
        return math.isclose(left, right, rel_tol=_REL_TOL, abs_tol=abs_tol)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_job(self, result) -> None:
        """Bytes conservation + clock sanity across map→combine→shuffle→reduce."""
        total_up = 0.0
        total_down = 0.0
        max_finish = 0.0
        for site, metrics in result.per_site.items():
            self._check(
                "combine-conservation",
                self._le(
                    metrics.intermediate_bytes,
                    metrics.map_output_bytes,
                    _ABS_TOL_BYTES,
                ),
                f"{site}: combiner output {metrics.intermediate_bytes:.3f} B "
                f"exceeds map output {metrics.map_output_bytes:.3f} B",
            )
            shipped = metrics.uploaded_bytes + metrics.local_shuffle_bytes
            self._check(
                "shuffle-conservation",
                self._le(shipped, metrics.intermediate_bytes, _ABS_TOL_BYTES),
                f"{site}: shuffled {shipped:.3f} B out of only "
                f"{metrics.intermediate_bytes:.3f} B of intermediate data",
            )
            self._check(
                "sim-clock",
                min(
                    metrics.map_seconds,
                    metrics.map_finish,
                    metrics.reduce_seconds,
                    metrics.finish_time,
                )
                >= 0.0,
                f"{site}: negative phase time "
                f"(map={metrics.map_seconds}, finish={metrics.finish_time})",
            )
            self._check(
                "sim-clock",
                self._le(metrics.map_finish, metrics.finish_time, _ABS_TOL_SECONDS)
                or metrics.finish_time == 0.0,  # lint: allow[R004] — exact 0.0 sentinel for "no reduce phase ran"
                f"{site}: finish {metrics.finish_time} before map end "
                f"{metrics.map_finish}",
            )
            total_up += metrics.uploaded_bytes
            total_down += metrics.downloaded_bytes
            max_finish = max(max_finish, metrics.finish_time)
        self._check(
            "wan-conservation",
            self._eq(total_up, total_down, _ABS_TOL_BYTES),
            f"uploaded {total_up:.3f} B but downloaded {total_down:.3f} B",
        )
        self._check(
            "qct-bound",
            self._eq(result.qct, max_finish, _ABS_TOL_SECONDS),
            f"qct {result.qct} is not the latest site finish {max_finish}",
        )
        for transfer_result in result.transfers:
            self._check(
                "sim-clock",
                self._le(
                    transfer_result.transfer.start_time,
                    transfer_result.finish_time,
                    _ABS_TOL_SECONDS,
                ),
                f"transfer {transfer_result.transfer.src}->"
                f"{transfer_result.transfer.dst} finished at "
                f"{transfer_result.finish_time} before its start "
                f"{transfer_result.transfer.start_time}",
            )
        # Chaos invariants, only exercised when faults actually bit (so
        # benign runs keep an identical check count and summary).
        failed = [
            t for t in result.transfers if getattr(t, "failed", False)
        ]
        total_lost = sum(
            getattr(metrics, "lost_bytes", 0.0)
            for metrics in result.per_site.values()
        )
        if failed or total_lost:
            self._check(
                "fault-accounting",
                self._eq(
                    total_lost,
                    sum(t.transfer.num_bytes for t in failed),
                    _ABS_TOL_BYTES,
                ),
                f"lost {total_lost:.3f} B but failed transfers carried "
                f"{sum(t.transfer.num_bytes for t in failed):.3f} B",
            )
        for site, metrics in result.per_site.items():
            if not getattr(metrics, "excluded", False):
                continue
            idle = (
                metrics.uploaded_bytes,
                metrics.downloaded_bytes,
                metrics.map_seconds,
                metrics.finish_time,
            )
            self._check(
                "fault-exclusion",
                all(value == 0.0 for value in idle),  # lint: allow[R004] — exact 0.0 contract for a site that sat out
                f"{site}: excluded by outage but still did work "
                f"(up={metrics.uploaded_bytes}, down={metrics.downloaded_bytes})",
            )

    def check_clock(self, previous: float, now: float, where: str = "wan") -> None:
        """The progressive-filling loop's clock must never run backwards."""
        self._check(
            "sim-clock",
            now + _ABS_TOL_SECONDS >= previous,
            f"{where}: clock moved backwards {previous} -> {now}",
        )

    def check_placement(self, problem, reduce_fractions, moves) -> None:
        """LP solution feasibility: fractions in [0,1] summing to 1; move
        budgets non-negative and within the source site's holdings."""
        total = 0.0
        for site, fraction in reduce_fractions.items():
            self._check(
                "lp-feasibility",
                -_REL_TOL <= fraction <= 1.0 + _REL_TOL,
                f"reduce fraction r[{site}] = {fraction} outside [0, 1]",
            )
            total += fraction
        self._check(
            "lp-feasibility",
            self._eq(total, 1.0, 1e-6),
            f"reduce fractions sum to {total}, expected 1",
        )
        outflow: dict = {}
        for (dataset, src, dst), budget in moves.items():
            self._check(
                "lp-feasibility",
                budget >= -_ABS_TOL_BYTES,
                f"negative move budget x[{dataset}][{src}->{dst}] = {budget}",
            )
            self._check(
                "lp-feasibility",
                src != dst,
                f"self-move x[{dataset}][{src}->{src}] = {budget}",
            )
            outflow[(dataset, src)] = outflow.get((dataset, src), 0.0) + budget
        for (dataset, src), moved in outflow.items():
            held = problem.I(dataset, src)
            self._check(
                "lp-capacity",
                self._le(moved, held, _ABS_TOL_BYTES),
                f"{dataset}: {src} moves out {moved:.3f} B but holds only "
                f"{held:.3f} B",
            )

    def check_movement(self, movement, lag_seconds: float) -> None:
        """Executed movement respects the lag window it claims to fit."""
        if movement is None:
            return
        self._check(
            "movement-lag",
            0.0 < movement.scale_factor <= 1.0 + _REL_TOL,
            f"movement scale factor {movement.scale_factor} outside (0, 1]",
        )
        if movement.within_lag:
            self._check(
                "movement-lag",
                self._le(movement.makespan_seconds, lag_seconds * 1.0001, 0.0),
                f"movement claims to fit the lag but took "
                f"{movement.makespan_seconds}s > T={lag_seconds}s",
            )
        for (dataset, src, dst), moved in movement.moved_bytes.items():
            self._check(
                "movement-lag",
                moved >= 0.0,
                f"negative moved bytes for {dataset} {src}->{dst}: {moved}",
            )

    def check_retry_outcome(self, outcome, policy) -> None:
        """Retry-loop conservation: every requested byte is either
        delivered or accounted as abandoned, attempts respect the policy
        budget, and the clock never runs backwards across backoffs."""
        self._check(
            "retry-conservation",
            self._eq(
                outcome.delivered_bytes + outcome.abandoned_bytes,
                outcome.requested_bytes,
                _ABS_TOL_BYTES,
            ),
            f"delivered {outcome.delivered_bytes:.3f} B + abandoned "
            f"{outcome.abandoned_bytes:.3f} B != requested "
            f"{outcome.requested_bytes:.3f} B",
        )
        expected_retries = sum(
            result.attempts - 1 for result in outcome.results
        )
        self._check(
            "retry-conservation",
            outcome.retries == expected_retries,
            f"retry counter {outcome.retries} != extra attempts "
            f"{expected_retries}",
        )
        failed_count = sum(1 for result in outcome.results if result.failed)
        self._check(
            "retry-conservation",
            len(outcome.abandoned) == failed_count,
            f"{failed_count} failed results but {len(outcome.abandoned)} "
            f"recorded as abandoned",
        )
        for result in outcome.results:
            label = f"{result.transfer.src}->{result.transfer.dst}"
            self._check(
                "retry-budget",
                1 <= result.attempts <= policy.max_attempts,
                f"transfer {label} used {result.attempts} attempts with a "
                f"budget of {policy.max_attempts}",
            )
            if result.failed:
                self._check(
                    "retry-budget",
                    result.attempts == policy.max_attempts,
                    f"transfer {label} abandoned after {result.attempts} "
                    f"attempts with budget {policy.max_attempts} left unspent",
                )
            self._check(
                "sim-clock",
                self._le(
                    result.transfer.start_time,
                    result.finish_time,
                    _ABS_TOL_SECONDS,
                ),
                f"transfer {label} finished at {result.finish_time} before "
                f"its original submission {result.transfer.start_time}",
            )

    def check_critical_path(self, path) -> None:
        """A reconstructed serve-query path conserves its QCT.

        Every component is an interval between two event timestamps, so
        the decomposition must telescope: non-negative components whose
        sum matches the reported QCT within the sim-clock tolerance.
        """
        for name, value in zip(
            (
                "queue_wait",
                "slot_wait",
                "map_seconds",
                "wan_serial",
                "wan_contention",
                "reduce_seconds",
                "cached_seconds",
            ),
            path.components,
        ):
            self._check(
                "critpath-conservation",
                value >= -_ABS_TOL_SECONDS,
                f"q{path.index}: negative path component {name}={value}",
            )
        self._check(
            "critpath-conservation",
            abs(path.total - path.qct) <= _ABS_TOL_SECONDS,
            f"q{path.index}: components sum to {path.total} but "
            f"qct is {path.qct} (residual {path.total - path.qct:+.3e})",
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self) -> str:
        status = "OK" if not self.violations else "FAILED"
        lines = [
            f"sanitizer {status}: {self.checks_run} invariant checks, "
            f"{len(self.violations)} violations"
        ]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


def iter_violations(sanitizers: Iterable[Sanitizer]) -> List[str]:
    """Flatten violations across sanitizers (multi-run helpers/tests)."""
    collected: List[str] = []
    for sanitizer in sanitizers:
        collected.extend(sanitizer.violations)
    return collected
