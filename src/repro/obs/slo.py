"""Per-tenant SLO tracking over serve latency streams.

The serving layer's per-tenant latency is summarized three ways, all
deterministic (two same-seed runs produce bit-identical digests):

* a **streaming quantile sketch** (:class:`QuantileSketch`, the
  Greenwald–Khanna epsilon-approximate summary) folds every completed
  query's QCT without retaining the full sample list — rank error is
  bounded by ``epsilon * n``, pinned by the sketch-vs-exact parity
  test;
* an **SLO target** per tenant (:class:`SloSpec`: a latency target plus
  an attainment goal) turns each QCT into an ok/violation sample;
* **rolling burn-rate windows**: sim time is cut into fixed windows and
  each window's violation rate is expressed as a multiple of the error
  budget (``1 - goal``) — burn rate > 1 means the tenant is burning
  budget faster than the SLO allows.

The tracker replays ``serve-finish`` events (or any deterministic
sample feed) and emits the schema-v3 ``slo-sample`` / ``slo-window`` /
``slo-status`` kinds onto a telemetry bus, so archives, ``repro
report`` panels, and ``repro top`` all see the same stream.  Like every
``repro.obs`` module it is a pure observer (R011): it never mutates
engine/wan/serve state.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.telemetry import TelemetryEvent

#: Default rank-error budget for the latency sketches.
DEFAULT_EPSILON = 0.005
#: Default attainment goal when a target comes without one.
DEFAULT_GOAL = 0.95
#: Default burn-rate window length (sim seconds).
DEFAULT_WINDOW_SECONDS = 5.0


def _canonical(value: float) -> str:
    return format(float(value), ".12e")


# ----------------------------------------------------------------------
# streaming quantiles
# ----------------------------------------------------------------------


class QuantileSketch:
    """Greenwald–Khanna epsilon-approximate streaming quantile summary.

    Entries are ``[value, g, delta]`` tuples kept sorted by value;
    ``g`` is the rank gap to the previous entry and ``delta`` the rank
    uncertainty.  :meth:`query` returns a value whose rank is within
    ``epsilon * count`` of the requested one.  Insertion and the
    periodic compress are purely value-driven — no randomness — so the
    summary is deterministic for a given input order.
    """

    def __init__(self, epsilon: float = DEFAULT_EPSILON) -> None:
        if not 0.0 < epsilon < 0.5:
            raise ObservabilityError(
                f"sketch epsilon must be in (0, 0.5), got {epsilon}"
            )
        self.epsilon = epsilon
        self.count = 0
        self._entries: List[List[float]] = []
        self._since_compress = 0
        self._compress_every = max(1, int(1.0 / (2.0 * epsilon)))
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the summary."""
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ObservabilityError(f"sketch sample must be finite, got {value}")
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        position = bisect_right(self._entries, value, key=lambda entry: entry[0])
        if position == 0 or position == len(self._entries):
            delta = 0.0
        else:
            delta = math.floor(2.0 * self.epsilon * self.count)
        self._entries.insert(position, [value, 1.0, delta])
        self.count += 1
        self._since_compress += 1
        if self._since_compress >= self._compress_every:
            self._compress()
            self._since_compress = 0

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _compress(self) -> None:
        """Merge adjacent entries whose combined rank span stays in budget."""
        threshold = math.floor(2.0 * self.epsilon * self.count)
        entries = self._entries
        position = len(entries) - 2
        while position >= 1:
            _value, g, _delta = entries[position]
            nxt = entries[position + 1]
            if g + nxt[1] + nxt[2] <= threshold:
                nxt[1] += g
                del entries[position]
            position -= 1

    def query(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], within epsilon rank error."""
        if not self.count:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        rank = max(1.0, math.ceil(q * self.count))
        margin = self.epsilon * self.count
        rank_floor = 0.0
        previous = self._entries[0][0]
        for value, g, delta in self._entries:
            rank_floor += g
            if rank_floor + delta > rank + margin:
                return previous
            previous = value
        return self._entries[-1][0]

    @property
    def retained(self) -> int:
        """Entries currently held (the sketch's memory footprint)."""
        return len(self._entries)

    def digest_fields(self) -> List[str]:
        """Canonical strings for determinism digests."""
        fields = [str(self.count), str(self.retained)]
        if self.count:
            fields.append(_canonical(self.minimum))
            fields.append(_canonical(self.maximum))
            for grid in (0.5, 0.9, 0.99):
                fields.append(_canonical(self.query(grid)))
        return fields


# ----------------------------------------------------------------------
# SLO specs and tracking
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SloSpec:
    """One tenant's objective: a latency target plus an attainment goal."""

    tenant: str
    target_seconds: float
    goal: float = DEFAULT_GOAL

    def __post_init__(self) -> None:
        if self.target_seconds <= 0.0:
            raise ObservabilityError(
                f"{self.tenant}: SLO target must be positive, "
                f"got {self.target_seconds}"
            )
        if not 0.0 < self.goal < 1.0:
            raise ObservabilityError(
                f"{self.tenant}: attainment goal must be in (0, 1), "
                f"got {self.goal} (an error budget of zero makes burn "
                "rate undefined)"
            )


def parse_slo_targets(
    items: Sequence[str],
    tenants: Sequence[str],
    goal: float = DEFAULT_GOAL,
) -> List[SloSpec]:
    """Parse ``TENANT=TARGET`` pairs (the ``repro serve --slo`` syntax).

    ``default=TARGET`` applies to every tenant not named explicitly;
    explicit pairs win.  Unknown tenant names are an error so a typo'd
    ``--slo`` fails loudly instead of silently tracking nothing.
    """
    default: Optional[float] = None
    explicit: Dict[str, float] = {}
    for item in items:
        name, separator, raw = item.partition("=")
        if not separator or not name or not raw:
            raise ObservabilityError(
                f"bad SLO target {item!r}: expected TENANT=SECONDS"
            )
        try:
            target = float(raw)
        except ValueError:
            raise ObservabilityError(
                f"bad SLO target {item!r}: {raw!r} is not a number"
            ) from None
        if name == "default":
            default = target
        elif name in tenants:
            explicit[name] = target
        else:
            raise ObservabilityError(
                f"bad SLO target {item!r}: unknown tenant {name!r} "
                f"(tenants: {', '.join(tenants)})"
            )
    specs = []
    for tenant in sorted(tenants):
        target = explicit.get(tenant, default)
        if target is not None:
            specs.append(SloSpec(tenant=tenant, target_seconds=target, goal=goal))
    return specs


@dataclass
class TenantSlo:
    """One tenant's final SLO standing."""

    tenant: str
    target_seconds: float
    goal: float
    completed: int = 0
    violations: int = 0
    p50: float = 0.0
    p99: float = 0.0
    max_burn: float = 0.0

    @property
    def attainment(self) -> float:
        if not self.completed:
            return 1.0
        return (self.completed - self.violations) / self.completed

    @property
    def met(self) -> bool:
        return self.attainment >= self.goal


@dataclass
class SloReport:
    """Per-tenant SLO standings plus the rolling burn-rate windows."""

    window_seconds: float
    rows: List[TenantSlo] = field(default_factory=list)
    #: (tenant, window index) -> [total, violations], window-aligned.
    windows: Dict[Tuple[str, int], List[int]] = field(default_factory=dict)
    makespan: float = 0.0

    def burn_rate(self, tenant: str, window: int) -> float:
        spec_row = next(row for row in self.rows if row.tenant == tenant)
        total, violations = self.windows[(tenant, window)]
        if not total:
            return 0.0
        return (violations / total) / (1.0 - spec_row.goal)

    def digest(self) -> str:
        digest = hashlib.sha256()
        for row in self.rows:
            digest.update(
                "|".join(
                    [
                        row.tenant,
                        _canonical(row.target_seconds),
                        _canonical(row.goal),
                        str(row.completed),
                        str(row.violations),
                        _canonical(row.attainment),
                        _canonical(row.p50),
                        _canonical(row.p99),
                        _canonical(row.max_burn),
                    ]
                ).encode()
            )
            digest.update(b"\n")
        for tenant, window in sorted(self.windows):
            total, violations = self.windows[(tenant, window)]
            digest.update(
                f"window|{tenant}|{window}|{total}|{violations}\n".encode()
            )
        return digest.hexdigest()

    def to_dict(self) -> Dict:
        return {
            "window_seconds": self.window_seconds,
            "makespan": self.makespan,
            "tenants": [
                {
                    "tenant": row.tenant,
                    "target_seconds": row.target_seconds,
                    "goal": row.goal,
                    "completed": row.completed,
                    "violations": row.violations,
                    "attainment": row.attainment,
                    "met": row.met,
                    "p50": row.p50,
                    "p99": row.p99,
                    "max_burn": row.max_burn,
                }
                for row in self.rows
            ],
            "windows": [
                {
                    "tenant": tenant,
                    "window": window,
                    "start": window * self.window_seconds,
                    "end": (window + 1) * self.window_seconds,
                    "total": counts[0],
                    "violations": counts[1],
                    "burn_rate": self.burn_rate(tenant, window),
                }
                for (tenant, window), counts in sorted(self.windows.items())
            ],
            "digest": self.digest(),
        }


class SloTracker:
    """Folds completed-query latencies into per-tenant SLO standings.

    Feed observations in a deterministic order (stream order of
    ``serve-finish`` events, or ``(finish, index)``-sorted report rows)
    and the emitted ``slo-*`` events are bit-identical across same-seed
    runs.  Tenants without a spec are ignored — SLOs are opt-in per
    tenant.
    """

    def __init__(
        self,
        specs: Sequence[SloSpec],
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        epsilon: float = DEFAULT_EPSILON,
    ) -> None:
        if window_seconds <= 0.0:
            raise ObservabilityError(
                f"burn window must be positive, got {window_seconds}"
            )
        names = [spec.tenant for spec in specs]
        if len(set(names)) != len(names):
            raise ObservabilityError(f"duplicate SLO specs for {sorted(names)}")
        self.specs: Dict[str, SloSpec] = {
            spec.tenant: spec for spec in sorted(specs, key=lambda s: s.tenant)
        }
        self.window_seconds = window_seconds
        self._sketches: Dict[str, QuantileSketch] = {
            tenant: QuantileSketch(epsilon) for tenant in self.specs
        }
        self._totals: Dict[str, List[int]] = {
            tenant: [0, 0] for tenant in self.specs
        }
        self._windows: Dict[Tuple[str, int], List[int]] = {}
        #: (t, query, tenant, qct, ok) in observation order.
        self._samples: List[Tuple[float, int, str, float, bool]] = []

    def observe(self, tenant: str, finish: float, qct: float, query: int = -1) -> None:
        """Fold one completed query; no-op for tenants without a spec."""
        spec = self.specs.get(tenant)
        if spec is None:
            return
        ok = qct <= spec.target_seconds
        self._sketches[tenant].add(qct)
        totals = self._totals[tenant]
        totals[0] += 1
        if not ok:
            totals[1] += 1
        window = int(finish // self.window_seconds)
        counts = self._windows.setdefault((tenant, window), [0, 0])
        counts[0] += 1
        if not ok:
            counts[1] += 1
        self._samples.append((finish, query, tenant, qct, ok))

    def observe_events(self, events: Sequence[TelemetryEvent]) -> int:
        """Replay ``serve-finish`` events in stream order; returns count."""
        observed = 0
        for event in events:
            if event.kind != "serve-finish":
                continue
            attrs = event.attrs
            self.observe(
                str(attrs.get("tenant", "")),
                float(event.t or 0.0),
                float(attrs.get("qct", 0.0)),
                query=int(attrs.get("query", -1)),
            )
            observed += 1
        return observed

    def finalize(self, makespan: float = 0.0) -> SloReport:
        report = SloReport(
            window_seconds=self.window_seconds,
            windows=dict(self._windows),
            makespan=makespan,
        )
        for tenant, spec in self.specs.items():
            sketch = self._sketches[tenant]
            total, violations = self._totals[tenant]
            row = TenantSlo(
                tenant=tenant,
                target_seconds=spec.target_seconds,
                goal=spec.goal,
                completed=total,
                violations=violations,
                p50=sketch.query(0.5) if total else 0.0,
                p99=sketch.query(0.99) if total else 0.0,
            )
            report.rows.append(row)
        for (tenant, window), _counts in sorted(self._windows.items()):
            burn = report.burn_rate(tenant, window)
            for row in report.rows:
                if row.tenant == tenant:
                    row.max_burn = max(row.max_burn, burn)
        return report

    def emit_events(self, bus, report: SloReport) -> int:
        """Append the ``slo-*`` stream for this run to ``bus``.

        Order: every ``slo-sample`` in observation order, then
        ``slo-window`` rows sorted by (tenant, window), then one
        ``slo-status`` per tenant — all deterministic.
        """
        emitted = 0
        for finish, query, tenant, qct, ok in self._samples:
            bus.emit(
                "slo-sample",
                t=finish,
                tenant=tenant,
                query=query,
                qct=qct,
                ok=ok,
                target_seconds=self.specs[tenant].target_seconds,
            )
            emitted += 1
        for (tenant, window), counts in sorted(self._windows.items()):
            bus.emit(
                "slo-window",
                t=(window + 1) * self.window_seconds,
                tenant=tenant,
                window=window,
                window_seconds=self.window_seconds,
                total=counts[0],
                violations=counts[1],
                burn_rate=report.burn_rate(tenant, window),
            )
            emitted += 1
        for row in report.rows:
            bus.emit(
                "slo-status",
                t=report.makespan,
                tenant=row.tenant,
                target_seconds=row.target_seconds,
                goal=row.goal,
                completed=row.completed,
                violations=row.violations,
                attainment=row.attainment,
                met=row.met,
                p50=row.p50,
                p99=row.p99,
                max_burn=row.max_burn,
            )
            emitted += 1
        return emitted
