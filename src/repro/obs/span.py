"""Spans: one named interval on the wall clock, the simulated clock, or both.

The repository runs a *simulation*: a query's map/shuffle/reduce phases
occupy simulated seconds (what the paper's figures report), while the
offline machinery — cube building, probe construction, LP solving — costs
real wall-clock seconds (what Tables 3–5 report).  A span therefore
carries two independent intervals:

* ``wall_start``/``wall_end`` — seconds of real time since the tracer's
  epoch, measured with ``time.perf_counter``;
* ``sim_start``/``sim_end`` — seconds on the simulated clock, taken from
  the engine/WAN simulator; ``None`` for spans that only exist in real
  time.

Spans form a tree via ``parent_id``; the root spans of an export have
``parent_id is None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ObservabilityError


@dataclass
class Span:
    """One node of the trace tree."""

    span_id: int
    name: str
    stage: str = ""
    parent_id: Optional[int] = None
    wall_start: float = 0.0
    wall_end: Optional[float] = None
    sim_start: Optional[float] = None
    sim_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.wall_end is not None and self.wall_end < self.wall_start:
            raise ObservabilityError(
                f"span {self.name!r}: wall_end {self.wall_end} precedes "
                f"wall_start {self.wall_start}"
            )
        if (
            self.sim_start is not None
            and self.sim_end is not None
            and self.sim_end < self.sim_start
        ):
            raise ObservabilityError(
                f"span {self.name!r}: sim_end {self.sim_end} precedes "
                f"sim_start {self.sim_start}"
            )

    @property
    def wall_duration(self) -> float:
        """Elapsed wall seconds; 0.0 while the span is still open."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def sim_duration(self) -> float:
        """Elapsed simulated seconds; 0.0 without a simulated interval."""
        if self.sim_start is None or self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    @property
    def duration(self) -> float:
        """The span's natural duration: simulated if present, else wall."""
        if self.sim_start is not None and self.sim_end is not None:
            return self.sim_duration
        return self.wall_duration

    @property
    def is_simulated(self) -> bool:
        return self.sim_start is not None and self.sim_end is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (the JSONL line)."""
        record: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "stage": self.stage,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
        }
        if self.sim_start is not None:
            record["sim_start"] = self.sim_start
        if self.sim_end is not None:
            record["sim_end"] = self.sim_end
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                span_id=int(record["span_id"]),
                name=str(record["name"]),
                stage=str(record.get("stage", "")),
                parent_id=(
                    None
                    if record.get("parent_id") is None
                    else int(record["parent_id"])
                ),
                wall_start=float(record.get("wall_start", 0.0)),
                wall_end=(
                    None
                    if record.get("wall_end") is None
                    else float(record["wall_end"])
                ),
                sim_start=(
                    None
                    if record.get("sim_start") is None
                    else float(record["sim_start"])
                ),
                sim_end=(
                    None
                    if record.get("sim_end") is None
                    else float(record["sim_end"])
                ),
                attrs=dict(record.get("attrs", {})),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ObservabilityError(f"malformed span record: {error}") from None
