"""The process-wide instrumentation slot.

Every instrumented call site does::

    from repro.obs import instrument
    ...
    obs = instrument.current()
    with obs.tracer.span("lp", stage="lp"):
        ...
    obs.metrics.counter("lp_solves").inc()

By default :func:`current` returns :data:`NULL_INSTRUMENTATION`, whose
tracer and metrics are the no-op twins — a disabled call site costs a
function call and a couple of attribute lookups, keeping the
tracing-off overhead of ``run_experiment`` well under the 3% budget.

Enable collection for a region with :func:`instrumented`::

    with instrument.instrumented() as obs:
        run_experiment(...)
    export_jsonl(obs.tracer, "trace.jsonl")

The slot is deliberately process-global rather than threaded through
every constructor: the engine, solver, WAN simulator and similarity
checker are called from many entry points (CLI, benchmarks, tests) and
instrumentation must not reshape those APIs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.sanitize import NULL_SANITIZER, NullSanitizer, Sanitizer
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetryBus, TelemetryBus
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer


@dataclass
class Instrumentation:
    """The tracer/metrics/sanitizer/telemetry bundle handed to call sites."""

    tracer: Union[Tracer, NullTracer] = field(default_factory=lambda: NULL_TRACER)
    metrics: Union[MetricsRegistry, NullMetrics] = field(
        default_factory=lambda: NULL_METRICS
    )
    sanitizer: Union[Sanitizer, NullSanitizer] = field(
        default_factory=lambda: NULL_SANITIZER
    )
    telemetry: Union[TelemetryBus, NullTelemetryBus] = field(
        default_factory=lambda: NULL_TELEMETRY
    )

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.sanitizer.enabled
            or self.telemetry.enabled
        )


NULL_INSTRUMENTATION = Instrumentation()

_current: Instrumentation = NULL_INSTRUMENTATION


def current() -> Instrumentation:
    """The active instrumentation (the no-op pair unless installed)."""
    return _current


def install(instrumentation: Optional[Instrumentation] = None) -> Instrumentation:
    """Install (or reset to no-op with ``None``) the active instrumentation."""
    global _current
    _current = instrumentation or NULL_INSTRUMENTATION
    return _current


@contextmanager
def instrumented(
    tracer: Optional[Union[Tracer, NullTracer]] = None,
    metrics: Optional[Union[MetricsRegistry, NullMetrics]] = None,
    sanitizer: Optional[Union[Sanitizer, NullSanitizer]] = None,
    telemetry: Optional[Union[TelemetryBus, NullTelemetryBus]] = None,
) -> Iterator[Instrumentation]:
    """Activate live collection for a region, restoring the prior slot.

    With no arguments, a fresh :class:`Tracer` and
    :class:`MetricsRegistry` are created (the sanitizer and telemetry bus
    stay off); pass explicit instances (or the null twins) to share or
    suppress any part.
    """
    instrumentation = Instrumentation(
        tracer=tracer if tracer is not None else Tracer(),
        metrics=metrics if metrics is not None else MetricsRegistry(),
        sanitizer=sanitizer if sanitizer is not None else NULL_SANITIZER,
        telemetry=telemetry if telemetry is not None else NULL_TELEMETRY,
    )
    previous = current()
    install(instrumentation)
    try:
        yield instrumentation
    finally:
        install(previous)
