"""Stage-level latency breakdown of a saved trace.

``python -m repro inspect TRACE.jsonl`` loads the spans written by
``--trace`` and answers the first question anyone asks of a QCT: *where
did the time go?*  The report has three parts:

* a per-stage table (probe, lp, map, shuffle, reduce, ...) with span
  counts, total wall/simulated seconds and each stage's share of the
  total simulated QCT;
* per-query coverage — the fraction of each query's reported QCT that
  is covered by the union of its descendants' simulated intervals (the
  acceptance bar is ≥ 95%: if spans cover less, a phase is untraced);
* the experiment roots, so multi-scheme traces stay attributable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.span import Span
from repro.util.tabulate import format_table


def _children_index(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    index: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    return index


def _descendants(
    span: Span, index: Dict[Optional[int], List[Span]]
) -> List[Span]:
    out: List[Span] = []
    frontier = [span]
    while frontier:
        node = frontier.pop()
        for child in index.get(node.span_id, []):
            out.append(child)
            frontier.append(child)
    return out


def _union_length(intervals: List[Tuple[float, float]], horizon: float) -> float:
    """Total length of the union of intervals clipped to [0, horizon]."""
    clipped = sorted(
        (max(0.0, start), min(horizon, end))
        for start, end in intervals
        if min(horizon, end) > max(0.0, start)
    )
    covered = 0.0
    cursor = 0.0
    for start, end in clipped:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return covered


def query_coverage(spans: Sequence[Span]) -> List[Dict[str, float]]:
    """Per-query-span QCT coverage by descendant simulated intervals."""
    index = _children_index(spans)
    rows: List[Dict[str, float]] = []
    for span in spans:
        if span.stage != "query":
            continue
        qct = float(span.attrs.get("qct", span.sim_duration or 0.0))
        if qct <= 0:
            continue
        intervals = [
            (descendant.sim_start, descendant.sim_end)
            for descendant in _descendants(span, index)
            if descendant.is_simulated
        ]
        covered = _union_length(intervals, qct)
        rows.append(
            {
                "span_id": span.span_id,
                "qct": qct,
                "covered": covered,
                "coverage": covered / qct,
            }
        )
    return rows


def overall_coverage(spans: Sequence[Span]) -> float:
    """QCT-weighted mean coverage across all query spans (1.0 if none)."""
    rows = query_coverage(spans)
    total_qct = sum(row["qct"] for row in rows)
    if total_qct <= 0:
        return 1.0
    return sum(row["covered"] for row in rows) / total_qct


def _stage_active_seconds(spans: Sequence[Span]) -> Dict[str, float]:
    """Per stage, the summed union length of its simulated intervals
    inside each query's [0, qct] window — "how long was this stage
    active", immune to overlap inflation from concurrent spans."""
    index = _children_index(spans)
    active: Dict[str, float] = {}
    for query in spans:
        if query.stage != "query":
            continue
        qct = float(query.attrs.get("qct", query.sim_duration or 0.0))
        if qct <= 0:
            continue
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for span in [query] + _descendants(query, index):
            if span.is_simulated:
                intervals.setdefault(span.stage, []).append(
                    (span.sim_start, span.sim_end)
                )
        for stage, stage_intervals in intervals.items():
            active[stage] = active.get(stage, 0.0) + _union_length(
                stage_intervals, qct
            )
    return active


def stage_breakdown(spans: Sequence[Span]) -> List[List[object]]:
    """Rows: stage, span count, wall seconds, simulated seconds, % QCT.

    Wall/sim totals skip spans whose parent carries the same stage, so a
    wrapper span and its same-stage children are not double counted; the
    ``% QCT`` column is the stage's *active* share of the total QCT (the
    union of its intervals per query), so hundreds of concurrent shuffle
    spans cannot push it past 100.
    """
    stage_of: Dict[int, str] = {
        span.span_id: (span.stage or span.name) for span in spans
    }
    by_stage: Dict[str, List[Span]] = {}
    for span in spans:
        by_stage.setdefault(span.stage or span.name, []).append(span)
    total_qct = sum(row["qct"] for row in query_coverage(spans))
    active = _stage_active_seconds(spans)
    rows: List[List[object]] = []
    for stage in sorted(by_stage):
        members = by_stage[stage]
        top_level = [
            span
            for span in members
            if stage_of.get(span.parent_id) != (span.stage or span.name)
        ]
        wall = sum(span.wall_duration for span in top_level)
        sim = sum(span.sim_duration for span in top_level)
        durations = [span.duration for span in members]
        share = (
            100.0 * active.get(stage, 0.0) / total_qct if total_qct > 0 else 0.0
        )
        rows.append(
            [
                stage,
                len(members),
                f"{wall:.4f}",
                f"{sim:.4f}",
                f"{max(durations):.4f}" if durations else "0",
                f"{share:.1f}" if active.get(stage, 0.0) > 0 else "-",
            ]
        )
    rows.sort(key=lambda row: -float(row[3]))
    return rows


def render_inspection(spans: Sequence[Span], source: str = "trace") -> str:
    """The full ``inspect`` report for one loaded trace."""
    if not spans:
        return f"{source}: no spans"
    lines: List[str] = []
    experiments = [span for span in spans if span.stage == "experiment"]
    for experiment in experiments:
        label = ", ".join(
            f"{key}={value}" for key, value in sorted(experiment.attrs.items())
        )
        lines.append(f"experiment {experiment.name} ({label})")
    if experiments:
        lines.append("")
    lines.append(
        format_table(
            stage_breakdown(spans),
            headers=("stage", "spans", "wall s", "sim s", "max s", "% QCT"),
            title=f"per-stage latency breakdown ({len(spans)} spans)",
        )
    )
    rows = query_coverage(spans)
    if rows:
        lines.append("")
        worst = min(row["coverage"] for row in rows)
        lines.append(
            f"QCT span coverage: {100.0 * overall_coverage(spans):.1f}% "
            f"over {len(rows)} queries (worst query "
            f"{100.0 * worst:.1f}%)"
        )
    return "\n".join(lines)
