"""Trace export: JSONL (with round-trip loading) and Chrome trace events.

JSONL is the machine-readable archive format — one :class:`Span` dict per
line, loadable with :func:`load_jsonl` (the ``inspect`` command's input).

Chrome export targets the ``chrome://tracing`` / Perfetto trace-event
JSON format (``{"traceEvents": [...]}``, complete events with ``ph: "X"``
and microsecond timestamps).  The dual-clock span model maps onto two
trace *processes*: pid 1 renders wall-clock intervals, pid 2 renders
simulated-clock intervals, so both decompositions are visible side by
side without conflating their time bases.  Span nesting is expressed per
process through ``tid`` lanes (one lane per root span's subtree on the
wall process; one lane per site on the simulated process).
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ObservabilityError
from repro.obs.span import Span
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.schedule import FaultSchedule

_WALL_PID = 1
_SIM_PID = 2


def _spans_of(source: Union[Tracer, Sequence[Span]]) -> List[Span]:
    spans = source.spans if isinstance(source, Tracer) else list(source)
    return sorted(spans, key=lambda span: span.span_id)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def export_jsonl(source: Union[Tracer, Sequence[Span]], path: str) -> None:
    """Write one span per line, in span-id order."""
    with open(path, "w", encoding="utf-8") as handle:
        for span in _spans_of(source):
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")


def load_jsonl(path: str) -> List[Span]:
    """Load spans written by :func:`export_jsonl`."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObservabilityError(
                    f"{path}:{line_number}: invalid JSON ({error})"
                ) from None
            spans.append(Span.from_dict(record))
    return spans


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------


def _metadata_event(pid: int, tid: int, name: str, kind: str) -> Dict[str, Any]:
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _subtree_lanes(spans: Sequence[Span]) -> Dict[int, int]:
    """Assign each span the lane (tid) of its root ancestor."""
    parents = {span.span_id: span.parent_id for span in spans}
    lanes: Dict[int, int] = {}
    root_lane: Dict[int, int] = {}
    for span in spans:
        node = span.span_id
        while parents.get(node) is not None:
            node = parents[node]  # type: ignore[assignment]
        if node not in root_lane:
            root_lane[node] = len(root_lane) + 1
        lanes[span.span_id] = root_lane[node]
    return lanes


def _fault_trace_events(
    faults: "FaultSchedule", sim_lanes: Dict[str, int], events: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Chaos fault windows as trace events on the affected site's lane.

    Finite windows become ``"X"`` duration events, so a blackout renders
    as a bar overlapping the stage/transfer spans it disturbed; unbounded
    windows (permanent site outages) become ``"i"`` instant events at
    onset, since an infinite ``dur`` is not representable.
    """
    annotations: List[Dict[str, Any]] = []
    ordered = sorted(
        faults.events, key=lambda event: (event.start, event.site, event.kind)
    )
    for fault in ordered:
        site = fault.site
        if site not in sim_lanes:
            sim_lanes[site] = len(sim_lanes) + 1
            events.append(
                _metadata_event(_SIM_PID, sim_lanes[site], site, "thread_name")
            )
        base: Dict[str, Any] = {
            "name": f"fault:{fault.kind}",
            "cat": "fault",
            "pid": _SIM_PID,
            "tid": sim_lanes[site],
            "ts": fault.start * 1e6,
            "args": {"site": site, "severity": fault.severity},
        }
        if math.isinf(fault.end):
            annotations.append({**base, "ph": "i", "s": "t"})
        else:
            annotations.append(
                {**base, "ph": "X", "dur": max(fault.end - fault.start, 0.0) * 1e6}
            )
    return annotations


def chrome_trace_events(
    source: Union[Tracer, Sequence[Span]],
    faults: "Optional[FaultSchedule]" = None,
) -> List[Dict[str, Any]]:
    """All spans as Chrome trace-event dicts (metadata events first).

    ``faults`` annotates the simulated-clock process with the chaos
    schedule's windows so blackouts and stragglers render inline with
    the spans they disturbed.
    """
    spans = _spans_of(source)
    events: List[Dict[str, Any]] = [
        _metadata_event(_WALL_PID, 0, "wall-clock", "process_name"),
        _metadata_event(_SIM_PID, 0, "simulated-clock", "process_name"),
    ]
    lanes = _subtree_lanes(spans)

    sim_lanes: Dict[str, int] = {}
    for span in spans:
        if span.wall_end is not None:
            events.append(
                {
                    "name": span.name,
                    "cat": span.stage or "span",
                    "ph": "X",
                    "pid": _WALL_PID,
                    "tid": lanes[span.span_id],
                    "ts": span.wall_start * 1e6,
                    "dur": max(span.wall_duration, 0.0) * 1e6,
                    "args": {"span_id": span.span_id, **span.attrs},
                }
            )
        if span.is_simulated:
            site = str(span.attrs.get("site", "global"))
            if site not in sim_lanes:
                sim_lanes[site] = len(sim_lanes) + 1
                events.append(
                    _metadata_event(
                        _SIM_PID, sim_lanes[site], site, "thread_name"
                    )
                )
            events.append(
                {
                    "name": span.name,
                    "cat": span.stage or "span",
                    "ph": "X",
                    "pid": _SIM_PID,
                    "tid": sim_lanes[site],
                    "ts": (span.sim_start or 0.0) * 1e6,
                    "dur": span.sim_duration * 1e6,
                    "args": {"span_id": span.span_id, **span.attrs},
                }
            )
    if faults is not None:
        events.extend(_fault_trace_events(faults, sim_lanes, events))
    return events


def export_chrome(
    source: Union[Tracer, Sequence[Span]],
    path: str,
    faults: "Optional[FaultSchedule]" = None,
) -> None:
    """Write the Chrome ``chrome://tracing`` JSON object format."""
    document = {
        "traceEvents": chrome_trace_events(source, faults=faults),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")


def validate_chrome_events(events: Iterable[Dict[str, Any]]) -> None:
    """Cheap structural validation of trace events (used by tests/CI)."""
    for event in events:
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                raise ObservabilityError(
                    f"trace event missing {field!r}: {event}"
                )
        if event["ph"] == "X":
            if "ts" not in event or "dur" not in event:
                raise ObservabilityError(
                    f"complete event missing ts/dur: {event}"
                )
            if event["dur"] < 0:
                raise ObservabilityError(f"negative duration: {event}")
        if event["ph"] == "i" and "ts" not in event:
            raise ObservabilityError(f"instant event missing ts: {event}")
