"""The two-clock profiler: QCT breakdown + wall-clock hotspots.

**Simulation clock** — :func:`qct_breakdown` answers "what share of the
query completion time went to each stage" from the span tree alone, so
it works identically on a live tracer and on a saved ``--trace`` JSONL
file (``repro inspect --breakdown``).  Every instant of a query's
``[0, qct]`` window is attributed to exactly *one* stage by a
downstream-wins sweep: where phases overlap (map at a straggler site
while shuffles are already in flight), the most-downstream active stage
claims the instant, because upstream work off the critical path cannot
delay completion once a later phase is running.  Instants covered by no
simulated span are ``unattributed``.  Shares therefore sum to exactly
100% of the total QCT by construction.

The breakdown always reports the paper's six canonical stages — map,
combine, shuffle-WAN, reduce, LP-solve, probe-check — plus any other
sim stages found.  Two caveats are visible rather than hidden: the
engine's cost model folds combining into map compute (combine's QCT
share is structurally 0%; its effect shows as bytes removed), and
LP-solve/probe-check run on the *wall* clock in the offline lag window,
outside QCT — their wall costs are reported alongside.

**Wall clock** — :class:`WallProfiler` wraps :mod:`cProfile` and
renders a hotspot table plus a collapsed-stack text export (Brendan
Gregg's ``folded`` format: ``frame;frame;frame count``), renderable as
a flamegraph with ``flamegraph.pl`` or speedscope.  Stacks are
reconstructed from the profile's caller graph with cumulative time
apportioned down call edges (the ``flameprof`` approach), since cProfile
records edges, not full stacks.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.span import Span
from repro.util.tabulate import format_table

#: Canonical display order; also the attribution precedence (later =
#: more downstream = wins overlapping instants).
STAGE_ORDER = ("map", "combine", "shuffle-wan", "reduce")

#: Raw trace stage -> canonical stage name.
_STAGE_ALIASES = {
    "shuffle": "shuffle-wan",
    "wan": "shuffle-wan",
    "placement": "lp-solve",
    "probe": "probe-check",
}

#: Offline-prep stages (wall clock, outside QCT), display order.
_OFFLINE_STAGES = ("cube", "probe-check", "lp-solve", "movement")

UNATTRIBUTED = "unattributed"


def canonical_stage(stage: str) -> str:
    return _STAGE_ALIASES.get(stage, stage)


@dataclass
class QueryBreakdown:
    """One query span's attributed [0, qct] window."""

    span_id: int
    name: str
    scheme: str
    qct: float
    #: stage -> attributed simulated seconds (includes UNATTRIBUTED).
    seconds: Dict[str, float] = field(default_factory=dict)

    def percentages(self) -> Dict[str, float]:
        if self.qct <= 0:
            return {stage: 0.0 for stage in self.seconds}
        return {
            stage: 100.0 * value / self.qct
            for stage, value in self.seconds.items()
        }


@dataclass
class QctBreakdown:
    """The full sim-clock attribution for one trace."""

    queries: List[QueryBreakdown] = field(default_factory=list)
    #: site -> stage -> active seconds inside query windows.
    per_site: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: offline stage -> top-level wall seconds (outside QCT).
    offline_wall: Dict[str, float] = field(default_factory=dict)
    #: bytes the combiner removed (map_output - intermediate), summed.
    combine_saved_bytes: float = 0.0

    @property
    def total_qct(self) -> float:
        return sum(query.qct for query in self.queries)

    def stage_seconds(self) -> Dict[str, float]:
        """Attributed seconds per stage, summed over queries."""
        totals: Dict[str, float] = {}
        for query in self.queries:
            for stage, value in query.seconds.items():
                totals[stage] = totals.get(stage, 0.0) + value
        return totals

    def stage_percentages(self) -> Dict[str, float]:
        """Share of total QCT per stage; sums to 100 by construction."""
        total = self.total_qct
        if total <= 0:
            return {}
        return {
            stage: 100.0 * value / total
            for stage, value in self.stage_seconds().items()
        }


def _stage_precedence(stage: str) -> int:
    try:
        return STAGE_ORDER.index(stage)
    except ValueError:
        return -1  # unknown sim stages lose ties against canonical ones


def _attribute_window(
    intervals: Sequence[Tuple[str, float, float]], horizon: float
) -> Dict[str, float]:
    """Partition [0, horizon] among stages, downstream-wins.

    ``intervals`` are (stage, start, end) on the simulated clock; the
    result maps every stage (plus UNATTRIBUTED) to seconds such that the
    values sum to ``horizon`` exactly (modulo float addition).
    """
    clipped = [
        (stage, max(0.0, start), min(horizon, end))
        for stage, start, end in intervals
        if min(horizon, end) > max(0.0, start)
    ]
    boundaries = sorted(
        {0.0, horizon}
        | {start for _, start, _ in clipped}
        | {end for _, _, end in clipped}
    )
    attributed: Dict[str, float] = {}
    for left, right in zip(boundaries, boundaries[1:]):
        if right <= left:
            continue
        midpoint = 0.5 * (left + right)
        winner: Optional[str] = None
        rank = -2
        for stage, start, end in clipped:
            if start <= midpoint < end:
                stage_rank = _stage_precedence(stage)
                if stage_rank > rank or (
                    stage_rank == rank and winner is not None and stage < winner
                ):
                    winner, rank = stage, stage_rank
        key = winner if winner is not None else UNATTRIBUTED
        attributed[key] = attributed.get(key, 0.0) + (right - left)
    return attributed


def _children_index(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    index: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    return index


def _descendants(
    span: Span, index: Dict[Optional[int], List[Span]]
) -> List[Span]:
    out: List[Span] = []
    frontier = [span]
    while frontier:
        node = frontier.pop()
        for child in index.get(node.span_id, []):
            out.append(child)
            frontier.append(child)
    return out


def qct_breakdown(spans: Sequence[Span]) -> QctBreakdown:
    """Attribute every query's QCT across stages; see module docstring."""
    index = _children_index(spans)
    breakdown = QctBreakdown()
    stage_of: Dict[int, str] = {
        span.span_id: canonical_stage(span.stage or span.name)
        for span in spans
    }
    for span in spans:
        stage = stage_of[span.span_id]
        if stage == "query":
            qct = float(span.attrs.get("qct", span.sim_duration or 0.0))
            query = QueryBreakdown(
                span_id=span.span_id,
                name=span.name,
                scheme=str(span.attrs.get("scheme", "")),
                qct=qct,
            )
            if qct > 0:
                intervals = []
                for descendant in _descendants(span, index):
                    if not descendant.is_simulated:
                        continue
                    descendant_stage = stage_of[descendant.span_id]
                    if descendant_stage == "query":
                        continue
                    intervals.append(
                        (
                            descendant_stage,
                            float(descendant.sim_start),
                            float(descendant.sim_end),
                        )
                    )
                    site = descendant.attrs.get("site")
                    if site is not None:
                        site_stages = breakdown.per_site.setdefault(
                            str(site), {}
                        )
                        length = min(qct, descendant.sim_end) - max(
                            0.0, descendant.sim_start
                        )
                        if length > 0:
                            site_stages[descendant_stage] = (
                                site_stages.get(descendant_stage, 0.0) + length
                            )
                query.seconds = _attribute_window(intervals, qct)
            breakdown.queries.append(query)
        elif stage in _OFFLINE_STAGES:
            # Top-level wall cost only: skip children sharing the stage.
            parent_stage = stage_of.get(span.parent_id)  # type: ignore[arg-type]
            if parent_stage != stage:
                breakdown.offline_wall[stage] = (
                    breakdown.offline_wall.get(stage, 0.0)
                    + span.wall_duration
                )
        if stage == "map":
            produced = float(span.attrs.get("map_output_bytes", 0.0))
            kept = float(span.attrs.get("intermediate_bytes", 0.0))
            if produced > kept:
                breakdown.combine_saved_bytes += produced - kept
    return breakdown


def render_breakdown(breakdown: QctBreakdown) -> str:
    """The ``--breakdown`` / ``--profile`` report text."""
    if not breakdown.queries:
        return "no query spans in trace — nothing to attribute"
    lines: List[str] = []
    totals = breakdown.stage_seconds()
    percentages = breakdown.stage_percentages()
    stages = list(STAGE_ORDER)
    for stage in sorted(totals):
        if stage not in stages and stage != UNATTRIBUTED:
            stages.append(stage)
    if UNATTRIBUTED in totals:
        stages.append(UNATTRIBUTED)
    rows = []
    for stage in stages:
        seconds = totals.get(stage, 0.0)
        note = ""
        if stage == "combine":
            note = (
                f"folded into map; saved "
                f"{breakdown.combine_saved_bytes / 1e6:.1f} MB"
                if breakdown.combine_saved_bytes
                else "folded into map compute"
            )
        rows.append(
            [stage, f"{seconds:.4f}", f"{percentages.get(stage, 0.0):.2f}",
             note]
        )
    lines.append(
        format_table(
            rows,
            headers=("stage", "sim s", "% QCT", "note"),
            title=(
                f"QCT breakdown: {len(breakdown.queries)} queries, "
                f"total QCT {breakdown.total_qct:.4f}s "
                "(downstream-wins attribution)"
            ),
        )
    )
    if breakdown.per_site:
        lines.append("")
        site_rows = []
        for site in sorted(breakdown.per_site):
            site_stages = breakdown.per_site[site]
            site_rows.append(
                [site]
                + [f"{site_stages.get(stage, 0.0):.4f}"
                   for stage in ("map", "shuffle-wan", "reduce")]
            )
        lines.append(
            format_table(
                site_rows,
                headers=("site", "map s", "shuffle s", "reduce s"),
                title="per-site active seconds inside query windows",
            )
        )
    if breakdown.offline_wall:
        lines.append("")
        offline_rows = [
            [stage, f"{breakdown.offline_wall[stage]:.4f}"]
            for stage in _OFFLINE_STAGES
            if stage in breakdown.offline_wall
        ]
        lines.append(
            format_table(
                offline_rows,
                headers=("offline stage", "wall s"),
                title="offline preparation (lag window, outside QCT)",
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# wall-clock hotspot profiler
# ----------------------------------------------------------------------

_FuncKey = Tuple[str, int, str]


def _frame_label(func: _FuncKey) -> str:
    filename, lineno, name = func
    if filename == "~":
        return name.strip("<>")
    return f"{PurePath(filename).name}:{name}"


class WallProfiler:
    """Opt-in cProfile wrapper behind ``--profile``.

    ``start``/``stop`` bracket the region; afterwards the profile can be
    rendered as a top-N hotspot table or exported as collapsed stacks.
    """

    def __init__(self) -> None:
        self._profile = cProfile.Profile()
        self._running = False
        self._stats: Optional[Dict] = None

    def start(self) -> None:
        if self._running:
            raise ObservabilityError("profiler already running")
        self._running = True
        self._profile.enable()

    def stop(self) -> None:
        if not self._running:
            raise ObservabilityError("profiler is not running")
        self._profile.disable()
        self._running = False

    def __enter__(self) -> "WallProfiler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _raw_stats(self) -> Dict:
        if self._running:
            raise ObservabilityError("stop() the profiler before reading it")
        if self._stats is None:
            self._stats = pstats.Stats(self._profile).stats  # type: ignore[attr-defined]
        return self._stats

    def hotspots(self, limit: int = 15) -> List[List[object]]:
        """Top functions by cumulative time: [calls, self s, cum s, where]."""
        rows = []
        for func, (cc, nc, tt, ct, _callers) in self._raw_stats().items():
            rows.append([nc, tt, ct, _frame_label(func)])
        rows.sort(key=lambda row: (-row[2], row[3]))
        return [
            [row[0], f"{row[1]:.4f}", f"{row[2]:.4f}", row[3]]
            for row in rows[:limit]
        ]

    def render_hotspots(self, limit: int = 15) -> str:
        return format_table(
            self.hotspots(limit),
            headers=("calls", "self s", "cum s", "function"),
            title=f"wall-clock hotspots (top {limit} by cumulative time)",
        )

    def collapsed_stacks(
        self,
        min_microseconds: int = 50,
        max_depth: int = 48,
        max_frames: int = 200_000,
    ) -> List[str]:
        """Folded flamegraph lines reconstructed from the caller graph.

        cProfile keeps per-edge cumulative/self times, not whole stacks;
        each function's self time is apportioned to caller paths in
        proportion to the cumulative time flowing down each incoming
        edge (cycles are cut by skipping frames already on the path).
        """
        stats = self._raw_stats()
        #: func -> list of (child, edge_ct, edge_tt) call edges.
        children: Dict[_FuncKey, List[Tuple[_FuncKey, float, float]]] = {}
        roots: List[_FuncKey] = []
        for func, (cc, nc, tt, ct, callers) in stats.items():
            if not callers:
                roots.append(func)
            for caller, caller_stats in callers.items():
                edge_ct = caller_stats[3]
                edge_tt = caller_stats[2]
                children.setdefault(caller, []).append((func, edge_ct, edge_tt))
        lines: Dict[str, int] = {}
        budget = [max_frames]  # wide call DAGs multiply paths; cap the walk

        def emit(path: Tuple[str, ...], microseconds: float) -> None:
            count = int(round(microseconds))
            if count >= min_microseconds:
                key = ";".join(path)
                lines[key] = lines.get(key, 0) + count

        def walk(
            func: _FuncKey,
            path: Tuple[str, ...],
            on_path: frozenset,
            scale: float,
        ) -> None:
            if budget[0] <= 0:
                return
            budget[0] -= 1
            label = _frame_label(func)
            here = path + (label,)
            cc, nc, tt, ct, _callers = stats[func]
            emit(here, tt * scale * 1e6)
            if len(here) >= max_depth:
                return
            for child, edge_ct, _edge_tt in sorted(
                children.get(func, []), key=lambda item: _frame_label(item[0])
            ):
                if child in on_path:
                    continue
                child_total_ct = stats[child][3]
                if child_total_ct <= 0 or edge_ct <= 0:
                    continue
                # Prune paths whose whole subtree is below the emission
                # threshold: the scaled time flowing down this edge bounds
                # everything beneath it.
                if edge_ct * scale * 1e6 < min_microseconds:
                    continue
                walk(
                    child,
                    here,
                    on_path | {child},
                    scale * (edge_ct / child_total_ct),
                )

        for root in sorted(roots, key=_frame_label):
            walk(root, (), frozenset({root}), 1.0)
        return [
            f"{stack} {count}" for stack, count in sorted(lines.items())
        ]

    def write_collapsed(self, path: str) -> int:
        """Write the folded-stack file; returns the number of lines."""
        stack_lines = self.collapsed_stacks()
        with open(path, "w", encoding="utf-8") as handle:
            for line in stack_lines:
                handle.write(line)
                handle.write("\n")
        return len(stack_lines)
