"""Streaming runtime telemetry: a typed event bus the hot paths publish into.

PR 1's tracer and metrics observe the system *after* it ran (spans close,
counters dump).  The telemetry bus observes it *while* it runs: the WAN
simulator, the engine, the chaos runtime, and the controller publish
small typed events as simulation advances, and consumers — the JSONL
archive (``--telemetry FILE``), the ``repro report`` dashboard, the
``repro top`` live view — either subscribe to the stream or replay the
archive.

Like the instrument slot's other members, the bus has a no-op twin
(:data:`NULL_TELEMETRY`): a disabled call site costs one attribute lookup
and a truthiness check, so the telemetry-off hot path is unchanged.

Event model (schema v3, specified in DESIGN.md; v2 = v1 plus the
serving-layer kinds, v3 = v2 plus the explicit queue/slot wait kinds and
the SLO tracker's ``slo-*`` kinds — old archives load unchanged):

* ``seq`` — monotonically increasing per bus, fixing a total order;
* ``t`` — simulated-clock seconds the event describes, or ``None`` for
  offline/wall-side events (plans, task-map builds);
* ``kind`` — one of :data:`EVENT_KINDS`; unknown kinds are rejected so a
  typo'd emitter fails loudly in tests rather than silently dropping a
  dashboard panel;
* ``attrs`` — flat JSON scalars (numbers, strings, bools, ``None``).

The JSONL archive starts with one header line carrying the schema
version; :func:`load_jsonl` refuses future-versioned files rather than
misreading them.  Two same-seed runs produce byte-identical archives
(checked by ``repro lint --determinism``) because every emitter iterates
deterministically ordered structures and wall-measured attributes are
kept out of the digest (:func:`telemetry_digest`).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

#: Schema version written into the JSONL header line.
TELEMETRY_VERSION = 3

#: Archive versions :func:`load_jsonl` still understands.  Each version
#: is a strict superset of the previous one (kinds were added, nothing
#: was renamed or removed), so old archives stay loadable forever.
SUPPORTED_VERSIONS = frozenset({1, 2, 3})

#: Every event kind the v1 schema admitted, grouped by emitting layer.
V1_EVENT_KINDS = frozenset(
    {
        # wan/transfer.py — flow lifecycle and link occupancy
        "flow-start",
        "flow-park",
        "flow-finish",
        "flow-fail",
        "link-sample",
        "capacity-epoch",
        "flows-sample",
        # wan/estimator.py — bandwidth-estimate drift
        "estimator-sample",
        # engine/job.py + engine/shuffle.py — stage/task lifecycle
        "stage-start",
        "stage-finish",
        "shuffle-plan",
        "task-wave",
        "reduce-tasks",
        "job-finish",
        # chaos/runtime.py — fault windows and recovery churn
        "fault-window",
        "retry",
        "abandon",
        # core/controller.py + core/dynamic.py — planning and queries
        "plan",
        "degraded-replan",
        "replan",
        "batch-applied",
        "query-start",
        "query-finish",
        "query-abort",
    }
)

#: Kinds added by schema v2: the serving layer's query lifecycle and the
#: cube-cache's hit/miss/eviction stream (repro/serve/*).
SERVE_EVENT_KINDS = frozenset(
    {
        "serve-queue",
        "serve-shed",
        "serve-admit",
        "serve-start",
        "serve-finish",
        "cache-hit",
        "cache-miss",
        "cache-evict",
    }
)

#: Kinds added by schema v3: explicit admission-wait markers from the
#: serve scheduler (``queue-enter``/``slot-wait``), the dynamic-feed
#: batch marker (``serve-batch``, emitted since the feeds landed but
#: only now part of the closed set), and the SLO tracker's per-sample /
#: rolling-window / final-status / blame-attribution stream
#: (repro/obs/slo.py + repro/obs/critpath.py).
V3_EVENT_KINDS = frozenset(
    {
        "queue-enter",
        "slot-wait",
        "serve-batch",
        "slo-sample",
        "slo-window",
        "slo-status",
        "slo-blame",
    }
)

#: The full closed kind set of the current schema version.
EVENT_KINDS = V1_EVENT_KINDS | SERVE_EVENT_KINDS | V3_EVENT_KINDS

#: Attribute keys carrying wall-measured values (excluded from digests;
#: keys ending in ``wall_seconds`` are excluded by suffix as well).
WALL_ATTRS = frozenset({"rdd_overhead_seconds", "overhead_seconds"})

_Scalar = Union[str, int, float, bool, None]

#: Hoisted for the ``emit`` hot path (saves a module-attribute lookup).
_isfinite = math.isfinite


@dataclass(frozen=True)
class TelemetryEvent:
    """One typed event on the stream."""

    seq: int
    kind: str
    t: Optional[float] = None
    attrs: Dict[str, _Scalar] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ObservabilityError(
                f"unknown telemetry event kind {self.kind!r}; "
                f"schema v{TELEMETRY_VERSION} kinds: {sorted(EVENT_KINDS)}"
            )
        if self.t is not None and (math.isnan(self.t) or math.isinf(self.t)):
            raise ObservabilityError(
                f"telemetry event {self.kind!r}: t must be finite, got {self.t}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (one JSONL line)."""
        record: Dict[str, Any] = {"seq": self.seq, "kind": self.kind, "t": self.t}
        if self.attrs:
            record["attrs"] = {key: self.attrs[key] for key in sorted(self.attrs)}
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TelemetryEvent":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                seq=int(record["seq"]),
                kind=str(record["kind"]),
                t=None if record.get("t") is None else float(record["t"]),
                attrs=dict(record.get("attrs", {})),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ObservabilityError(
                f"malformed telemetry event: {error}"
            ) from None


#: A subscriber gets every event as it is emitted (the ``repro top`` hook).
Subscriber = Callable[[TelemetryEvent], None]


class TelemetryBus:
    """Collects (and optionally streams) telemetry events for one run.

    ``emit`` is the hot path — it runs once per simulator round sample —
    so it validates and appends into three parallel columns (kind, t,
    attrs; ``seq`` is the column index) and defers
    :class:`TelemetryEvent` construction until a consumer reads
    :attr:`events` (or a live subscriber is attached, which forces
    per-emit materialization).  Columnar storage also keeps the
    per-event allocation count down, which matters: at tens of
    thousands of events the GC churn from per-event container objects
    is a measurable slice of the telemetry overhead budget.
    """

    enabled = True

    def __init__(self) -> None:
        self._kinds: List[str] = []
        self._ts: List[Optional[float]] = []
        self._attr_rows: List[Dict[str, _Scalar]] = []
        self._materialized: List[TelemetryEvent] = []
        self._subscribers: List[Subscriber] = []

    @property
    def events(self) -> List[TelemetryEvent]:
        """Materialized event list (lazily extended; same objects returned)."""
        kinds = self._kinds
        events = self._materialized
        while len(events) < len(kinds):
            index = len(events)
            events.append(
                TelemetryEvent(
                    seq=index,
                    kind=kinds[index],
                    t=self._ts[index],
                    attrs=self._attr_rows[index],
                )
            )
        return events

    def emit(
        self, kind: str, t: Optional[float] = None, **attrs: _Scalar
    ) -> Optional[TelemetryEvent]:
        """Append one event and fan it out to subscribers."""
        if kind not in EVENT_KINDS:
            raise ObservabilityError(
                f"unknown telemetry event kind {kind!r}; "
                f"schema v{TELEMETRY_VERSION} kinds: {sorted(EVENT_KINDS)}"
            )
        if t is not None and not _isfinite(t):
            raise ObservabilityError(
                f"telemetry event {kind!r}: t must be finite, got {t}"
            )
        self._kinds.append(kind)
        self._ts.append(t)
        self._attr_rows.append(attrs)
        if self._subscribers:
            event = self.events[-1]
            for subscriber in self._subscribers:
                subscriber(event)
            return event
        return None

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a live consumer; called synchronously on every emit."""
        self._subscribers.append(subscriber)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for kind in self._kinds:
            counts[kind] = counts.get(kind, 0) + 1
        return counts


class NullTelemetryBus:
    """Bus twin whose every operation is a cheap no-op."""

    enabled = False

    @property
    def events(self) -> List[TelemetryEvent]:
        # Always empty, and fresh per read: a shared class-level list
        # would let one stray append contaminate every null bus (R010).
        return []

    def emit(self, kind: str, t: Optional[float] = None, **attrs: Any) -> None:
        return None

    def subscribe(self, subscriber: Subscriber) -> None:
        return None

    def counts_by_kind(self) -> Dict[str, int]:
        return {}


NULL_TELEMETRY = NullTelemetryBus()


# ----------------------------------------------------------------------
# JSONL archive
# ----------------------------------------------------------------------


def _events_of(
    source: Union[TelemetryBus, Sequence[TelemetryEvent]]
) -> List[TelemetryEvent]:
    events = source.events if isinstance(source, TelemetryBus) else list(source)
    return sorted(events, key=lambda event: event.seq)


def write_jsonl(
    source: Union[TelemetryBus, Sequence[TelemetryEvent]], path: str
) -> int:
    """Write the versioned JSONL archive; returns the event count."""
    events = _events_of(source)
    with open(path, "w", encoding="utf-8") as handle:
        header = {
            "telemetry": "repro.obs.telemetry",
            "version": TELEMETRY_VERSION,
            "events": len(events),
        }
        handle.write(json.dumps(header, sort_keys=True))
        handle.write("\n")
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return len(events)


def load_jsonl(path: str) -> Tuple[Dict[str, Any], List[TelemetryEvent]]:
    """Load ``(header, events)`` from an archive written by :func:`write_jsonl`."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line.strip() for line in handle if line.strip()]
    if not lines:
        raise ObservabilityError(f"{path}: empty telemetry file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ObservabilityError(f"{path}:1: invalid JSON ({error})") from None
    if not isinstance(header, dict) or header.get("telemetry") != "repro.obs.telemetry":
        raise ObservabilityError(
            f"{path}: missing telemetry header line (is this a span trace?)"
        )
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(f"v{v}" for v in sorted(SUPPORTED_VERSIONS))
        raise ObservabilityError(
            f"{path}: telemetry schema v{version} is not supported "
            f"(supported: {supported})"
        )
    events: List[TelemetryEvent] = []
    for line_number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{path}:{line_number}: invalid JSON ({error})"
            ) from None
        events.append(TelemetryEvent.from_dict(record))
    return header, events


# ----------------------------------------------------------------------
# determinism digest
# ----------------------------------------------------------------------

#: Significant digits kept when digesting floats (guards repr formatting
#: only; identical computations produce bit-identical floats).
_FLOAT_DIGITS = 12


def _canonical(value: Any) -> Any:
    if isinstance(value, float):
        return f"{value:.{_FLOAT_DIGITS}e}"
    return value


def _is_wall_attr(key: str) -> bool:
    return key in WALL_ATTRS or key.endswith("wall_seconds")


def telemetry_digest(
    source: Union[TelemetryBus, Sequence[TelemetryEvent]]
) -> str:
    """SHA-256 over the sim-relevant content of an event stream, in order.

    Wall-measured attributes (:data:`WALL_ATTRS` plus any key ending in
    ``wall_seconds``) legitimately differ between same-seed runs and are
    excluded; everything else must be byte-identical.
    """
    payload: List[Any] = []
    for event in _events_of(source):
        attrs = {
            key: _canonical(value)
            for key, value in sorted(event.attrs.items())
            if not _is_wall_attr(key)
        }
        payload.append(
            [event.kind, _canonical(event.t) if event.t is not None else None, attrs]
        )
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def iter_kind(
    events: Iterable[TelemetryEvent], *kinds: str
) -> List[TelemetryEvent]:
    """Events of the given kinds, preserving stream order."""
    wanted = set(kinds)
    unknown = wanted - EVENT_KINDS
    if unknown:
        raise ObservabilityError(f"unknown telemetry kinds {sorted(unknown)}")
    return [event for event in events if event.kind in wanted]
