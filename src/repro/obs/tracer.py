"""Hierarchical tracer with a no-op twin for uninstrumented runs.

Usage::

    tracer = Tracer()
    with tracer.span("experiment", scheme="bohr"):
        with tracer.span("query", stage="query") as q:
            tracer.record("map@tokyo", stage="map", sim_start=0.0, sim_end=1.2)

``span`` opens a wall-clock interval and pushes the span onto the parent
stack, so spans opened inside nest under it.  ``record`` appends an
already-finished interval (typically on the simulated clock, read off the
engine/WAN simulator) under the currently open span without affecting the
stack.

:data:`NULL_TRACER` is a :class:`NullTracer` — every operation is a no-op
returning a shared dummy, so instrumented call sites cost a few attribute
lookups when tracing is disabled (the "< 3% overhead off" budget).
"""

from __future__ import annotations

import time
from typing import Any, List, Optional

from repro.errors import ObservabilityError
from repro.obs.span import Span


class _OpenSpan:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._finish(self.span)


class Tracer:
    """Collects a tree of :class:`Span` objects for one run."""

    enabled = True

    def __init__(self) -> None:
        # Wall-clock by design: the tracer's wall half of the dual clock.
        self.epoch = time.perf_counter()  # lint: allow[R001]
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self.epoch  # lint: allow[R001]

    def _allocate(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------

    def span(self, name: str, stage: str = "", **attrs: Any) -> _OpenSpan:
        """Open a wall-clock span nested under the current one."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._allocate(),
            name=name,
            stage=stage or name,
            parent_id=parent.span_id if parent else None,
            wall_start=self._now(),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._stack.append(span)
        return _OpenSpan(self, span)

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} closed out of order; "
                f"open stack: {[open_.name for open_ in self._stack]}"
            )
        self._stack.pop()
        span.wall_end = self._now()

    def record(
        self,
        name: str,
        stage: str = "",
        sim_start: Optional[float] = None,
        sim_end: Optional[float] = None,
        wall_seconds: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Append an already-finished span under the current parent.

        Used for intervals known only after the fact: simulated-clock
        phases read off the engine (``sim_start``/``sim_end``) or
        externally timed wall work (``wall_seconds``).
        """
        parent = self._stack[-1] if self._stack else None
        now = self._now()
        span = Span(
            span_id=self._allocate(),
            name=name,
            stage=stage or name,
            parent_id=parent.span_id if parent else None,
            wall_start=now - (wall_seconds or 0.0),
            wall_end=now,
            sim_start=sim_start,
            sim_end=sim_end,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def roots(self) -> List[Span]:
        return self.children_of(None)

    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]


class _NullOpenSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_OPEN_SPAN = _NullOpenSpan()


class NullTracer:
    """Tracer twin whose every operation is a cheap no-op."""

    enabled = False

    @property
    def spans(self) -> List[Span]:
        # Always empty, and fresh per read: a shared class-level list
        # would let one stray append contaminate every null tracer (R010).
        return []

    def span(self, name: str, stage: str = "", **attrs: Any) -> _NullOpenSpan:
        return _NULL_OPEN_SPAN

    def record(self, name: str, stage: str = "", **kwargs: Any) -> None:
        return None

    @property
    def current_span(self) -> None:
        return None

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        return []

    def roots(self) -> List[Span]:
        return []

    def find(self, name: str) -> List[Span]:
        return []


NULL_TRACER = NullTracer()
