"""``repro top``: a live terminal view over the telemetry bus.

Long ``run_dynamic`` sweeps are opaque while they run; this subscribes to
the in-process :class:`~repro.obs.telemetry.TelemetryBus` and repaints a
compact status block as events stream in — sim clock, query/replan
counts, per-link utilization snapshot, flow occupancy, delivered bytes.

The view is deliberately simple terminal I/O: ANSI cursor movement when
the stream is a TTY, plain periodic snapshots otherwise (so piping to a
file still yields a readable progress log).  This module is one of the
few allowed to ``print()`` (see lint rule R008) because writing to the
terminal *is* its job.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, TextIO, Tuple

from repro.obs.telemetry import TelemetryBus, TelemetryEvent

#: Event kinds that force an immediate repaint regardless of cadence.
_REPAINT_KINDS = frozenset(
    {"query-finish", "query-abort", "replan", "degraded-replan",
     "batch-applied", "slo-status"}
)


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:7.1f} {unit}"
        value /= 1024.0
    return f"{value:7.1f} TB"


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(min(1.0, max(0.0, fraction)) * width))
    return "█" * filled + "·" * (width - filled)


class TelemetryTop:
    """Incremental reducer over the event stream plus a screen painter.

    Attach to a live bus with :meth:`attach`; every ``refresh_events``
    events (or any lifecycle event) the status block repaints.  All state
    updates are O(1) per event so the view never becomes the bottleneck
    it is meant to watch.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        refresh_events: int = 500,
        max_links: int = 8,
    ) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.refresh_events = max(1, refresh_events)
        self.max_links = max_links
        self.sim_now = 0.0
        self.events_seen = 0
        self.queries_finished = 0
        self.queries_aborted = 0
        self.replans = 0
        self.batches = 0
        self.retries = 0
        self.abandons = 0
        self.delivered_bytes = 0.0
        self.active_flows = 0
        self.parked_flows = 0
        self.last_qct: Optional[float] = None
        #: Latest utilization sample per (site, direction).
        self.link_state: Dict[Tuple[str, str], float] = {}
        # SLO / blame columns (schema v3 streams; stay hidden until the
        # first slo-* event arrives).
        self.slo_ok = 0
        self.slo_violations = 0
        self.worst_burn = 0.0
        self.worst_burn_tenant = ""
        #: Contention seconds attributed per culprit tenant (slo-blame).
        self.blame_seconds: Dict[str, float] = {}
        self._since_paint = 0
        self._painted_lines = 0

    # -- event folding --------------------------------------------------

    def attach(self, bus: TelemetryBus) -> None:
        bus.subscribe(self.on_event)

    def on_event(self, event: TelemetryEvent) -> None:
        self.events_seen += 1
        if event.t is not None and event.t > self.sim_now:
            self.sim_now = event.t
        kind = event.kind
        if kind == "link-sample":
            capacity = float(event.attrs["capacity_bps"])
            used = float(event.attrs["used_bps"])
            key = (str(event.attrs["site"]), str(event.attrs["direction"]))
            self.link_state[key] = used / capacity if capacity > 0 else 0.0
        elif kind == "flows-sample":
            self.active_flows = int(event.attrs["active"])
            self.parked_flows = int(event.attrs["parked"])
        elif kind == "flow-finish":
            if event.attrs.get("wan"):
                self.delivered_bytes += float(event.attrs["num_bytes"])
        elif kind == "query-finish":
            self.queries_finished += 1
            self.last_qct = float(event.attrs["qct"])
        elif kind == "query-abort":
            self.queries_aborted += 1
        elif kind in ("replan", "plan", "degraded-replan"):
            self.replans += 1
        elif kind == "batch-applied":
            self.batches += 1
        elif kind == "retry":
            self.retries += 1
        elif kind == "abandon":
            self.abandons += 1
        elif kind == "slo-sample":
            if event.attrs.get("ok"):
                self.slo_ok += 1
            else:
                self.slo_violations += 1
        elif kind == "slo-window":
            burn = float(event.attrs.get("burn_rate", 0.0))
            if burn > self.worst_burn:
                self.worst_burn = burn
                self.worst_burn_tenant = str(event.attrs.get("tenant", ""))
        elif kind == "slo-blame":
            culprit = str(event.attrs.get("culprit", ""))
            seconds = float(event.attrs.get("seconds", 0.0))
            self.blame_seconds[culprit] = (
                self.blame_seconds.get(culprit, 0.0) + seconds
            )
        self._since_paint += 1
        if self._since_paint >= self.refresh_events or kind in _REPAINT_KINDS:
            self.paint()

    # -- painting -------------------------------------------------------

    def render_lines(self) -> List[str]:
        lines = [
            (
                f"sim {self.sim_now:10.3f}s  events {self.events_seen:>7}  "
                f"queries {self.queries_finished}"
                + (f" (+{self.queries_aborted} aborted)" if self.queries_aborted else "")
                + (f"  last qct {self.last_qct:.3f}s" if self.last_qct is not None else "")
            ),
            (
                f"plans {self.replans}  batches {self.batches}  "
                f"retries {self.retries}  abandoned {self.abandons}  "
                f"flows {self.active_flows} active / {self.parked_flows} parked  "
                f"delivered {_fmt_bytes(self.delivered_bytes).strip()}"
            ),
        ]
        if self.slo_ok or self.slo_violations or self.blame_seconds:
            slo_column = f"slo {self.slo_ok} ok / {self.slo_violations} viol"
            if self.worst_burn_tenant:
                slo_column += (
                    f"  worst burn {self.worst_burn:.1f}x"
                    f" ({self.worst_burn_tenant})"
                )
            if self.blame_seconds:
                total = sum(self.blame_seconds.values())
                top_culprit = max(
                    sorted(self.blame_seconds),
                    key=lambda name: self.blame_seconds[name],
                )
                share = (
                    self.blame_seconds[top_culprit] / total if total > 0 else 0.0
                )
                blame_column = (
                    f"blame {top_culprit} "
                    f"{self.blame_seconds[top_culprit]:.1f}s "
                    f"({share * 100:.0f}%)"
                )
            else:
                blame_column = "blame —"
            lines.append(f"{slo_column}  {blame_column}")
        busiest = sorted(
            self.link_state.items(), key=lambda item: -item[1]
        )[: self.max_links]
        for (site, direction), utilization in busiest:
            arrow = "↑" if direction == "up" else "↓"
            lines.append(
                f"  {site:>16} {arrow} |{_bar(utilization)}| {utilization * 100:5.1f}%"
            )
        return lines

    def paint(self) -> None:
        self._since_paint = 0
        lines = self.render_lines()
        out = self.stream
        if out.isatty() and self._painted_lines:
            out.write(f"\x1b[{self._painted_lines}F\x1b[J")
        elif self._painted_lines:
            out.write("\n")
        for line in lines:
            out.write(line + "\n")
        out.flush()
        self._painted_lines = len(lines)

    def close(self) -> None:
        """Final repaint so the last state is always on screen."""
        self.paint()
