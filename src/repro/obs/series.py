"""Derivations: telemetry event streams → sim-time time-series.

The bus (:mod:`repro.obs.telemetry`) records *what happened*; this module
turns it into the quantities an operator actually reads:

* per-link utilization — bytes in flight ÷ effective capacity, one step
  per progressive-filling round (``used_bps × dt`` integrates back to the
  bytes the link carried, so the series reconciles with the sanitizer's
  byte conservation);
* per-site busy fraction — union of map/reduce stage intervals;
* flow occupancy — active vs. parked WAN flows over time;
* cumulative delivered vs. abandoned bytes (failed attempts that were
  retried are not abandoned);
* estimator error — the EWMA bandwidth estimate vs. the true effective
  capacity, sampled at every observed transfer completion;

plus rollups: time-weighted mean, time-weighted percentiles, and max.
All derivations are pure functions over a ``Sequence[TelemetryEvent]``,
so they run identically on a live bus or a replayed JSONL archive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.telemetry import TelemetryEvent

#: One constant-value step: (start_time, duration, value).
Segment = Tuple[float, float, float]


@dataclass
class TimeSeries:
    """A piecewise-constant series over simulated time.

    Segments may be sparse (gaps carry no weight) and are kept in the
    order derived, which for telemetry streams is time order per link.
    """

    segments: List[Segment] = field(default_factory=list)

    def add(self, start: float, duration: float, value: float) -> None:
        if duration < 0:
            raise ObservabilityError(f"segment duration must be >= 0, got {duration}")
        self.segments.append((start, duration, value))

    @property
    def duration(self) -> float:
        return sum(dt for _, dt, _ in self.segments)

    @property
    def end(self) -> float:
        if not self.segments:
            return 0.0
        return max(t + dt for t, dt, _ in self.segments)

    def integral(self) -> float:
        """Sum of value × duration (e.g. bytes when value is bps)."""
        return sum(value * dt for _, dt, value in self.segments)

    def time_weighted_mean(self) -> float:
        total = self.duration
        if total <= 0:
            return 0.0
        return self.integral() / total

    def percentile(self, q: float) -> float:
        """Time-weighted percentile: the value exceeded (1-q) of the time."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"q must be in [0, 1], got {q}")
        if not self.segments:
            return 0.0
        ranked = sorted(
            ((value, dt) for _, dt, value in self.segments if dt > 0),
            key=lambda pair: pair[0],
        )
        if not ranked:
            return self.segments[-1][2]
        total = sum(dt for _, dt in ranked)
        target = q * total
        accumulated = 0.0
        for value, dt in ranked:
            accumulated += dt
            if accumulated >= target - 1e-12:
                return value
        return ranked[-1][0]

    def maximum(self) -> float:
        if not self.segments:
            return 0.0
        return max(value for _, _, value in self.segments)

    def value_at(self, now: float) -> float:
        """Value of the segment covering ``now`` (0.0 in gaps)."""
        for start, dt, value in self.segments:
            if start - 1e-12 <= now < start + dt + 1e-12:
                return value
        return 0.0

    def bucketed(self, buckets: int, end: Optional[float] = None) -> List[float]:
        """Time-weighted mean per equal-width bucket over [0, end]."""
        if buckets < 1:
            raise ObservabilityError("buckets must be >= 1")
        horizon = end if end is not None else self.end
        if horizon <= 0:
            return [0.0] * buckets
        width = horizon / buckets
        sums = [0.0] * buckets
        weights = [0.0] * buckets
        for start, dt, value in self.segments:
            if dt <= 0:
                continue
            stop = start + dt
            first = max(0, min(buckets - 1, int(start / width)))
            last = max(0, min(buckets - 1, int((stop - 1e-12) / width)))
            for index in range(first, last + 1):
                lo = max(start, index * width)
                hi = min(stop, (index + 1) * width)
                overlap = hi - lo
                if overlap > 0:
                    sums[index] += value * overlap
                    weights[index] += overlap
        return [
            sums[index] / weights[index] if weights[index] > 0 else 0.0
            for index in range(buckets)
        ]


def rollup(series: TimeSeries) -> Dict[str, float]:
    """The standard summary: time-weighted mean, p50, p99, max."""
    return {
        "mean": series.time_weighted_mean(),
        "p50": series.percentile(0.50),
        "p99": series.percentile(0.99),
        "max": series.maximum(),
    }


# ----------------------------------------------------------------------
# link utilization
# ----------------------------------------------------------------------

#: Link identity: (site, "up"|"down").
Link = Tuple[str, str]


def link_utilization(events: Sequence[TelemetryEvent]) -> Dict[Link, TimeSeries]:
    """Per-link utilization in [0, 1+]: used_bps ÷ capacity_bps per round.

    A blacked-out link (capacity 0 with parked flows) contributes value
    0.0 — the fault overlay, not the utilization curve, shows the outage.
    """
    series: Dict[Link, TimeSeries] = {}
    for event in events:
        if event.kind != "link-sample":
            continue
        attrs = event.attrs
        link = (str(attrs["site"]), str(attrs["direction"]))
        capacity = float(attrs["capacity_bps"])
        used = float(attrs["used_bps"])
        utilization = used / capacity if capacity > 0 else 0.0
        series.setdefault(link, TimeSeries()).add(
            float(event.t or 0.0), float(attrs["dt"]), utilization
        )
    return series


def link_throughput(events: Sequence[TelemetryEvent]) -> Dict[Link, TimeSeries]:
    """Per-link used bps per round (integral = bytes carried)."""
    series: Dict[Link, TimeSeries] = {}
    for event in events:
        if event.kind != "link-sample":
            continue
        attrs = event.attrs
        link = (str(attrs["site"]), str(attrs["direction"]))
        series.setdefault(link, TimeSeries()).add(
            float(event.t or 0.0), float(attrs["dt"]), float(attrs["used_bps"])
        )
    return series


def wan_bytes_carried(
    events: Sequence[TelemetryEvent], direction: str = "up"
) -> float:
    """Total WAN bytes the sampled links carried in one direction.

    Every WAN byte crosses exactly one uplink and one downlink, so this
    equals delivered WAN bytes plus partial progress of failed attempts —
    the consistency the telemetry test suite checks against the
    sanitizer's conservation ledger.
    """
    return sum(
        series.integral()
        for (_, link_direction), series in link_throughput(events).items()
        if link_direction == direction
    )


# ----------------------------------------------------------------------
# stages and site busy fraction
# ----------------------------------------------------------------------


def stage_intervals(events: Sequence[TelemetryEvent]) -> List[Dict]:
    """Gantt rows from stage-finish events: site, stage, job, start, end."""
    intervals: List[Dict] = []
    for event in events:
        if event.kind != "stage-finish":
            continue
        attrs = event.attrs
        intervals.append(
            {
                "site": str(attrs["site"]),
                "stage": str(attrs["stage"]),
                "job": str(attrs.get("job", "")),
                "start": float(attrs.get("start", 0.0)),
                "end": float(event.t or 0.0),
            }
        )
    return intervals


def _merge_intervals(
    intervals: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1] + 1e-12:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def site_busy(events: Sequence[TelemetryEvent]) -> Dict[str, TimeSeries]:
    """Per-site busy series: 1.0 while any map/reduce stage runs."""
    per_site: Dict[str, List[Tuple[float, float]]] = {}
    for interval in stage_intervals(events):
        if interval["end"] > interval["start"]:
            per_site.setdefault(interval["site"], []).append(
                (interval["start"], interval["end"])
            )
    series: Dict[str, TimeSeries] = {}
    for site, intervals in per_site.items():
        busy = TimeSeries()
        for start, end in _merge_intervals(intervals):
            busy.add(start, end - start, 1.0)
        series[site] = busy
    return series


def site_busy_fraction(
    events: Sequence[TelemetryEvent], horizon: Optional[float] = None
) -> Dict[str, float]:
    """Fraction of [0, horizon] each site spent computing."""
    series = site_busy(events)
    span = horizon if horizon is not None else sim_horizon(events)
    if span <= 0:
        return {site: 0.0 for site in series}
    return {
        site: min(1.0, busy.duration / span) for site, busy in series.items()
    }


def sim_horizon(events: Sequence[TelemetryEvent]) -> float:
    """Latest simulated timestamp any event carries."""
    times = [event.t for event in events if event.t is not None]
    return max(times) if times else 0.0


# ----------------------------------------------------------------------
# occupancy and cumulative bytes
# ----------------------------------------------------------------------


def flow_occupancy(
    events: Sequence[TelemetryEvent],
) -> Tuple[TimeSeries, TimeSeries]:
    """(active, parked) WAN flow counts over time from flows-sample."""
    active = TimeSeries()
    parked = TimeSeries()
    for event in events:
        if event.kind != "flows-sample":
            continue
        attrs = event.attrs
        start = float(event.t or 0.0)
        dt = float(attrs["dt"])
        active.add(start, dt, float(attrs["active"]))
        parked.add(start, dt, float(attrs["parked"]))
    return active, parked


def cumulative_bytes(
    events: Sequence[TelemetryEvent],
) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
    """(delivered, abandoned) cumulative WAN byte step-points by time.

    Delivered counts flow-finish events on WAN links.  Abandoned counts
    failed attempts that were *not* re-submitted: each retry event
    cancels its matching flow-fail, so bytes in flight between attempts
    are neither delivered nor abandoned yet.
    """
    retried: Dict[Tuple[float, str, str, float], int] = {}
    for event in events:
        if event.kind == "retry":
            key = (
                float(event.t or 0.0),
                str(event.attrs["src"]),
                str(event.attrs["dst"]),
                float(event.attrs["num_bytes"]),
            )
            retried[key] = retried.get(key, 0) + 1

    delivered_raw: List[Tuple[float, float]] = []
    abandoned_raw: List[Tuple[float, float]] = []
    for event in events:
        if event.kind == "flow-finish" and event.attrs.get("wan"):
            delivered_raw.append(
                (float(event.t or 0.0), float(event.attrs["num_bytes"]))
            )
        elif event.kind == "flow-fail":
            key = (
                float(event.t or 0.0),
                str(event.attrs["src"]),
                str(event.attrs["dst"]),
                float(event.attrs["num_bytes"]),
            )
            if retried.get(key, 0) > 0:
                retried[key] -= 1
                continue
            abandoned_raw.append(
                (float(event.t or 0.0), float(event.attrs["num_bytes"]))
            )

    def accumulate(points: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
        total = 0.0
        curve: List[Tuple[float, float]] = []
        for when, amount in sorted(points):
            total += amount
            curve.append((when, total))
        return curve

    return accumulate(delivered_raw), accumulate(abandoned_raw)


# ----------------------------------------------------------------------
# estimator error
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EstimatorSample:
    """One estimator-sample event, decoded."""

    t: float
    site: str
    direction: str
    observed_bps: float
    estimate_bps: float
    true_bps: Optional[float]

    @property
    def relative_error(self) -> Optional[float]:
        """(estimate - truth) / truth; None without a truth oracle."""
        if self.true_bps is None or self.true_bps <= 0:
            return None
        return (self.estimate_bps - self.true_bps) / self.true_bps


def estimator_samples(
    events: Sequence[TelemetryEvent],
) -> List[EstimatorSample]:
    samples: List[EstimatorSample] = []
    for event in events:
        if event.kind != "estimator-sample":
            continue
        attrs = event.attrs
        true_bps = attrs.get("true_bps")
        samples.append(
            EstimatorSample(
                t=float(event.t or 0.0),
                site=str(attrs["site"]),
                direction=str(attrs["direction"]),
                observed_bps=float(attrs["observed_bps"]),
                estimate_bps=float(attrs["estimate_bps"]),
                true_bps=None if true_bps is None else float(true_bps),
            )
        )
    samples.sort(key=lambda sample: sample.t)
    return samples


def estimator_error_series(
    events: Sequence[TelemetryEvent],
) -> Dict[str, List[Tuple[float, float]]]:
    """Signed relative estimator error points per direction, time-sorted."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for sample in estimator_samples(events):
        error = sample.relative_error
        if error is None:
            continue
        series.setdefault(sample.direction, []).append((sample.t, error))
    return series


def mean_abs_estimator_error(events: Sequence[TelemetryEvent]) -> Optional[float]:
    errors = [
        abs(error)
        for points in estimator_error_series(events).values()
        for _, error in points
    ]
    if not errors:
        return None
    return sum(errors) / len(errors)


# ----------------------------------------------------------------------
# fault windows
# ----------------------------------------------------------------------


def fault_windows(events: Sequence[TelemetryEvent]) -> List[Dict]:
    """Decoded fault-window events: fault, site, start, end, severity."""
    windows: List[Dict] = []
    for event in events:
        if event.kind != "fault-window":
            continue
        attrs = event.attrs
        windows.append(
            {
                "fault": str(attrs["fault"]),
                "site": str(attrs["site"]),
                "start": float(attrs["start"]),
                "end": None if attrs.get("end") is None else float(attrs["end"]),
                "severity": float(attrs.get("severity", 0.0)),
            }
        )
    return windows
