"""Counters, gauges and histograms with labeled series.

A :class:`MetricsRegistry` hands out metric instances keyed by name plus
a frozen label set, Prometheus-style::

    metrics.counter("shuffle_bytes", src="tokyo", dst="oregon").inc(4096)
    metrics.histogram("lp_solve_seconds").observe(0.012)

Snapshots serialize every series to a plain dict (for ``--metrics FILE``)
and render as an ASCII table (reusing :mod:`repro.util.tabulate`).

:data:`NULL_METRICS` is the no-op twin: every factory returns a shared
dummy whose mutators do nothing, so instrumented hot paths stay ~free
when metrics are disabled.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError

#: Series key: (metric name, sorted label items).
_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Mapping[str, Any]) -> _SeriesKey:
    return (name, tuple(sorted((key, str(value)) for key, value in labels.items())))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Sample accumulator with exact percentiles.

    Sample counts here are small (per-query observations), so the
    histogram keeps raw samples and computes exact linear-interpolation
    percentiles rather than bucketed approximations.
    """

    __slots__ = ("name", "labels", "samples")

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def sum(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.sum / len(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile ``q`` in [0, 100] with linear interpolation."""
        if not 0.0 <= q <= 100.0:
            raise ObservabilityError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        position = q / 100.0 * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction


class MetricsRegistry:
    """Process-local registry of labeled metric series."""

    enabled = True

    def __init__(self) -> None:
        self._series: "Dict[_SeriesKey, Counter | Gauge | Histogram]" = {}

    def _get(self, kind: type, name: str, labels: Mapping[str, Any]):
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            # Labels are stored pre-sorted so every dump (snapshot dicts,
            # JSON, text tables) is byte-identical regardless of the
            # kwargs order at whichever call site created the series.
            series = kind(name, {k: str(labels[k]) for k in sorted(labels)})
            self._series[key] = series
        elif not isinstance(series, kind):
            raise ObservabilityError(
                f"metric {name!r} already registered as "
                f"{type(series).__name__}, not {kind.__name__}"
            )
        return series

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------

    def series(self) -> "List[Counter | Gauge | Histogram]":
        return [self._series[key] for key in sorted(self._series)]

    def snapshot(self) -> List[Dict[str, Any]]:
        """All series as JSON-serializable dicts."""
        out: List[Dict[str, Any]] = []
        for series in self.series():
            record: Dict[str, Any] = {
                "name": series.name,
                "labels": series.labels,
                "type": type(series).__name__.lower(),
            }
            if isinstance(series, Histogram):
                record.update(
                    count=series.count,
                    sum=series.sum,
                    mean=series.mean,
                    p50=series.percentile(50),
                    p90=series.percentile(90),
                    p99=series.percentile(99),
                    max=max(series.samples) if series.samples else 0.0,
                )
            else:
                record["value"] = series.value
            out.append(record)
        return out

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render_text(self, title: Optional[str] = "metrics") -> str:
        from repro.util.tabulate import format_table

        rows: List[List[object]] = []
        for record in self.snapshot():
            labels = ",".join(
                f"{key}={value}" for key, value in sorted(record["labels"].items())
            )
            if record["type"] == "histogram":
                value = (
                    f"count={record['count']} mean={record['mean']:.4g} "
                    f"p50={record['p50']:.4g} p90={record['p90']:.4g} "
                    f"p99={record['p99']:.4g}"
                )
            else:
                value = f"{record['value']:.6g}"
            rows.append([record["name"], labels, record["type"], value])
        return format_table(
            rows, headers=("metric", "labels", "type", "value"), title=title
        )


class _NullMetric:
    """Shared dummy accepted by every metric call site."""

    __slots__ = ()
    name = ""
    value = 0.0

    # Fresh containers per read: a class-level ``labels = {}`` would be
    # one dict shared by every null metric in the process, and a single
    # stray ``metric.samples.append(...)`` would contaminate them all
    # (flagged by the R010 shared-state inventory).
    @property
    def labels(self) -> Dict[str, str]:
        return {}

    @property
    def samples(self) -> List[float]:
        return []

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """Registry twin whose factories return a shared no-op metric."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def series(self) -> List[Any]:
        return []

    def snapshot(self) -> List[Dict[str, Any]]:
        return []


NULL_METRICS = NullMetrics()
