"""``repro report``: telemetry JSONL → static self-contained HTML dashboard.

Stdlib only, inline SVG, no scripts: the file renders anywhere a browser
does, including artifact viewers.  Panels:

* stat tiles — run-level rollups (horizon, delivered/abandoned bytes,
  retries, peak utilization, mean estimator error);
* per-link utilization heatmap (time-bucketed, fault windows underlined);
* per-site stage Gantt (map/reduce lanes, fault windows shaded);
* estimator-error curve (signed relative error per direction);
* cumulative delivered vs. abandoned WAN bytes;
* serve archives add three more: per-query critical-path stacked bars
  (queue/slot/map/WAN serial/WAN contention/reduce, from
  :mod:`repro.obs.critpath`), the tenant x tenant contention blame
  heatmap, and the per-tenant SLO burn-rate timeline (``slo-window``
  events).

Visual conventions follow the repo-wide chart method: categorical hues in
fixed order (blue, orange), one-hue sequential ramp for magnitude, status
colors reserved for faults, text always in ink tokens, hairline
gridlines, a legend whenever two series share a plot, and a data table
behind every panel.  Dark mode re-steps the same ramps against the dark
surface (the sequential ramp reverses so "near zero" still recedes).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.series import (
    TimeSeries,
    cumulative_bytes,
    estimator_error_series,
    fault_windows,
    link_utilization,
    mean_abs_estimator_error,
    rollup,
    sim_horizon,
    site_busy_fraction,
    stage_intervals,
)
from repro.obs.telemetry import TelemetryEvent

# Sequential blue ramp, light surface, steps 100..700 (light → dark).
_SEQ_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

_PLOT_W = 760
_LABEL_W = 150
_WIDTH = _LABEL_W + _PLOT_W + 30
_HEAT_BUCKETS = 60

_FAULT_STATUS = {
    "link-blackout": "critical",
    "site-outage": "critical",
    "link-degrade": "serious",
    "transfer-stall": "serious",
    "straggler": "serious",
    "task-failure": "serious",
}


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt_bytes(value: float) -> str:
    magnitude = abs(value)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if magnitude < 1024.0 or unit == "TB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024.0
        magnitude /= 1024.0
    return f"{value:,.1f} TB"


def _fmt_seconds(value: float) -> str:
    if value >= 3600:
        return f"{value / 3600:.2f} h"
    if value >= 60:
        return f"{value / 60:.2f} min"
    if value >= 1:
        return f"{value:.2f} s"
    return f"{value * 1000:.1f} ms"


def _fmt_pct(value: float) -> str:
    return f"{value * 100:.1f}%"


def _seq_index(value: float) -> int:
    clamped = min(1.0, max(0.0, value))
    return round(clamped * (len(_SEQ_RAMP) - 1))


def _time_ticks(horizon: float, count: int = 5) -> List[float]:
    if horizon <= 0:
        return [0.0]
    return [horizon * index / count for index in range(count + 1)]


# ----------------------------------------------------------------------
# panels
# ----------------------------------------------------------------------


def _stat_tiles(events: Sequence[TelemetryEvent]) -> str:
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    horizon = sim_horizon(events)
    delivered, abandoned = cumulative_bytes(events)
    utilization = link_utilization(events)
    peak = max(
        (rollup(series)["p99"] for series in utilization.values()), default=0.0
    )
    error = mean_abs_estimator_error(events)
    busy = site_busy_fraction(events, horizon)
    mean_busy = sum(busy.values()) / len(busy) if busy else 0.0
    tiles = [
        ("Sim horizon", _fmt_seconds(horizon)),
        (
            "Queries",
            f"{counts.get('query-finish', 0)}"
            + (
                f" ({counts.get('query-abort', 0)} aborted)"
                if counts.get("query-abort")
                else ""
            ),
        ),
        ("Delivered WAN", _fmt_bytes(delivered[-1][1] if delivered else 0.0)),
        ("Abandoned", _fmt_bytes(abandoned[-1][1] if abandoned else 0.0)),
        ("p99 link utilization", _fmt_pct(peak)),
        ("Mean site busy", _fmt_pct(mean_busy)),
        ("Retries", str(counts.get("retry", 0))),
        (
            "Mean |estimator error|",
            "–" if error is None else _fmt_pct(error),
        ),
    ]
    cells = "".join(
        '<div class="tile"><div class="tile-label">{label}</div>'
        '<div class="tile-value">{value}</div></div>'.format(
            label=_esc(label), value=_esc(value)
        )
        for label, value in tiles
    )
    return f'<div class="tiles">{cells}</div>'


def _fault_legend(windows: List[Dict]) -> str:
    if not windows:
        return ""
    kinds = sorted({window["fault"] for window in windows})
    chips = "".join(
        '<span class="chip"><span class="swatch status-{status}"></span>'
        "⚠ {kind}</span>".format(
            status=_FAULT_STATUS.get(kind, "serious"), kind=_esc(kind)
        )
        for kind in kinds
    )
    return f'<div class="legend">{chips}</div>'


def _heatmap_panel(events: Sequence[TelemetryEvent]) -> str:
    utilization = link_utilization(events)
    if not utilization:
        return "<p class='empty'>No link-sample events (no WAN traffic recorded).</p>"
    horizon = max(series.end for series in utilization.values())
    links = sorted(utilization)
    windows = fault_windows(events)
    row_h, gap = 18, 2
    top, bottom = 8, 28
    height = top + len(links) * (row_h + gap) + bottom
    cell_w = _PLOT_W / _HEAT_BUCKETS
    parts: List[str] = [
        f'<svg viewBox="0 0 {_WIDTH} {height}" role="img" '
        f'aria-label="Per-link utilization heatmap">'
    ]
    rows_data: List[Tuple[str, List[float]]] = []
    for row, (site, direction) in enumerate(links):
        series = utilization[(site, direction)]
        values = series.bucketed(_HEAT_BUCKETS, end=horizon)
        label = f"{site} {'↑' if direction == 'up' else '↓'}{direction}"
        rows_data.append((label, values))
        y = top + row * (row_h + gap)
        parts.append(
            f'<text x="{_LABEL_W - 8}" y="{y + row_h - 5}" '
            f'text-anchor="end" class="axis-label">{_esc(label)}</text>'
        )
        for bucket, value in enumerate(values):
            x = _LABEL_W + bucket * cell_w
            t_lo = horizon * bucket / _HEAT_BUCKETS
            title = (
                f"{label} · {_fmt_seconds(t_lo)}–"
                f"{_fmt_seconds(horizon * (bucket + 1) / _HEAT_BUCKETS)} · "
                f"{_fmt_pct(value)}"
            )
            parts.append(
                f'<rect x="{x:.2f}" y="{y}" width="{max(cell_w - 1, 1):.2f}" '
                f'height="{row_h}" class="q{_seq_index(value)}">'
                f"<title>{_esc(title)}</title></rect>"
            )
        # Fault windows touching this link's site: a status underline.
        for window in windows:
            if window["site"] != site or window["fault"] not in (
                "link-degrade",
                "link-blackout",
                "transfer-stall",
                "site-outage",
            ):
                continue
            start = min(window["start"], horizon)
            end = window["end"] if window["end"] is not None else horizon
            end = min(end, horizon)
            if end <= start or horizon <= 0:
                continue
            x0 = _LABEL_W + _PLOT_W * start / horizon
            x1 = _LABEL_W + _PLOT_W * end / horizon
            status = _FAULT_STATUS.get(window["fault"], "serious")
            title = (
                f"⚠ {window['fault']} @ {site} · "
                f"{_fmt_seconds(start)}–{_fmt_seconds(end)}"
            )
            parts.append(
                f'<rect x="{x0:.2f}" y="{y + row_h - 3}" '
                f'width="{max(x1 - x0, 2):.2f}" height="3" '
                f'class="status-{status}"><title>{_esc(title)}</title></rect>'
            )
    axis_y = top + len(links) * (row_h + gap) + 14
    for tick in _time_ticks(horizon):
        x = _LABEL_W + (_PLOT_W * tick / horizon if horizon > 0 else 0)
        parts.append(
            f'<text x="{x:.2f}" y="{axis_y}" text-anchor="middle" '
            f'class="axis-label">{_esc(_fmt_seconds(tick))}</text>'
        )
    parts.append("</svg>")
    scale = "".join(
        f'<span class="swatch q{index}"></span>'
        for index in range(0, len(_SEQ_RAMP), 2)
    )
    parts.append(
        f'<div class="legend"><span class="chip">0% {scale} 100%+ of '
        "effective capacity</span></div>"
    )
    table_rows = "".join(
        "<tr><td>{label}</td><td>{mean}</td><td>{p50}</td><td>{p99}</td>"
        "<td>{peak}</td></tr>".format(
            label=_esc(f"{site} {direction}"),
            mean=_fmt_pct(stats["mean"]),
            p50=_fmt_pct(stats["p50"]),
            p99=_fmt_pct(stats["p99"]),
            peak=_fmt_pct(stats["max"]),
        )
        for (site, direction), stats in sorted(
            (link, rollup(series)) for link, series in utilization.items()
        )
    )
    parts.append(
        "<details><summary>Data table</summary><table>"
        "<tr><th>Link</th><th>Mean</th><th>p50</th><th>p99</th><th>Max</th></tr>"
        f"{table_rows}</table></details>"
    )
    return "".join(parts)


def _gantt_panel(events: Sequence[TelemetryEvent]) -> str:
    intervals = stage_intervals(events)
    if not intervals:
        return "<p class='empty'>No stage-finish events.</p>"
    horizon = max(
        sim_horizon(events), max(interval["end"] for interval in intervals)
    )
    sites = sorted({interval["site"] for interval in intervals})
    windows = fault_windows(events)
    lane_h, bar_h, gap = 26, 9, 4
    top, bottom = 8, 28
    height = top + len(sites) * (lane_h + gap) + bottom

    def x_of(t: float) -> float:
        return _LABEL_W + (_PLOT_W * min(t, horizon) / horizon if horizon > 0 else 0)

    parts = [
        f'<svg viewBox="0 0 {_WIDTH} {height}" role="img" '
        f'aria-label="Stage Gantt per site">'
    ]
    for tick in _time_ticks(horizon):
        x = x_of(tick)
        parts.append(
            f'<line x1="{x:.2f}" y1="{top}" x2="{x:.2f}" '
            f'y2="{height - bottom}" class="grid"/>'
        )
        parts.append(
            f'<text x="{x:.2f}" y="{height - 10}" text-anchor="middle" '
            f'class="axis-label">{_esc(_fmt_seconds(tick))}</text>'
        )
    for row, site in enumerate(sites):
        y = top + row * (lane_h + gap)
        parts.append(
            f'<text x="{_LABEL_W - 8}" y="{y + lane_h / 2 + 4}" '
            f'text-anchor="end" class="axis-label">{_esc(site)}</text>'
        )
        for window in windows:
            if window["site"] != site:
                continue
            end = window["end"] if window["end"] is not None else horizon
            x0, x1 = x_of(window["start"]), x_of(end)
            status = _FAULT_STATUS.get(window["fault"], "serious")
            title = (
                f"⚠ {window['fault']} @ {site} · "
                f"{_fmt_seconds(window['start'])}–{_fmt_seconds(end)}"
            )
            parts.append(
                f'<rect x="{x0:.2f}" y="{y}" width="{max(x1 - x0, 2):.2f}" '
                f'height="{lane_h}" class="status-{status} fault-wash">'
                f"<title>{_esc(title)}</title></rect>"
            )
        for stage, offset, css in (("map", 2, "series-1"), ("reduce", 14, "series-2")):
            for interval in intervals:
                if interval["site"] != site or interval["stage"] != stage:
                    continue
                x0 = x_of(interval["start"])
                x1 = x_of(interval["end"])
                title = (
                    f"{stage}@{site} ({interval['job']}) · "
                    f"{_fmt_seconds(interval['start'])}–"
                    f"{_fmt_seconds(interval['end'])}"
                )
                parts.append(
                    f'<rect x="{x0:.2f}" y="{y + offset}" rx="2" '
                    f'width="{max(x1 - x0, 2):.2f}" height="{bar_h}" '
                    f'class="{css}"><title>{_esc(title)}</title></rect>'
                )
    parts.append("</svg>")
    parts.append(
        '<div class="legend">'
        '<span class="chip"><span class="swatch series-1"></span>map</span>'
        '<span class="chip"><span class="swatch series-2"></span>reduce</span>'
        "</div>"
    )
    parts.append(_fault_legend(windows))
    table_rows = "".join(
        "<tr><td>{site}</td><td>{busy}</td></tr>".format(
            site=_esc(site), busy=_fmt_pct(fraction)
        )
        for site, fraction in sorted(site_busy_fraction(events, horizon).items())
    )
    parts.append(
        "<details><summary>Data table</summary><table>"
        "<tr><th>Site</th><th>Busy fraction</th></tr>"
        f"{table_rows}</table></details>"
    )
    return "".join(parts)


def _line_chart(
    series: Dict[str, List[Tuple[float, float]]],
    colors: Dict[str, str],
    y_label: str,
    y_format,
    aria: str,
    step: bool = False,
    zero_line: bool = True,
) -> str:
    points_all = [point for points in series.values() for point in points]
    if not points_all:
        return f"<p class='empty'>No {_esc(aria)} data.</p>"
    x_max = max(x for x, _ in points_all) or 1.0
    y_min = min(0.0, min(y for _, y in points_all))
    y_max = max(y for _, y in points_all)
    if y_max <= y_min:
        y_max = y_min + 1.0
    pad = (y_max - y_min) * 0.08
    y_min -= pad
    y_max += pad
    top, bottom, height = 10, 30, 220
    plot_h = height - top - bottom

    def sx(x: float) -> float:
        return _LABEL_W + _PLOT_W * x / x_max

    def sy(y: float) -> float:
        return top + plot_h * (1 - (y - y_min) / (y_max - y_min))

    parts = [
        f'<svg viewBox="0 0 {_WIDTH} {height}" role="img" aria-label="{_esc(aria)}">'
    ]
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        value = y_min + fraction * (y_max - y_min)
        y = sy(value)
        parts.append(
            f'<line x1="{_LABEL_W}" y1="{y:.2f}" x2="{_LABEL_W + _PLOT_W}" '
            f'y2="{y:.2f}" class="grid"/>'
        )
        parts.append(
            f'<text x="{_LABEL_W - 8}" y="{y + 4:.2f}" text-anchor="end" '
            f'class="axis-label">{_esc(y_format(value))}</text>'
        )
    if zero_line and y_min < 0 < y_max:
        y = sy(0.0)
        parts.append(
            f'<line x1="{_LABEL_W}" y1="{y:.2f}" x2="{_LABEL_W + _PLOT_W}" '
            f'y2="{y:.2f}" class="baseline"/>'
        )
    for tick in _time_ticks(x_max):
        parts.append(
            f'<text x="{sx(tick):.2f}" y="{height - 8}" text-anchor="middle" '
            f'class="axis-label">{_esc(_fmt_seconds(tick))}</text>'
        )
    for name in sorted(series):
        points = sorted(series[name])
        if not points:
            continue
        css = colors[name]
        path: List[str] = []
        previous_y: Optional[float] = None
        for x, y in points:
            if not path:
                path.append(f"M{sx(x):.2f},{sy(y):.2f}")
            elif step and previous_y is not None:
                path.append(f"L{sx(x):.2f},{sy(previous_y):.2f}")
                path.append(f"L{sx(x):.2f},{sy(y):.2f}")
            else:
                path.append(f"L{sx(x):.2f},{sy(y):.2f}")
            previous_y = y
        parts.append(
            f'<path d="{" ".join(path)}" fill="none" '
            f'class="line {css}"/>'
        )
        last_x, last_y = points[-1]
        parts.append(
            f'<circle cx="{sx(last_x):.2f}" cy="{sy(last_y):.2f}" r="4" '
            f'class="dot {css}"><title>'
            f"{_esc(name)}: {_esc(y_format(last_y))} at "
            f"{_esc(_fmt_seconds(last_x))}</title></circle>"
        )
    parts.append("</svg>")
    if len(series) >= 2:
        chips = "".join(
            '<span class="chip"><span class="swatch {css}"></span>{name}</span>'.format(
                css=colors[name], name=_esc(name)
            )
            for name in sorted(series)
        )
        parts.append(f'<div class="legend">{chips}</div>')
    parts.append(f'<div class="y-title">{_esc(y_label)}</div>')
    return "".join(parts)


def _estimator_panel(events: Sequence[TelemetryEvent]) -> str:
    series = estimator_error_series(events)
    if not series:
        return (
            "<p class='empty'>No estimator-sample events with a truth oracle "
            "(runs without data movement record none).</p>"
        )
    named = {
        f"{direction}link estimate": points for direction, points in series.items()
    }
    colors = {
        name: "series-1" if name.startswith("up") else "series-2"
        for name in named
    }
    chart = _line_chart(
        named,
        colors,
        y_label="signed relative error (estimate vs. true capacity)",
        y_format=_fmt_pct,
        aria="Estimator error over time",
    )
    error = mean_abs_estimator_error(events)
    summary = (
        f"<p class='note'>Mean absolute relative error: "
        f"<strong>{_fmt_pct(error)}</strong> over "
        f"{sum(len(points) for points in series.values())} samples.</p>"
        if error is not None
        else ""
    )
    table_rows = "".join(
        "<tr><td>{name}</td><td>{count}</td><td>{mean}</td></tr>".format(
            name=_esc(direction),
            count=len(points),
            mean=_fmt_pct(
                sum(abs(err) for _, err in points) / len(points)
            ),
        )
        for direction, points in sorted(series.items())
    )
    table = (
        "<details><summary>Data table</summary><table>"
        "<tr><th>Direction</th><th>Samples</th><th>Mean |error|</th></tr>"
        f"{table_rows}</table></details>"
    )
    return chart + summary + table


def _bytes_panel(events: Sequence[TelemetryEvent]) -> str:
    delivered, abandoned = cumulative_bytes(events)
    series: Dict[str, List[Tuple[float, float]]] = {}
    if delivered:
        series["delivered"] = delivered
    if abandoned:
        series["abandoned"] = abandoned
    if not series:
        return "<p class='empty'>No WAN flow completions recorded.</p>"
    colors = {"delivered": "series-1", "abandoned": "series-2"}
    chart = _line_chart(
        series,
        colors,
        y_label="cumulative WAN bytes",
        y_format=_fmt_bytes,
        aria="Cumulative delivered vs abandoned bytes",
        step=True,
        zero_line=False,
    )
    total_delivered = delivered[-1][1] if delivered else 0.0
    total_abandoned = abandoned[-1][1] if abandoned else 0.0
    note = (
        f"<p class='note'>Delivered <strong>{_fmt_bytes(total_delivered)}</strong>"
        + (
            f", abandoned <strong>{_fmt_bytes(total_abandoned)}</strong> "
            "after retry exhaustion."
            if total_abandoned
            else "; nothing abandoned."
        )
        + "</p>"
    )
    return chart + note


#: Critical-path component -> (label, CSS class); stacked in path order.
_CRIT_STYLES = (
    ("queue_wait", "queue", "q3"),
    ("slot_wait", "slot", "q6"),
    ("map_seconds", "map", "series-1"),
    ("wan_serial", "wan serial", "series-3"),
    ("wan_contention", "wan contention", "status-serious"),
    ("reduce_seconds", "reduce", "series-2"),
    ("cached_seconds", "cache", "q1"),
)

#: Rows shown in the per-query stacked-bar panel (longest QCT first).
_CRIT_MAX_ROWS = 40


def _critpath_panel(crit) -> str:
    if crit is None or not crit.paths:
        return (
            "<p class='empty'>No serve-finish events (critical paths are "
            "derived from serve archives).</p>"
        )
    ranked = sorted(crit.paths, key=lambda path: (-path.qct, path.index))
    shown = ranked[:_CRIT_MAX_ROWS]
    longest = max(path.qct for path in shown) or 1.0
    row_h, gap = 14, 3
    top, bottom = 8, 10
    height = top + len(shown) * (row_h + gap) + bottom
    parts = [
        f'<svg viewBox="0 0 {_WIDTH} {height}" role="img" '
        f'aria-label="Per-query critical-path stacked bars">'
    ]
    for row, path in enumerate(shown):
        y = top + row * (row_h + gap)
        label = f"q{path.index} · {path.tenant}"
        parts.append(
            f'<text x="{_LABEL_W - 8}" y="{y + row_h - 3}" '
            f'text-anchor="end" class="axis-label">{_esc(label)}</text>'
        )
        x = float(_LABEL_W)
        for name, title_label, css in _CRIT_STYLES:
            seconds = getattr(path, name)
            width = _PLOT_W * seconds / longest
            if width <= 0.0:
                continue
            title = (
                f"{label} · {title_label} {_fmt_seconds(seconds)} of "
                f"{_fmt_seconds(path.qct)} qct ({path.bound}-bound)"
            )
            parts.append(
                f'<rect x="{x:.2f}" y="{y}" width="{max(width, 0.5):.2f}" '
                f'height="{row_h}" class="{css}">'
                f"<title>{_esc(title)}</title></rect>"
            )
            x += width
    parts.append("</svg>")
    chips = "".join(
        '<span class="chip"><span class="swatch {css}"></span>{label}</span>'.format(
            css=css, label=_esc(label)
        )
        for _name, label, css in _CRIT_STYLES
    )
    parts.append(f'<div class="legend">{chips}</div>')
    if len(ranked) > len(shown):
        parts.append(
            f"<p class='note'>Showing the {len(shown)} longest of "
            f"{len(ranked)} queries.</p>"
        )
    totals = crit.component_totals()
    table_rows = "".join(
        "<tr><td>{label}</td><td>{value}</td></tr>".format(
            label=_esc(label), value=_fmt_seconds(totals[name])
        )
        for name, label, _css in _CRIT_STYLES
    )
    parts.append(
        "<details><summary>Component totals (all queries, max residual "
        f"{crit.max_residual():.2e} s)</summary><table>"
        "<tr><th>Component</th><th>Total</th></tr>"
        f"{table_rows}</table></details>"
    )
    return "".join(parts)


def _blame_panel(crit) -> str:
    if crit is None or not crit.blame:
        return (
            "<p class='empty'>No contention to attribute (no slot waits or "
            "contended WAN segments).</p>"
        )
    tenants = crit.tenants
    peak = max(
        seconds for culprits in crit.blame.values() for seconds in culprits.values()
    ) or 1.0
    cell, gap = 34, 3
    top = 26
    height = top + len(tenants) * (cell + gap) + 10
    parts = [
        f'<svg viewBox="0 0 {_WIDTH} {height}" role="img" '
        f'aria-label="Tenant contention blame heatmap">'
    ]
    for column, culprit in enumerate(tenants):
        x = _LABEL_W + column * (cell + gap) + cell / 2
        parts.append(
            f'<text x="{x:.2f}" y="{top - 8}" text-anchor="middle" '
            f'class="axis-label">{_esc(culprit)}</text>'
        )
    for row, victim in enumerate(tenants):
        y = top + row * (cell + gap)
        parts.append(
            f'<text x="{_LABEL_W - 8}" y="{y + cell / 2 + 4}" '
            f'text-anchor="end" class="axis-label">{_esc(victim)}</text>'
        )
        for column, culprit in enumerate(tenants):
            seconds = crit.blame.get(victim, {}).get(culprit, 0.0)
            x = _LABEL_W + column * (cell + gap)
            title = (
                f"{victim} delayed {_fmt_seconds(seconds)} by {culprit}"
                if seconds
                else f"{victim}: no delay attributed to {culprit}"
            )
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" rx="3" '
                f'class="q{_seq_index(seconds / peak)}">'
                f"<title>{_esc(title)}</title></rect>"
            )
    parts.append("</svg>")
    scale = "".join(
        f'<span class="swatch q{index}"></span>'
        for index in range(0, len(_SEQ_RAMP), 2)
    )
    parts.append(
        f'<div class="legend"><span class="chip">0 s {scale} '
        f"{_fmt_seconds(peak)}</span>"
        "<span class='chip'>rows: delayed tenant · columns: blamed "
        "tenant</span></div>"
    )
    table_rows = "".join(
        "<tr><td>{victim}</td><td>{culprit}</td><td>{seconds}</td></tr>".format(
            victim=_esc(victim), culprit=_esc(culprit),
            seconds=_fmt_seconds(crit.blame[victim][culprit]),
        )
        for victim in sorted(crit.blame)
        for culprit in sorted(crit.blame[victim])
    )
    parts.append(
        "<details><summary>Data table</summary><table>"
        "<tr><th>Delayed tenant</th><th>Blamed tenant</th><th>Seconds</th></tr>"
        f"{table_rows}</table></details>"
    )
    return "".join(parts)


def _burn_panel(events: Sequence[TelemetryEvent]) -> str:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for event in events:
        if event.kind != "slo-window":
            continue
        tenant = str(event.attrs.get("tenant", ""))
        series.setdefault(tenant, []).append(
            (float(event.t or 0.0), float(event.attrs.get("burn_rate", 0.0)))
        )
    if not series:
        return (
            "<p class='empty'>No slo-window events (record one with "
            "<code>repro serve --slo TENANT=TARGET --telemetry FILE</code>).</p>"
        )
    palette = ("series-1", "series-2", "series-3")
    colors = {
        name: palette[index % len(palette)]
        for index, name in enumerate(sorted(series))
    }
    chart = _line_chart(
        series,
        colors,
        y_label="burn rate (violation rate ÷ error budget; 1x = on budget)",
        y_format=lambda value: f"{value:.1f}x",
        aria="SLO burn rate per tenant over time",
        step=True,
    )
    worst = max(
        (burn, tenant)
        for tenant, points in series.items()
        for _t, burn in points
    )
    note = (
        f"<p class='note'>Worst window: <strong>{_esc(worst[1])}</strong> "
        f"burned budget at <strong>{worst[0]:.1f}x</strong>.</p>"
    )
    return chart + note


def _event_summary(events: Sequence[TelemetryEvent]) -> str:
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    rows = "".join(
        f"<tr><td>{_esc(kind)}</td><td>{count}</td></tr>"
        for kind, count in sorted(counts.items())
    )
    return (
        "<details><summary>Event stream summary "
        f"({len(events)} events)</summary><table>"
        "<tr><th>Kind</th><th>Count</th></tr>"
        f"{rows}</table></details>"
    )


# ----------------------------------------------------------------------
# page assembly
# ----------------------------------------------------------------------

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
}
.viz-root {
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --status-critical: #d03b3b; --status-serious: #ec835a;
  --seq-0:#cde2fb; --seq-1:#b7d3f6; --seq-2:#9ec5f4; --seq-3:#86b6ef;
  --seq-4:#6da7ec; --seq-5:#5598e7; --seq-6:#3987e5; --seq-7:#2a78d6;
  --seq-8:#256abf; --seq-9:#1c5cab; --seq-10:#184f95; --seq-11:#104281;
  --seq-12:#0d366b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --ring: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    /* sequential reverses so near-zero recedes into the dark surface */
    --seq-0:#0d366b; --seq-1:#104281; --seq-2:#184f95; --seq-3:#1c5cab;
    --seq-4:#256abf; --seq-5:#2a78d6; --seq-6:#3987e5; --seq-7:#5598e7;
    --seq-8:#6da7ec; --seq-9:#86b6ef; --seq-10:#9ec5f4; --seq-11:#b7d3f6;
    --seq-12:#cde2fb;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; color: var(--text-primary); }
.subtitle { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 16px; margin-bottom: 20px;
}
svg { width: 100%; height: auto; display: block; }
.tiles { display: grid; grid-template-columns: repeat(4, 1fr); gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 14px;
}
.tile-label { font-size: 11px; color: var(--text-secondary);
  text-transform: uppercase; letter-spacing: 0.04em; }
.tile-value { font-size: 22px; margin-top: 4px; color: var(--text-primary); }
.axis-label { font-size: 10px; fill: var(--text-muted); }
.grid { stroke: var(--grid); stroke-width: 1; }
.baseline { stroke: var(--baseline); stroke-width: 1; }
.line { stroke-width: 2; }
.line.series-1 { stroke: var(--series-1); }
.line.series-2 { stroke: var(--series-2); }
.line.series-3 { stroke: var(--series-3); }
.dot.series-1 { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
.dot.series-2 { fill: var(--series-2); stroke: var(--surface-1); stroke-width: 2; }
.dot.series-3 { fill: var(--series-3); stroke: var(--surface-1); stroke-width: 2; }
rect.series-1 { fill: var(--series-1); }
rect.series-2 { fill: var(--series-2); }
rect.series-3 { fill: var(--series-3); }
rect.status-critical { fill: var(--status-critical); }
rect.status-serious { fill: var(--status-serious); }
.fault-wash { opacity: 0.16; }
.legend { margin-top: 8px; font-size: 12px; color: var(--text-secondary); }
.chip { margin-right: 16px; white-space: nowrap; }
.swatch {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin: 0 4px; vertical-align: baseline;
}
.swatch.series-1 { background: var(--series-1); }
.swatch.series-2 { background: var(--series-2); }
.swatch.series-3 { background: var(--series-3); }
.swatch.status-serious { background: var(--status-serious); }
.swatch.status-critical { background: var(--status-critical); }
""" + "".join(
    f".q{i} {{ fill: var(--seq-{i}); }} .swatch.q{i} {{ background: var(--seq-{i}); }}\n"
    for i in range(len(_SEQ_RAMP))
) + """
.y-title { font-size: 11px; color: var(--text-muted); margin-top: 4px; }
.note { font-size: 13px; color: var(--text-secondary); }
.empty { font-size: 13px; color: var(--text-muted); font-style: italic; }
details { margin-top: 10px; font-size: 12px; color: var(--text-secondary); }
summary { cursor: pointer; }
table { border-collapse: collapse; margin-top: 8px;
  font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: 3px 14px 3px 0;
  border-bottom: 1px solid var(--grid); font-weight: normal; }
th { color: var(--text-muted); font-size: 11px; text-transform: uppercase; }
"""


def render_report(
    events: Sequence[TelemetryEvent],
    title: str = "repro telemetry report",
    source: str = "",
) -> str:
    """Render the dashboard for one telemetry event stream."""
    subtitle = (
        f"{len(events)} events · sim horizon "
        f"{_fmt_seconds(sim_horizon(events))}"
        + (f" · {source}" if source else "")
    )
    crit = None
    if any(event.kind == "serve-finish" for event in events):
        from repro.obs.critpath import analyze_critical_paths

        crit = analyze_critical_paths(events)
    sections = [
        ("", _stat_tiles(events)),
        ("Per-link utilization", _heatmap_panel(events)),
        ("Stage Gantt", _gantt_panel(events)),
        ("Bandwidth-estimator error", _estimator_panel(events)),
        ("Delivered vs. abandoned WAN bytes", _bytes_panel(events)),
        ("Per-query critical path", _critpath_panel(crit)),
        ("Contention blame (tenant × tenant)", _blame_panel(crit)),
        ("SLO burn rate", _burn_panel(events)),
        ("", _event_summary(events)),
    ]
    body = "".join(
        (f"<h2>{_esc(heading)}</h2>" if heading else "")
        + (f'<div class="panel">{content}</div>' if heading else content)
        for heading, content in sections
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        '<body class="viz-root">\n'
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="subtitle">{_esc(subtitle)}</p>\n'
        f"{body}\n"
        "</body></html>\n"
    )


def write_report(
    events: Sequence[TelemetryEvent],
    path: str,
    title: str = "repro telemetry report",
    source: str = "",
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_report(events, title=title, source=source))
