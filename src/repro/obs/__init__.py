"""Observability: tracing, metrics and instrumentation (`repro.obs`).

Bohr's whole argument is a latency decomposition — QCT dominated by WAN
shuffle, similarity checking "a small fraction of QCT", the LP solving
fast enough to run per query.  This package makes that decomposition a
first-class, machine-readable artifact instead of a post-hoc guess:

* :mod:`repro.obs.span` / :mod:`repro.obs.tracer` — hierarchical spans
  (``experiment > query > probe/lp/map/shuffle/reduce``) carrying both
  wall-clock and simulated-clock intervals;
* :mod:`repro.obs.metrics` — counters, gauges and labeled histograms
  (bytes shuffled per link, combiner hit rate, LP iterations, ...);
* :mod:`repro.obs.export` — JSONL and Chrome ``chrome://tracing``
  trace-event export, with JSONL round-trip loading;
* :mod:`repro.obs.instrument` — the process-wide instrumentation slot;
  the default is a no-op, so uninstrumented runs pay ~zero cost;
* :mod:`repro.obs.sanitize` — the runtime invariant sanitizer (bytes
  conservation, sim-clock monotonicity, LP feasibility) behind the CLI
  ``--sanitize`` flag;
* :mod:`repro.obs.inspect` — per-stage latency breakdown of a saved
  trace (the ``python -m repro inspect`` command).
"""

from repro.obs.instrument import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    current,
    instrumented,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.sanitize import NULL_SANITIZER, NullSanitizer, Sanitizer
from repro.obs.span import Span
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NULL_METRICS",
    "NULL_SANITIZER",
    "NULL_TRACER",
    "NullMetrics",
    "NullSanitizer",
    "NullTracer",
    "Sanitizer",
    "Span",
    "Tracer",
    "current",
    "instrumented",
]
