"""Observability: tracing, metrics and instrumentation (`repro.obs`).

Bohr's whole argument is a latency decomposition — QCT dominated by WAN
shuffle, similarity checking "a small fraction of QCT", the LP solving
fast enough to run per query.  This package makes that decomposition a
first-class, machine-readable artifact instead of a post-hoc guess:

* :mod:`repro.obs.span` / :mod:`repro.obs.tracer` — hierarchical spans
  (``experiment > query > probe/lp/map/shuffle/reduce``) carrying both
  wall-clock and simulated-clock intervals;
* :mod:`repro.obs.metrics` — counters, gauges and labeled histograms
  (bytes shuffled per link, combiner hit rate, LP iterations, ...);
* :mod:`repro.obs.export` — JSONL and Chrome ``chrome://tracing``
  trace-event export, with JSONL round-trip loading;
* :mod:`repro.obs.instrument` — the process-wide instrumentation slot;
  the default is a no-op, so uninstrumented runs pay ~zero cost;
* :mod:`repro.obs.sanitize` — the runtime invariant sanitizer (bytes
  conservation, sim-clock monotonicity, LP feasibility) behind the CLI
  ``--sanitize`` flag;
* :mod:`repro.obs.inspect` — per-stage latency breakdown of a saved
  trace (the ``python -m repro inspect`` command);
* :mod:`repro.obs.telemetry` — the streaming runtime event bus behind
  ``--telemetry`` (flow/link/stage/fault/plan events, versioned JSONL);
* :mod:`repro.obs.series` — derivations from event streams to sim-time
  time-series (link utilization, site busy fraction, estimator error);
* :mod:`repro.obs.report_html` / :mod:`repro.obs.top` — the static
  ``repro report`` dashboard and the live ``repro top`` terminal view.
"""

from repro.obs.instrument import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    current,
    instrumented,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.sanitize import NULL_SANITIZER, NullSanitizer, Sanitizer
from repro.obs.span import Span
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetryBus,
    TelemetryBus,
    TelemetryEvent,
    telemetry_digest,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NULL_METRICS",
    "NULL_SANITIZER",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullMetrics",
    "NullSanitizer",
    "NullTelemetryBus",
    "NullTracer",
    "Sanitizer",
    "Span",
    "TelemetryBus",
    "TelemetryEvent",
    "Tracer",
    "current",
    "instrumented",
    "telemetry_digest",
]
