"""Per-query critical-path reconstruction over serve telemetry archives.

Under the multi-tenant serve loop a query's QCT is no longer "map +
shuffle + reduce": it queues behind WFQ admission, waits for executor
slots, and shares every WAN link with co-running tenants.  This module
replays a (v2/v3) telemetry event stream *after* the run and rebuilds,
for every served query, the exact chain of waits that produced its QCT:

``queue wait -> slot wait -> map/combine compute -> WAN shuffle ->
reduce``

with the WAN term split into the *uncontended serial* time (what the
critical flow would have taken alone, integrated over the link-sample
capacity segments the water-filling loop emitted) and the
*contention-induced delay* (the rest).  Every boundary in the chain is
an event timestamp, so the components telescope: they sum to the
query's QCT within 1e-9, and :meth:`repro.obs.sanitize.Sanitizer.
check_critical_path` enforces that conservation contract when the
sanitizer is armed.

On top of the decomposition the analyzer attributes each query's
contention delay (slot wait + WAN contention) to the tenants whose work
co-occupied the contended slots/links during the relevant segments — a
tenant x tenant blame matrix, weighted by co-occupancy overlap seconds.

Everything here is a pure reader (R011): the analyzer consumes an event
sequence and produces a report; it never touches engine/wan/serve
state.  Two same-seed runs produce bit-identical :meth:`CritPathReport.
digest` values (the CI serve-smoke gate).
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import instrument
from repro.obs.telemetry import TelemetryEvent

#: Absolute slack when matching event timestamps (mirrors the
#: sanitizer's sim-clock tolerance).
_TOL = 1e-9

#: Path components in critical-path order; also the digest column order.
COMPONENTS = (
    "queue_wait",
    "slot_wait",
    "map_seconds",
    "wan_serial",
    "wan_contention",
    "reduce_seconds",
    "cached_seconds",
)


@dataclass(frozen=True)
class QueryPath:
    """One query's reconstructed critical path (all sim seconds)."""

    index: int
    tenant: str
    dataset: str
    status: str  # "executed" | "cached"
    bound: str  # "wan" | "compute" | "cache"
    arrival: float
    finish: float
    qct: float
    queue_wait: float
    slot_wait: float
    map_seconds: float
    wan_serial: float
    wan_contention: float
    reduce_seconds: float
    cached_seconds: float
    crit_site: str = ""  # site whose reduce (or map) ended last
    crit_src: str = ""  # source site of the critical inbound flow

    @property
    def components(self) -> Tuple[float, ...]:
        return tuple(getattr(self, name) for name in COMPONENTS)

    @property
    def total(self) -> float:
        """Sum of all components (must equal :attr:`qct` within 1e-9)."""
        return math.fsum(self.components)

    @property
    def residual(self) -> float:
        """Conservation error: component sum minus the reported QCT."""
        return self.total - self.qct

    @property
    def contention_seconds(self) -> float:
        """The blameable share of the path: slot wait + WAN contention."""
        return self.slot_wait + self.wan_contention


@dataclass
class CritPathReport:
    """Every query's path plus the aggregated tenant blame matrix."""

    paths: List[QueryPath] = field(default_factory=list)
    #: victim tenant -> culprit tenant -> attributed contention seconds.
    blame: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: query index -> culprit tenant -> attributed contention seconds.
    query_blame: Dict[int, Dict[str, float]] = field(default_factory=dict)
    tenants: List[str] = field(default_factory=list)

    def component_totals(self) -> Dict[str, float]:
        totals = {name: 0.0 for name in COMPONENTS}
        for path in self.paths:
            for name in COMPONENTS:
                totals[name] += getattr(path, name)
        return totals

    def max_residual(self) -> float:
        return max((abs(path.residual) for path in self.paths), default=0.0)

    def digest(self) -> str:
        """SHA-256 over every path row and blame cell (sim clock only)."""
        digest = hashlib.sha256()
        for path in self.paths:
            fields = [
                str(path.index),
                path.tenant,
                path.dataset,
                path.status,
                path.bound,
                path.crit_site,
                path.crit_src,
                _canonical(path.arrival),
                _canonical(path.finish),
                _canonical(path.qct),
            ]
            fields.extend(_canonical(value) for value in path.components)
            digest.update("|".join(fields).encode())
            digest.update(b"\n")
        for victim in sorted(self.blame):
            for culprit in sorted(self.blame[victim]):
                cell = self.blame[victim][culprit]
                digest.update(
                    f"blame|{victim}|{culprit}|{_canonical(cell)}\n".encode()
                )
        return digest.hexdigest()

    def to_dict(self) -> Dict:
        return {
            "queries": [
                {
                    "index": path.index,
                    "tenant": path.tenant,
                    "dataset": path.dataset,
                    "status": path.status,
                    "bound": path.bound,
                    "crit_site": path.crit_site,
                    "crit_src": path.crit_src,
                    "arrival": path.arrival,
                    "finish": path.finish,
                    "qct": path.qct,
                    "residual": path.residual,
                    **{name: getattr(path, name) for name in COMPONENTS},
                }
                for path in self.paths
            ],
            "component_totals": self.component_totals(),
            "blame": {
                victim: dict(sorted(culprits.items()))
                for victim, culprits in sorted(self.blame.items())
            },
            "tenants": list(self.tenants),
            "max_residual": self.max_residual(),
            "digest": self.digest(),
        }


def _canonical(value: float) -> str:
    return format(float(value), ".12e")


# ----------------------------------------------------------------------
# event indexing
# ----------------------------------------------------------------------


@dataclass
class _Flow:
    """One WAN/LAN flow reassembled from flow-start/flow-finish pairs."""

    tag: str
    src: str
    dst: str
    num_bytes: float
    start: float
    finish: float = math.nan
    wan: bool = True


class _EventIndex:
    """Single-pass index of everything the analyzer needs."""

    def __init__(self, events: Sequence[TelemetryEvent]) -> None:
        self.arrival: Dict[int, float] = {}
        self.admit: Dict[int, float] = {}
        self.queue_seconds: Dict[int, float] = {}
        self.start: Dict[int, float] = {}
        self.finish: Dict[int, Tuple[float, float, bool, str, str]] = {}
        # job tag -> site -> (start, end)
        self.map_spans: Dict[str, Dict[str, Tuple[float, float]]] = {}
        self.reduce_spans: Dict[str, Dict[str, Tuple[float, float]]] = {}
        self.flows: List[_Flow] = []
        self.flows_by_tag: Dict[str, List[_Flow]] = {}
        # (direction, site) -> sorted [(t0, t1, capacity_bps), ...]
        self.link_segments: Dict[Tuple[str, str], List[Tuple[float, float, float]]] = {}
        open_flows: Dict[Tuple[str, str, str], List[_Flow]] = {}
        for event in events:
            kind, attrs, t = event.kind, event.attrs, event.t
            if kind == "serve-queue":
                self.arrival[int(attrs["query"])] = float(t)
            elif kind == "serve-admit":
                query = int(attrs["query"])
                self.admit[query] = float(t)
                self.queue_seconds[query] = float(attrs.get("queue_seconds", 0.0))
            elif kind == "serve-start":
                self.start[int(attrs["query"])] = float(t)
            elif kind == "serve-finish":
                self.finish[int(attrs["query"])] = (
                    float(t),
                    float(attrs.get("qct", 0.0)),
                    bool(attrs.get("cached", False)),
                    str(attrs.get("tenant", "")),
                    str(attrs.get("dataset", "")),
                )
            elif kind == "stage-finish":
                spans = (
                    self.map_spans
                    if attrs.get("stage") == "map"
                    else self.reduce_spans
                )
                job = str(attrs.get("job", ""))
                spans.setdefault(job, {})[str(attrs["site"])] = (
                    float(attrs.get("start", t)),
                    float(t),
                )
            elif kind == "flow-start":
                flow = _Flow(
                    tag=str(attrs.get("tag", "")),
                    src=str(attrs["src"]),
                    dst=str(attrs["dst"]),
                    num_bytes=float(attrs.get("num_bytes", 0.0)),
                    start=float(t),
                    wan=bool(attrs.get("wan", True)),
                )
                self.flows.append(flow)
                self.flows_by_tag.setdefault(flow.tag, []).append(flow)
                open_flows.setdefault((flow.tag, flow.src, flow.dst), []).append(flow)
            elif kind in ("flow-finish", "flow-fail"):
                key = (
                    str(attrs.get("tag", "")),
                    str(attrs["src"]),
                    str(attrs["dst"]),
                )
                started = open_flows.get(key)
                if started:
                    started.pop(0).finish = float(t)
            elif kind == "link-sample":
                t0 = float(t)
                t1 = t0 + float(attrs.get("dt", 0.0))
                self.link_segments.setdefault(
                    (str(attrs["direction"]), str(attrs["site"])), []
                ).append((t0, t1, float(attrs.get("capacity_bps", 0.0))))
        for segments in self.link_segments.values():
            segments.sort()


def _capacity_at(
    when: float, segments: Optional[List[Tuple[float, float, float]]]
) -> Optional[float]:
    """Piecewise-constant capacity lookup; holds the last value in gaps."""
    if not segments:
        return None
    position = bisect_right(segments, (when, math.inf, math.inf))
    if position == 0:
        return segments[0][2]
    return segments[position - 1][2]


def _solo_seconds(
    start: float,
    end: float,
    num_bytes: float,
    up_segments: Optional[List[Tuple[float, float, float]]],
    down_segments: Optional[List[Tuple[float, float, float]]],
) -> float:
    """Time the flow would take alone: bytes over min(link capacities).

    Integrates the bottleneck capacity (the tighter of the source uplink
    and destination downlink, both piecewise constant over the coalesced
    link-sample segments) from the flow's start until ``num_bytes`` are
    carried.  Max-min fair sharing never hands a flow more than link
    capacity, so the solo time is a lower bound on the observed time;
    the result is clamped into ``[0, end - start]`` regardless.
    """
    total = end - start
    if num_bytes <= 0.0 or total <= _TOL:
        return max(total, 0.0)
    if up_segments is None and down_segments is None:
        return total  # no link samples: a LAN hop, nothing was shared
    boundaries = {start, end}
    for segments in (up_segments, down_segments):
        for t0, t1, _capacity in segments or ():
            if start < t0 < end:
                boundaries.add(t0)
            if start < t1 < end:
                boundaries.add(t1)
    ordered = sorted(boundaries)
    carried = 0.0
    elapsed = 0.0
    for left, right in zip(ordered, ordered[1:]):
        capacities = [
            capacity
            for capacity in (
                _capacity_at(left, up_segments),
                _capacity_at(left, down_segments),
            )
            if capacity is not None
        ]
        rate = min(capacities) if capacities else 0.0
        if rate <= 0.0:
            elapsed += right - left
            continue
        chunk = rate * (right - left)
        if carried + chunk >= num_bytes:
            elapsed += (num_bytes - carried) / rate
            return min(max(elapsed, 0.0), total)
        carried += chunk
        elapsed += right - left
    return total  # capacity never covered the bytes: no contention slack


# ----------------------------------------------------------------------
# the analyzer
# ----------------------------------------------------------------------


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def analyze_critical_paths(events: Sequence[TelemetryEvent]) -> CritPathReport:
    """Rebuild every served query's critical path from one event stream.

    Conservation (components sum to the serve-finish ``qct`` within
    1e-9) is verified through the armed sanitizer's
    ``check_critical_path`` invariant for every query.
    """
    index = _EventIndex(events)
    report = CritPathReport()
    tenants = sorted(
        {meta[3] for meta in index.finish.values() if meta[3]}
    )
    report.tenants = tenants
    sanitizer = instrument.current().sanitizer
    for query in sorted(index.finish):
        finish, qct, cached, tenant, dataset = index.finish[query]
        if cached:
            path = QueryPath(
                index=query,
                tenant=tenant,
                dataset=dataset,
                status="cached",
                bound="cache",
                arrival=finish - qct,
                finish=finish,
                qct=qct,
                queue_wait=0.0,
                slot_wait=0.0,
                map_seconds=0.0,
                wan_serial=0.0,
                wan_contention=0.0,
                reduce_seconds=0.0,
                cached_seconds=qct,
            )
        else:
            path = _executed_path(index, query, finish, qct, tenant, dataset)
        if sanitizer.enabled:
            sanitizer.check_critical_path(path)
        report.paths.append(path)
        culprits = _blame_query(index, path, tenant)
        if culprits:
            report.query_blame[query] = culprits
            victim = report.blame.setdefault(tenant, {})
            for culprit, seconds in culprits.items():
                victim[culprit] = victim.get(culprit, 0.0) + seconds
    return report


def _executed_path(
    index: _EventIndex,
    query: int,
    finish: float,
    qct: float,
    tenant: str,
    dataset: str,
) -> QueryPath:
    job = f"q{query}"
    admit = index.admit.get(query, finish)
    arrival = index.arrival.get(query, admit - index.queue_seconds.get(query, 0.0))
    start = index.start.get(query, admit)
    reduce_spans = index.reduce_spans.get(job, {})
    map_spans = index.map_spans.get(job, {})
    # The critical site is the one whose reduce ended at the query
    # finish; with no reduce phase (nothing received) it is the site
    # whose map ended last.
    crit_site = ""
    anchor = finish
    reduce_seconds = 0.0
    for site in sorted(reduce_spans):
        span_start, span_end = reduce_spans[site]
        if abs(span_end - finish) <= _TOL:
            crit_site = site
            anchor = span_start
            reduce_seconds = finish - span_start
            break
    if not crit_site:
        for site in sorted(map_spans):
            if abs(map_spans[site][1] - finish) <= _TOL:
                crit_site = site
                break
    # WAN-bound iff the last inbound flow at the critical site gated the
    # reduce start (it arrived at/after the site's own map end).
    crit_flow: Optional[_Flow] = None
    if crit_site:
        map_end = map_spans.get(crit_site, (start, start))[1]
        inbound = [
            flow
            for flow in index.flows_by_tag.get(job, [])
            if flow.dst == crit_site and not math.isnan(flow.finish)
        ]
        if inbound:
            last = max(inbound, key=lambda flow: (flow.finish, flow.src))
            if (
                last.finish >= map_end - _TOL
                and abs(last.finish - anchor) <= _TOL
            ):
                crit_flow = last
    if crit_flow is not None:
        map_seconds = crit_flow.start - start
        wan_total = anchor - crit_flow.start
        links = index.link_segments
        serial = _solo_seconds(
            crit_flow.start,
            crit_flow.finish,
            crit_flow.num_bytes,
            links.get(("up", crit_flow.src)) if crit_flow.wan else None,
            links.get(("down", crit_flow.dst)) if crit_flow.wan else None,
        )
        serial = min(serial, wan_total)
        bound = "wan"
        crit_src = crit_flow.src
    else:
        map_seconds = anchor - start
        wan_total = 0.0
        serial = 0.0
        bound = "compute"
        crit_src = ""
    return QueryPath(
        index=query,
        tenant=tenant,
        dataset=dataset,
        status="executed",
        bound=bound,
        arrival=arrival,
        finish=finish,
        qct=qct,
        queue_wait=admit - arrival,
        slot_wait=start - admit,
        map_seconds=map_seconds,
        wan_serial=serial,
        wan_contention=wan_total - serial,
        reduce_seconds=reduce_seconds,
        cached_seconds=0.0,
        crit_site=crit_site,
        crit_src=crit_src,
    )


def _blame_query(
    index: _EventIndex, path: QueryPath, tenant: str
) -> Dict[str, float]:
    """Split one query's contention seconds across co-occupying tenants.

    Slot wait is attributed by overlap of other queries' map stages with
    the wait window; WAN contention by overlap of other WAN flows on the
    critical flow's two links with the critical flow's lifetime.  Weight
    is overlap seconds; with no co-occupant on record the delay is
    self-attributed so the blame matrix conserves contention seconds.
    """
    blame: Dict[str, float] = {}
    job = f"q{path.index}"
    tenant_of = {
        query: meta[3] for query, meta in index.finish.items()
    }
    if path.slot_wait > _TOL:
        window0 = path.arrival + path.queue_wait  # == admit
        window1 = window0 + path.slot_wait  # == start
        weights: Dict[str, float] = {}
        for other_job, spans in index.map_spans.items():
            if other_job == job or not other_job.startswith("q"):
                continue
            try:
                other_query = int(other_job[1:])
            except ValueError:
                continue
            other_tenant = tenant_of.get(other_query, "")
            if not other_tenant:
                continue
            shared = sum(
                _overlap(span[0], span[1], window0, window1)
                for span in spans.values()
            )
            if shared > 0.0:
                weights[other_tenant] = weights.get(other_tenant, 0.0) + shared
        _distribute(blame, path.slot_wait, weights, tenant)
    if path.wan_contention > _TOL and path.crit_src:
        crit = next(
            (
                flow
                for flow in index.flows_by_tag.get(job, [])
                if flow.src == path.crit_src and flow.dst == path.crit_site
            ),
            None,
        )
        if crit is not None:
            weights = {}
            for flow in index.flows:
                if flow is crit or not flow.wan or math.isnan(flow.finish):
                    continue
                if flow.src != crit.src and flow.dst != crit.dst:
                    continue
                shared = _overlap(flow.start, flow.finish, crit.start, crit.finish)
                if shared <= 0.0:
                    continue
                try:
                    other_tenant = tenant_of.get(int(flow.tag[1:]), "")
                except (ValueError, IndexError):
                    other_tenant = ""
                if other_tenant:
                    weights[other_tenant] = weights.get(other_tenant, 0.0) + shared
            _distribute(blame, path.wan_contention, weights, tenant)
        else:
            _distribute(blame, path.wan_contention, {}, tenant)
    return blame


def _distribute(
    blame: Dict[str, float],
    seconds: float,
    weights: Dict[str, float],
    fallback: str,
) -> None:
    total = math.fsum(weights.values())
    if total <= 0.0:
        blame[fallback] = blame.get(fallback, 0.0) + seconds
        return
    for culprit in sorted(weights):
        share = seconds * (weights[culprit] / total)
        blame[culprit] = blame.get(culprit, 0.0) + share


def emit_blame(report: CritPathReport, bus) -> int:
    """Append one ``slo-blame`` event per blamed query to ``bus``.

    Events land in (finish, index) order so two same-seed runs produce
    byte-identical archives; returns the number of events emitted.
    """
    emitted = 0
    ordered = sorted(report.paths, key=lambda path: (path.finish, path.index))
    for path in ordered:
        culprits = report.query_blame.get(path.index)
        if not culprits:
            continue
        top = max(sorted(culprits), key=lambda name: culprits[name])
        total = math.fsum(culprits.values())
        bus.emit(
            "slo-blame",
            t=path.finish,
            tenant=path.tenant,
            query=path.index,
            culprit=top,
            seconds=total,
            share=culprits[top] / total if total > 0 else 0.0,
            slot_wait=path.slot_wait,
            wan_contention=path.wan_contention,
        )
        emitted += 1
    return emitted
