"""Bohr: similarity aware geo-distributed data analytics (CoNEXT 2018).

A complete reproduction of the Bohr system and every substrate it needs:
a WAN simulator, an OLAP cube store, probe-based similarity checking, a
record-level map/combine/shuffle/reduce engine, joint data/task placement
LPs, the Iridium baseline, and the paper's three benchmark workloads.

Quickstart::

    from repro import ec2_ten_sites, make_system, SystemConfig
    from repro.workloads import build_workload

    topology = ec2_ten_sites()
    workload = build_workload("bigdata-aggregation", topology)
    bohr = make_system("bohr", topology, SystemConfig(lag_seconds=120))
    report = bohr.prepare(workload)           # cubes, probes, LP, movement
    results = bohr.run_all_queries(workload)  # engine execution
    print(sum(r.qct for r in results) / len(results))
"""

from repro.core.controller import Controller, PreparationReport
from repro.core.dynamic import initial_workload_from_feeds, run_dynamic
from repro.core.runner import ExperimentResult, run_experiment
from repro.engine.job import JobResult, MapReduceEngine
from repro.engine.spec import MapReduceSpec
from repro.errors import ReproError
from repro.olap.cube import OLAPCube
from repro.placement.iridium import IridiumPlanner
from repro.placement.joint import JointPlanner
from repro.placement.model import PlacementProblem
from repro.query.parser import parse_sql
from repro.query.spec import QueryClass, QuerySpec, RecurringQuery
from repro.systems.base import SystemConfig, SystemProfile
from repro.systems.registry import SCHEME_NAMES, make_system, profile_for
from repro.types import DatasetCatalog, GeoDataset, Record, Schema
from repro.wan.presets import ec2_ten_sites, uniform_sites
from repro.wan.topology import Site, WanTopology

__version__ = "0.1.0"

__all__ = [
    "Controller",
    "DatasetCatalog",
    "ExperimentResult",
    "GeoDataset",
    "IridiumPlanner",
    "JobResult",
    "JointPlanner",
    "MapReduceEngine",
    "MapReduceSpec",
    "OLAPCube",
    "PlacementProblem",
    "PreparationReport",
    "QueryClass",
    "QuerySpec",
    "Record",
    "RecurringQuery",
    "ReproError",
    "SCHEME_NAMES",
    "Schema",
    "Site",
    "SystemConfig",
    "SystemProfile",
    "WanTopology",
    "ec2_ten_sites",
    "initial_workload_from_feeds",
    "make_system",
    "parse_sql",
    "profile_for",
    "run_dynamic",
    "run_experiment",
    "uniform_sites",
]
