"""Shared utilities: units, seeded RNG helpers, statistics, ASCII tables."""

from repro.util.rng import derive_rng, spawn_seeds
from repro.util.stats import RunningStats, mean, percentile, stdev
from repro.util.tabulate import format_table
from repro.util.units import (
    GB,
    KB,
    MB,
    format_bytes,
    format_rate,
    format_seconds,
    parse_bytes,
    parse_rate,
)

__all__ = [
    "GB",
    "KB",
    "MB",
    "RunningStats",
    "derive_rng",
    "format_bytes",
    "format_rate",
    "format_seconds",
    "format_table",
    "mean",
    "parse_bytes",
    "parse_rate",
    "percentile",
    "spawn_seeds",
    "stdev",
]
