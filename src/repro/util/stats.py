"""Small statistics helpers used by metrics collection and benchmarks."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input (metrics-friendly)."""
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)


def stdev(values: Iterable[float]) -> float:
    """Sample standard deviation; 0.0 when fewer than two values."""
    items = list(values)
    if len(items) < 2:
        return 0.0
    mu = mean(items)
    return math.sqrt(sum((value - mu) ** 2 for value in items) / (len(items) - 1))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100].

    Pinned edge behaviour (relied on by metrics and the SLO sketch
    parity tests): empty input returns 0.0, a single sample is every
    percentile of itself, ``pct`` outside [0, 100] clamps to the
    min/max, and a NaN ``pct`` raises rather than silently producing a
    NaN rank.
    """
    if math.isnan(pct):
        raise ValueError("percentile rank must not be NaN")
    pct = min(100.0, max(0.0, pct))
    items = sorted(values)
    if not items:
        return 0.0
    if len(items) == 1:
        return items[0]
    rank = (pct / 100.0) * (len(items) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return items[low]
    frac = rank - low
    # Clamp: the lerp can escape [low, high] by one ulp when both ends
    # are (nearly) equal subnormals.
    value = items[low] * (1.0 - frac) + items[high] * frac
    return min(max(value, items[low]), items[high])


class RunningStats:
    """Welford online mean/variance accumulator.

    Used by the bandwidth estimator and the experiment runner so long runs
    never hold every sample in memory.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        # Welford's m2 can drift a hair below zero for near-constant
        # streams; clamp so stdev never hits sqrt() of a negative.
        return max(0.0, self._m2 / (self.count - 1))

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def summary(self) -> "List[float]":
        """Return ``[count, mean, stdev, min, max]`` for report rows."""
        if not self.count:
            return [0, 0.0, 0.0, 0.0, 0.0]
        return [self.count, self.mean, self.stdev, self.minimum, self.maximum]
