"""Deterministic random-number helpers.

Experiments must be reproducible run-to-run: every stochastic component
accepts a seed, and nested components derive independent streams from the
parent seed instead of sharing a global generator.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np


def derive_rng(seed: int, *labels: object) -> np.random.Generator:
    """Return a generator seeded from ``seed`` and a tuple of labels.

    Distinct labels produce statistically independent streams, so e.g. the
    workload generator for site "tokyo" never shares a stream with "oregon"
    even though both derive from the same experiment seed.
    """
    digest = hashlib.sha256(
        ("|".join([str(seed)] + [str(label) for label in labels])).encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def spawn_seeds(seed: int, count: int) -> List[int]:
    """Derive ``count`` child seeds from ``seed`` deterministically."""
    rng = derive_rng(seed, "spawn")
    return [int(value) for value in rng.integers(0, 2**63 - 1, size=count)]
