"""Byte-size and bandwidth units with parsing and human-readable formatting.

The WAN simulator works in bytes and bytes-per-second internally.  These
helpers keep configuration readable (``parse_bytes("40GB")``) and reports
legible (``format_bytes(42_949_672_960) == "40.00GB"``).
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

_UNIT_FACTORS = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "k": KB,
    "m": MB,
    "g": GB,
    "t": TB,
}

_BYTES_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(text: "str | int | float") -> int:
    """Parse a human byte size such as ``"40GB"`` or ``"512 mb"`` into bytes.

    Numeric inputs are accepted verbatim (interpreted as bytes).  Raises
    :class:`ConfigurationError` on malformed input or negative sizes.
    """
    if isinstance(text, bool):
        raise ConfigurationError(f"cannot interpret {text!r} as a byte size")
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigurationError(f"byte size must be >= 0, got {text}")
        return int(text)
    match = _BYTES_RE.match(text)
    if not match:
        raise ConfigurationError(f"cannot parse byte size {text!r}")
    value, unit = match.groups()
    unit = unit.lower() or "b"
    if unit not in _UNIT_FACTORS:
        raise ConfigurationError(f"unknown byte unit {unit!r} in {text!r}")
    return int(float(value) * _UNIT_FACTORS[unit])


def parse_rate(text: "str | int | float") -> float:
    """Parse a bandwidth such as ``"100MB/s"`` into bytes per second."""
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        if text <= 0:
            raise ConfigurationError(f"rate must be > 0, got {text}")
        return float(text)
    stripped = str(text).strip()
    if stripped.lower().endswith("/s"):
        stripped = stripped[:-2]
    rate = float(parse_bytes(stripped))
    if rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {text!r}")
    return rate


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a binary-unit suffix, two decimals."""
    size = float(num_bytes)
    for suffix, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(size) >= factor:
            return f"{size / factor:.2f}{suffix}"
    return f"{size:.0f}B"


def format_rate(bytes_per_sec: float) -> str:
    """Format a bandwidth in bytes/second, e.g. ``"100.00MB/s"``."""
    return f"{format_bytes(bytes_per_sec)}/s"


def format_seconds(seconds: float) -> str:
    """Format a duration compactly (``"1.53s"``, ``"2m 05s"``)."""
    if seconds < 0:
        return f"-{format_seconds(-seconds)}"
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m {rem:04.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h {minutes}m {rem:04.1f}s"
