"""Minimal ASCII table rendering for benchmark reports.

The benchmark harness prints the same rows the paper's tables/figures
report; this module renders them without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def bar_chart(
    items: Sequence[tuple],
    title: Optional[str] = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart; negative values extend left of a zero
    axis (used by the data-reduction figures, which go negative at
    similarity-agnostic receiving sites)."""
    if width < 4:
        raise ValueError("width must be >= 4")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not items:
        return title or ""
    labels = [str(label) for label, _ in items]
    values = [float(value) for _, value in items]
    label_width = max(len(label) for label in labels)
    largest = max(abs(value) for value in values) or 1.0
    has_negative = any(value < 0 for value in values)
    if has_negative:
        half = width // 2
        for label, value in zip(labels, values):
            length = int(round(abs(value) / largest * half))
            if value < 0:
                bar = " " * (half - length) + "#" * length + "|" + " " * half
            else:
                bar = " " * half + "|" + "#" * length + " " * (half - length)
            lines.append(f"{label:>{label_width}s} {bar} {value:.2f}{unit}")
    else:
        for label, value in zip(labels, values):
            length = int(round(value / largest * width))
            lines.append(
                f"{label:>{label_width}s} |{'#' * length:<{width}s} "
                f"{value:.2f}{unit}"
            )
    return "\n".join(lines)


def format_table(
    rows: Iterable[Sequence[object]],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    Column widths adapt to content; floats are shown with two decimals.
    """
    text_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    if headers is not None:
        all_rows = [list(headers)] + text_rows
    else:
        all_rows = text_rows
    if not all_rows:
        return title or ""
    num_cols = max(len(row) for row in all_rows)
    widths = [0] * num_cols
    for row in all_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(row: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(row)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    if headers is not None:
        lines.append(render(all_rows[0]))
        lines.append(separator)
        body = all_rows[1:]
    else:
        body = all_rows
    for row in body:
        padded_row = list(row) + [""] * (num_cols - len(row))
        lines.append(render(padded_row))
    lines.append(separator)
    return "\n".join(lines)
