"""Image workload: the paper's second data type (§4.1).

Images cannot be aggregated directly, so Bohr extracts feature vectors
(vector space model), reduces their dimensionality with LSH, and builds
cubes over the resulting coarse buckets — images whose features land in
the same bucket are near-duplicates the combiner can merge.

This generator synthesizes clustered feature vectors (standing in for a
real extractor), runs them through :class:`CosineLSH` +
:func:`feature_bucket`, and emits records whose ``bucket`` attribute is
the cube key.  Everything downstream — probes, similarity checking,
placement, execution — is the ordinary Bohr pipeline.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.query.parser import parse_sql
from repro.query.spec import RecurringQuery
from repro.similarity.lsh import CosineLSH
from repro.similarity.vsm import feature_bucket, synthetic_image_features
from repro.types import DatasetCatalog, Record, Schema
from repro.util.rng import derive_rng
from repro.wan.topology import WanTopology
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.placement_init import (
    InitialPlacement,
    assign_records,
    region_names_for,
)


def image_schema() -> Schema:
    return Schema.of(
        "bucket", "label", "region", "date", "feature_norm",
        kinds={"feature_norm": "numeric"},
    )


def images_workload(
    topology: WanTopology,
    placement: InitialPlacement = InitialPlacement.RANDOM,
    seed: int = 7,
    scale: float = 1.0,
    spec: Optional[WorkloadSpec] = None,
    feature_dim: int = 64,
    num_classes: int = 12,
    lsh_bits: int = 32,
    noise: float = 0.08,
) -> Workload:
    """Build the image workload over the given topology.

    Per region, images are drawn from shared visual classes; the feature
    extractor + LSH maps near-duplicates to the same bucket, so buckets
    play the role URLs play for logs.
    """
    if scale <= 0:
        raise WorkloadError("scale must be > 0")
    spec = spec or WorkloadSpec(num_datasets=2)
    schema = image_schema()
    regions = region_names_for(topology)
    rng = derive_rng(seed, "images-workload")
    lsh = CosineLSH(input_dim=feature_dim, num_bits=lsh_bits, seed=seed)

    catalog = DatasetCatalog()
    workload = Workload(name="images", catalog=catalog)
    total_records = max(1, int(spec.records_per_site * len(topology) * scale))
    per_dataset = total_records // spec.num_datasets
    for index in range(spec.num_datasets):
        dataset_id = f"images-{index}"
        records = _generate_image_records(
            dataset_id, regions, per_dataset, spec.record_bytes,
            lsh, feature_dim, num_classes, noise, seed + index,
        )
        dataset = assign_records(
            dataset_id, schema, records, topology, placement, seed=seed + index
        )
        catalog.add(dataset)
        workload.schemas[dataset_id] = schema

        sql_queries = [
            f"SELECT bucket, COUNT(label) FROM {dataset_id} GROUP BY bucket",
            f"SELECT label, COUNT(bucket) FROM {dataset_id} GROUP BY label",
            f"SELECT region, date, COUNT(bucket) FROM {dataset_id} "
            f"GROUP BY region, date",
        ]
        low, high = spec.queries_per_dataset
        num_queries = int(rng.integers(low, high + 1))
        for position in range(num_queries):
            query = RecurringQuery(
                spec=parse_sql(sql_queries[position % len(sql_queries)])
            )
            query.executions = int(rng.integers(1, 50))
            workload.queries.append(query)
    return workload


def _generate_image_records(
    dataset_id: str,
    regions: List[str],
    count: int,
    record_bytes: int,
    lsh: CosineLSH,
    feature_dim: int,
    num_classes: int,
    noise: float,
    seed: int,
    num_days: int = 10,
) -> List[Record]:
    features, labels = synthetic_image_features(
        count, dim=feature_dim, num_classes=num_classes, noise=noise, seed=seed
    )
    rng = derive_rng(seed, "images", dataset_id)
    days = [f"2018-07-{day:02d}" for day in range(1, num_days + 1)]
    records: List[Record] = []
    region_choices = rng.integers(0, len(regions), size=count)
    signatures = lsh.signatures(features) if count else np.zeros((0, 0))
    for position in range(count):
        signature = signatures[position]
        bucket = feature_bucket(signature.astype(float) * 2.0 - 1.0, buckets=256)
        records.append(
            Record(
                values=(
                    f"b{bucket:03d}",
                    f"class-{labels[position]}",
                    regions[int(region_choices[position])],
                    days[int(rng.integers(0, num_days))],
                    float(np.round(np.linalg.norm(features[position]), 4)),
                ),
                size_bytes=record_bytes,
            )
        )
    return records
