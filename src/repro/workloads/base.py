"""Workload container shared by all generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.query.spec import QuerySpec, RecurringQuery, query_type_weights
from repro.types import DatasetCatalog, Schema


@dataclass
class WorkloadSpec:
    """Generation knobs common to all workloads."""

    records_per_site: int = 200
    record_bytes: int = 1 * 1024 * 1024  # each record stands for 1 MB
    num_datasets: int = 3
    queries_per_dataset: Tuple[int, int] = (2, 10)  # §8.1: uniform 2..10
    locality_bias: float = 0.6
    zipf_exponent: float = 1.2

    def __post_init__(self) -> None:
        if self.records_per_site < 1:
            raise WorkloadError("records_per_site must be >= 1")
        if self.record_bytes < 1:
            raise WorkloadError("record_bytes must be >= 1")
        if self.num_datasets < 1:
            raise WorkloadError("num_datasets must be >= 1")
        low, high = self.queries_per_dataset
        if not 1 <= low <= high:
            raise WorkloadError("queries_per_dataset must satisfy 1 <= low <= high")
        if not 0.0 <= self.locality_bias <= 1.0:
            raise WorkloadError("locality_bias must be in [0, 1]")


@dataclass
class Workload:
    """Datasets + the recurring queries that access them."""

    name: str
    catalog: DatasetCatalog
    queries: List[RecurringQuery] = field(default_factory=list)
    schemas: Dict[str, Schema] = field(default_factory=dict)

    def queries_for(self, dataset_id: str) -> List[RecurringQuery]:
        return [
            query for query in self.queries if query.spec.dataset_id == dataset_id
        ]

    def schema(self, dataset_id: str) -> Schema:
        try:
            return self.schemas[dataset_id]
        except KeyError:
            raise WorkloadError(f"unknown dataset {dataset_id!r}") from None

    def primary_query(self, dataset_id: str) -> QuerySpec:
        """The dataset's dominant query (most-executed query type)."""
        queries = self.queries_for(dataset_id)
        if not queries:
            raise WorkloadError(f"dataset {dataset_id!r} has no queries")
        weights = query_type_weights(queries)
        dominant = max(weights, key=lambda key: weights[key])
        for query in queries:
            if query.spec.query_type == dominant:
                return query.spec
        raise WorkloadError("internal error: dominant type has no query")

    def key_indices(self) -> Dict[str, Tuple[int, ...]]:
        """Per-dataset key positions of the dominant query's group-by.

        Data movement selects records by these keys; queries of other
        types use their own keys at execution time.
        """
        indices: Dict[str, Tuple[int, ...]] = {}
        for dataset in self.catalog:
            spec = self.primary_query(dataset.dataset_id)
            schema = self.schema(dataset.dataset_id)
            indices[dataset.dataset_id] = tuple(
                schema.index(name) for name in spec.group_by
            )
        return indices

    def query_type_weights_for(self, dataset_id: str):
        return query_type_weights(self.queries_for(dataset_id))

    @property
    def dataset_ids(self) -> List[str]:
        return [dataset.dataset_id for dataset in self.catalog]
