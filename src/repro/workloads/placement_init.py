"""Initial placement of generated records onto sites (§8.1).

"The workloads are assigned in two ways: (1) uniformly at random; (2) in
a locality aware fashion by clustering the input data based on
attributes like date, region, etc. to the same sites to reflect the
inherent data locality from the data procurement process."
"""

from __future__ import annotations

import enum
import hashlib
from typing import List, Optional, Sequence

from repro.errors import WorkloadError
from repro.types import GeoDataset, Record, Schema
from repro.util.rng import derive_rng
from repro.wan.topology import WanTopology


class InitialPlacement(str, enum.Enum):
    """How the global record pool is dealt to sites."""

    RANDOM = "random"
    LOCALITY = "locality"


def assign_records(
    dataset_id: str,
    schema: Schema,
    records: Sequence[Record],
    topology: WanTopology,
    placement: InitialPlacement = InitialPlacement.RANDOM,
    locality_attribute: str = "region",
    seed: int = 7,
) -> GeoDataset:
    """Build a :class:`GeoDataset` by assigning records to sites.

    Random: uniform over sites.  Locality: all records sharing the
    locality attribute's value land on the same (hashed) site.
    """
    sites = topology.site_names
    if not sites:
        raise WorkloadError("topology has no sites")
    dataset = GeoDataset(dataset_id, schema)
    for site in sites:
        dataset.shards.setdefault(site, [])
    if not records:
        return dataset
    if placement is InitialPlacement.RANDOM:
        rng = derive_rng(seed, "placement", dataset_id)
        choices = rng.integers(0, len(sites), size=len(records))
        for record, choice in zip(records, choices):
            dataset.add_records(sites[int(choice)], [record])
        return dataset

    attribute_index = schema.index(locality_attribute)
    # Deal distinct locality values to sites round-robin (sorted order):
    # every value's records land on one site, and sites stay balanced —
    # hashing values directly would collide and leave sites empty.
    values = sorted({str(record.values[attribute_index]) for record in records})
    site_of_value = {
        value: sites[index % len(sites)] for index, value in enumerate(values)
    }
    for record in records:
        site = site_of_value[str(record.values[attribute_index])]
        dataset.add_records(site, [record])
    return dataset


def region_names_for(topology: WanTopology, per_site: int = 1) -> List[str]:
    """Synthetic region labels derived from site names.

    With ``per_site == 1`` locality-aware placement concentrates each
    region on (roughly) one site; more regions per site soften locality.
    """
    if per_site < 1:
        raise WorkloadError("per_site must be >= 1")
    names: List[str] = []
    for site in topology.site_names:
        for index in range(per_site):
            names.append(f"{site}-r{index}" if per_site > 1 else site)
    return names
