"""AMPLab big-data benchmark workload (§8.1, [1, 26]).

Web-log datasets with three query classes: simple scans, aggregations,
and a UDF computing simplified PageRank.  The schema matches the
benchmark's ranking/visit logs (url, score, date, region, agent).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import WorkloadError
from repro.query.parser import parse_sql
from repro.query.spec import RecurringQuery
from repro.types import DatasetCatalog
from repro.util.rng import derive_rng
from repro.wan.topology import WanTopology
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.placement_init import (
    InitialPlacement,
    assign_records,
    region_names_for,
)
from repro.workloads.synthetic import (
    SyntheticDatasetConfig,
    generate_records,
    log_schema,
)

_FLAVOURS = ("scan", "udf", "aggregation", "all")


def _queries_for_flavour(dataset_id: str, flavour: str):
    # The scan projects categorical columns, so identical projected rows
    # collapse in the combiner (numeric score would make every row unique).
    scan = parse_sql(f"SELECT url, region FROM {dataset_id}")
    udf = parse_sql(f"SELECT pagerank(url, score) FROM {dataset_id}")
    aggregation = parse_sql(
        f"SELECT url, SUM(score) FROM {dataset_id} GROUP BY url"
    )
    region_aggregation = parse_sql(
        f"SELECT region, COUNT(url) FROM {dataset_id} GROUP BY region"
    )
    if flavour == "scan":
        return [scan]
    if flavour == "udf":
        return [udf]
    if flavour == "aggregation":
        return [aggregation, region_aggregation]
    return [scan, udf, aggregation, region_aggregation]


def bigdata_workload(
    topology: WanTopology,
    placement: InitialPlacement = InitialPlacement.RANDOM,
    seed: int = 7,
    scale: float = 1.0,
    flavour: str = "all",
    spec: Optional[WorkloadSpec] = None,
) -> Workload:
    """Build the big-data workload over the given topology.

    ``flavour`` restricts the query mix to one class ("scan", "udf",
    "aggregation") or mixes all of them ("all", the default).
    """
    if flavour not in _FLAVOURS:
        raise WorkloadError(f"flavour must be one of {_FLAVOURS}, got {flavour!r}")
    if scale <= 0:
        raise WorkloadError("scale must be > 0")
    spec = spec or WorkloadSpec()
    schema = log_schema()
    regions = region_names_for(topology)
    config = SyntheticDatasetConfig(
        locality_bias=spec.locality_bias, zipf_exponent=spec.zipf_exponent
    )
    rng = derive_rng(seed, "bigdata-workload")

    catalog = DatasetCatalog()
    workload = Workload(name=f"bigdata-{flavour}", catalog=catalog)
    total_records = max(1, int(spec.records_per_site * len(topology) * scale))
    for index in range(spec.num_datasets):
        dataset_id = f"bigdata-{index}"
        records = generate_records(
            dataset_id,
            regions,
            count=total_records // spec.num_datasets,
            record_bytes=spec.record_bytes,
            config=config,
            seed=seed + index,
        )
        dataset = assign_records(
            dataset_id, schema, records, topology, placement, seed=seed + index
        )
        catalog.add(dataset)
        workload.schemas[dataset_id] = schema

        base_queries = _queries_for_flavour(dataset_id, flavour)
        low, high = spec.queries_per_dataset
        num_queries = int(rng.integers(low, high + 1))
        for position in range(num_queries):
            query_spec = base_queries[position % len(base_queries)]
            query = RecurringQuery(spec=query_spec)
            query.executions = int(rng.integers(1, 50))
            workload.queries.append(query)
    return workload
