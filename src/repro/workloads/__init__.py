"""Benchmark workloads (§8.1).

Three workload families drive the evaluation, mirroring the paper's:

- :mod:`~repro.workloads.bigdata` — the AMPLab big-data benchmark shape
  (web logs; scan / aggregation / PageRank-UDF queries);
- :mod:`~repro.workloads.tpcds` — a TPC-DS-like retail star schema with
  OLAP SQL queries;
- :mod:`~repro.workloads.facebook` — Facebook-trace-shaped jobs with
  heavy-tailed sizes and Zipf keys.

Generators produce a global record pool; :mod:`~repro.workloads.placement_init`
assigns it to sites uniformly at random or locality-aware, and
:mod:`~repro.workloads.dynamic` feeds batched arrivals for §8.6.
"""

from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.bigdata import bigdata_workload
from repro.workloads.dynamic import DynamicDataFeed
from repro.workloads.facebook import facebook_workload
from repro.workloads.images import images_workload
from repro.workloads.placement_init import InitialPlacement, assign_records
from repro.workloads.synthetic import SyntheticDatasetConfig, generate_records
from repro.workloads.tpcds import tpcds_workload

__all__ = [
    "DynamicDataFeed",
    "InitialPlacement",
    "SyntheticDatasetConfig",
    "Workload",
    "WorkloadSpec",
    "assign_records",
    "bigdata_workload",
    "facebook_workload",
    "generate_records",
    "images_workload",
    "tpcds_workload",
]


def build_workload(kind, topology, placement="random", seed=7, scale=1.0):
    """Convenience dispatcher: ``kind`` in the five paper workloads.

    ``"bigdata-scan" | "bigdata-udf" | "bigdata-aggregation" | "tpcds" |
    "facebook"``.  ``scale`` multiplies record counts (1.0 is the default
    benchmark size).
    """
    from repro.errors import WorkloadError
    from repro.workloads.placement_init import InitialPlacement

    placement_enum = InitialPlacement(placement)
    if kind.startswith("bigdata"):
        _, _, flavour = kind.partition("-")
        return bigdata_workload(
            topology, placement=placement_enum, seed=seed, scale=scale,
            flavour=flavour or "all",
        )
    if kind == "tpcds":
        return tpcds_workload(topology, placement=placement_enum, seed=seed, scale=scale)
    if kind == "facebook":
        return facebook_workload(topology, placement=placement_enum, seed=seed, scale=scale)
    if kind == "images":
        return images_workload(topology, placement=placement_enum, seed=seed, scale=scale)
    raise WorkloadError(f"unknown workload kind {kind!r}")
