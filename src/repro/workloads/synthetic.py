"""Synthetic record generation with controllable similarity structure.

Real geo-distributed logs have (a) globally popular keys following a
Zipf law and (b) regionally local keys tied to where the data was
procured.  Both matter to Bohr: popular keys give every pair of sites
some overlap, local keys give high intra-site similarity that
locality-aware placement concentrates.

Each record carries a *home region* attribute used by locality-aware
initial placement, plus key/date/agent attributes used by queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.types import Record, Schema
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class SyntheticDatasetConfig:
    """Key-space shape for one synthetic dataset."""

    num_popular_keys: int = 40
    local_keys_per_region: int = 20
    zipf_exponent: float = 1.2
    locality_bias: float = 0.6  # P(record uses a region-local key)
    num_days: int = 14
    num_agents: int = 5

    def __post_init__(self) -> None:
        if self.num_popular_keys < 1:
            raise WorkloadError("num_popular_keys must be >= 1")
        if self.local_keys_per_region < 0:
            raise WorkloadError("local_keys_per_region must be >= 0")
        if self.zipf_exponent <= 0:
            raise WorkloadError("zipf_exponent must be > 0")
        if not 0.0 <= self.locality_bias <= 1.0:
            raise WorkloadError("locality_bias must be in [0, 1]")
        if self.num_days < 1 or self.num_agents < 1:
            raise WorkloadError("num_days and num_agents must be >= 1")


def log_schema() -> Schema:
    """The web-log schema used by synthetic datasets."""
    return Schema.of(
        "url", "score", "date", "region", "agent",
        kinds={"score": "numeric"},
    )


def zipf_weights(count: int, exponent: float) -> np.ndarray:
    """Normalized Zipf probabilities over ``count`` ranks."""
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_records(
    dataset_id: str,
    regions: Sequence[str],
    count: int,
    record_bytes: int = 1024 * 1024,
    config: Optional[SyntheticDatasetConfig] = None,
    seed: int = 7,
) -> List[Record]:
    """Generate ``count`` log records spread over ``regions``.

    Each record's home region is uniform over ``regions``; its URL comes
    from the region's local key block with probability ``locality_bias``,
    otherwise from the global Zipf-popular block.  Scores, dates and
    agents are drawn independently.
    """
    if count < 0:
        raise WorkloadError("count must be >= 0")
    if not regions:
        raise WorkloadError("need at least one region")
    config = config or SyntheticDatasetConfig()
    rng = derive_rng(seed, "synthetic", dataset_id)

    popular = [f"{dataset_id}/hot-{index}" for index in range(config.num_popular_keys)]
    popular_p = zipf_weights(config.num_popular_keys, config.zipf_exponent)
    local_keys = {
        region: [
            f"{dataset_id}/{region}/local-{index}"
            for index in range(config.local_keys_per_region)
        ]
        for region in regions
    }
    days = [f"2018-06-{day:02d}" for day in range(1, config.num_days + 1)]
    agents = [f"agent-{index}" for index in range(config.num_agents)]

    records: List[Record] = []
    home_regions = rng.integers(0, len(regions), size=count)
    use_local = rng.random(count) < config.locality_bias
    for position in range(count):
        region = regions[int(home_regions[position])]
        region_local = local_keys[region]
        if use_local[position] and region_local:
            url = region_local[int(rng.integers(0, len(region_local)))]
        else:
            url = popular[int(rng.choice(config.num_popular_keys, p=popular_p))]
        record = Record(
            values=(
                url,
                float(np.round(rng.uniform(0.0, 10.0), 3)),
                days[int(rng.integers(0, len(days)))],
                region,
                agents[int(rng.integers(0, len(agents)))],
            ),
            size_bytes=record_bytes,
        )
        records.append(record)
    return records
