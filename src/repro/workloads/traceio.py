"""Dataset trace import/export (JSONL).

Downstream users bring their own logs: a trace file carries one header
line (schema + dataset id) followed by one record per line with its
site, values and serialized size.  Round-trips are exact, so generated
workloads can be frozen to disk and experiments replayed on them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.errors import WorkloadError
from repro.types import Attribute, GeoDataset, Record, Schema

_FORMAT = "repro-trace-v1"


def save_dataset(dataset: GeoDataset, schema: Schema, path: "str | Path") -> int:
    """Write one dataset as JSONL; returns the number of records written."""
    lines: List[str] = [
        json.dumps(
            {
                "format": _FORMAT,
                "dataset_id": dataset.dataset_id,
                "schema": [
                    {"name": attribute.name, "kind": attribute.kind}
                    for attribute in schema.attributes
                ],
            }
        )
    ]
    count = 0
    for site, records in dataset.shards.items():
        for record in records:
            schema.validate_record(record)
            lines.append(
                json.dumps(
                    {
                        "site": site,
                        "values": list(record.values),
                        "size_bytes": record.size_bytes,
                    }
                )
            )
            count += 1
    Path(path).write_text("\n".join(lines) + "\n")
    return count


def load_dataset(path: "str | Path") -> "tuple[GeoDataset, Schema]":
    """Read a trace file back into a dataset + schema."""
    text = Path(path).read_text()
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise WorkloadError(f"trace file {path} is empty")
    header = json.loads(lines[0])
    if header.get("format") != _FORMAT:
        raise WorkloadError(
            f"unsupported trace format {header.get('format')!r} in {path}"
        )
    schema = Schema(
        tuple(
            Attribute(column["name"], column["kind"])
            for column in header["schema"]
        )
    )
    dataset = GeoDataset(header["dataset_id"], schema)
    for line in lines[1:]:
        payload = json.loads(line)
        record = Record(
            values=tuple(payload["values"]),
            size_bytes=payload["size_bytes"],
        )
        dataset.add_records(payload["site"], [record])
    return dataset, schema


def save_catalog(
    datasets: Dict[str, "tuple[GeoDataset, Schema]"], directory: "str | Path"
) -> List[Path]:
    """Write several datasets, one trace file each, into a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for name, (dataset, schema) in datasets.items():
        path = directory / f"{name}.jsonl"
        save_dataset(dataset, schema, path)
        paths.append(path)
    return paths


def load_catalog(directory: "str | Path") -> Dict[str, "tuple[GeoDataset, Schema]"]:
    """Load every ``*.jsonl`` trace in a directory."""
    directory = Path(directory)
    if not directory.is_dir():
        raise WorkloadError(f"{directory} is not a directory")
    loaded: Dict[str, "tuple[GeoDataset, Schema]"] = {}
    for path in sorted(directory.glob("*.jsonl")):
        dataset, schema = load_dataset(path)
        loaded[dataset.dataset_id] = (dataset, schema)
    return loaded
