"""TPC-DS-like retail workload (§8.1, [6]).

A star-schema fact table (store_sales) whose business model is a retail
product supplier: items follow a global Zipf popularity, stores are
regional, dates span a sales period.  Queries are the OLAP SQL kind —
revenue by item, by store, by (store, date).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.query.parser import parse_sql
from repro.query.spec import RecurringQuery
from repro.types import DatasetCatalog, Record, Schema
from repro.util.rng import derive_rng
from repro.wan.topology import WanTopology
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.placement_init import (
    InitialPlacement,
    assign_records,
    region_names_for,
)
from repro.workloads.synthetic import zipf_weights


def sales_schema() -> Schema:
    return Schema.of(
        "item", "store", "date", "region", "quantity", "revenue",
        kinds={"quantity": "numeric", "revenue": "numeric"},
    )


def _generate_sales(
    dataset_id: str,
    regions: List[str],
    count: int,
    record_bytes: int,
    seed: int,
    num_items: int = 60,
    stores_per_region: int = 3,
    num_days: int = 30,
    zipf_exponent: float = 1.1,
) -> List[Record]:
    rng = derive_rng(seed, "tpcds", dataset_id)
    items = [f"item-{index}" for index in range(num_items)]
    item_p = zipf_weights(num_items, zipf_exponent)
    days = [f"2018-05-{day:02d}" for day in range(1, num_days + 1)]
    records: List[Record] = []
    region_choices = rng.integers(0, len(regions), size=count)
    for position in range(count):
        region = regions[int(region_choices[position])]
        store = f"{region}/store-{int(rng.integers(0, stores_per_region))}"
        records.append(
            Record(
                values=(
                    items[int(rng.choice(num_items, p=item_p))],
                    store,
                    days[int(rng.integers(0, num_days))],
                    region,
                    int(rng.integers(1, 10)),
                    float(np.round(rng.uniform(1.0, 500.0), 2)),
                ),
                size_bytes=record_bytes,
            )
        )
    return records


def tpcds_workload(
    topology: WanTopology,
    placement: InitialPlacement = InitialPlacement.RANDOM,
    seed: int = 7,
    scale: float = 1.0,
    spec: Optional[WorkloadSpec] = None,
) -> Workload:
    """Build the TPC-DS-like workload."""
    if scale <= 0:
        raise WorkloadError("scale must be > 0")
    spec = spec or WorkloadSpec()
    schema = sales_schema()
    regions = region_names_for(topology)
    rng = derive_rng(seed, "tpcds-workload")

    catalog = DatasetCatalog()
    workload = Workload(name="tpcds", catalog=catalog)
    total_records = max(1, int(spec.records_per_site * len(topology) * scale))
    for index in range(spec.num_datasets):
        dataset_id = f"store_sales_{index}"
        records = _generate_sales(
            dataset_id,
            regions,
            count=total_records // spec.num_datasets,
            record_bytes=spec.record_bytes,
            seed=seed + index,
        )
        dataset = assign_records(
            dataset_id, schema, records, topology, placement, seed=seed + index
        )
        catalog.add(dataset)
        workload.schemas[dataset_id] = schema

        sql_queries = [
            f"SELECT item, SUM(revenue) FROM {dataset_id} GROUP BY item",
            f"SELECT store, SUM(revenue) FROM {dataset_id} GROUP BY store",
            f"SELECT store, date, SUM(quantity) FROM {dataset_id} GROUP BY store, date",
            f"SELECT region, AVG(revenue) FROM {dataset_id} GROUP BY region",
        ]
        low, high = spec.queries_per_dataset
        num_queries = int(rng.integers(low, high + 1))
        for position in range(num_queries):
            query = RecurringQuery(spec=parse_sql(sql_queries[position % len(sql_queries)]))
            query.executions = int(rng.integers(1, 50))
            workload.queries.append(query)
    return workload
