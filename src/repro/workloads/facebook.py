"""Facebook-trace-shaped workload (§8.1).

The paper replays 1.5 months of Hadoop traces from a 3000-machine
Facebook cluster.  We reproduce the statistics that matter to placement:
many datasets with heavy-tailed (lognormal) sizes, Zipf-skewed keys, and
a small number of aggregation-style query types per dataset.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.query.parser import parse_sql
from repro.query.spec import RecurringQuery
from repro.types import DatasetCatalog, Record, Schema
from repro.util.rng import derive_rng
from repro.wan.topology import WanTopology
from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.placement_init import (
    InitialPlacement,
    assign_records,
    region_names_for,
)
from repro.workloads.synthetic import zipf_weights


def trace_schema() -> Schema:
    return Schema.of(
        "key", "user", "date", "region", "bytes_read",
        kinds={"bytes_read": "numeric"},
    )


def facebook_workload(
    topology: WanTopology,
    placement: InitialPlacement = InitialPlacement.RANDOM,
    seed: int = 7,
    scale: float = 1.0,
    spec: Optional[WorkloadSpec] = None,
    size_sigma: float = 0.8,
) -> Workload:
    """Build the trace-shaped workload.

    Dataset sizes are lognormal around the mean (heavy tail: a few big
    datasets dominate, like production traces); keys are Zipf within each
    dataset.
    """
    if scale <= 0:
        raise WorkloadError("scale must be > 0")
    spec = spec or WorkloadSpec(num_datasets=6)
    schema = trace_schema()
    regions = region_names_for(topology)
    rng = derive_rng(seed, "facebook-workload")

    catalog = DatasetCatalog()
    workload = Workload(name="facebook", catalog=catalog)
    mean_records = max(
        1, int(spec.records_per_site * len(topology) * scale / spec.num_datasets)
    )
    raw_sizes = rng.lognormal(mean=0.0, sigma=size_sigma, size=spec.num_datasets)
    sizes = np.maximum(
        1, (raw_sizes / raw_sizes.mean() * mean_records).astype(int)
    )

    for index in range(spec.num_datasets):
        dataset_id = f"fbtrace-{index}"
        records = _generate_trace_records(
            dataset_id,
            regions,
            count=int(sizes[index]),
            record_bytes=spec.record_bytes,
            zipf_exponent=spec.zipf_exponent,
            seed=seed + index,
        )
        dataset = assign_records(
            dataset_id, schema, records, topology, placement, seed=seed + index
        )
        catalog.add(dataset)
        workload.schemas[dataset_id] = schema

        sql_queries = [
            f"SELECT key, SUM(bytes_read) FROM {dataset_id} GROUP BY key",
            f"SELECT user, COUNT(key) FROM {dataset_id} GROUP BY user",
            f"SELECT date, SUM(bytes_read) FROM {dataset_id} GROUP BY date",
        ]
        low, high = spec.queries_per_dataset
        num_queries = int(rng.integers(low, high + 1))
        for position in range(num_queries):
            query = RecurringQuery(
                spec=parse_sql(sql_queries[position % len(sql_queries)])
            )
            query.executions = int(rng.integers(1, 50))
            workload.queries.append(query)
    return workload


def _generate_trace_records(
    dataset_id: str,
    regions: List[str],
    count: int,
    record_bytes: int,
    zipf_exponent: float,
    seed: int,
    num_keys: int = 50,
    num_users: int = 20,
    num_days: int = 45,
) -> List[Record]:
    rng = derive_rng(seed, "fbtrace", dataset_id)
    keys = [f"{dataset_id}/job-{index}" for index in range(num_keys)]
    key_p = zipf_weights(num_keys, zipf_exponent)
    days = [f"2010-10-{day:02d}" if day <= 31 else f"2010-11-{day - 31:02d}"
            for day in range(1, num_days + 1)]
    records: List[Record] = []
    region_choices = rng.integers(0, len(regions), size=count)
    for position in range(count):
        records.append(
            Record(
                values=(
                    keys[int(rng.choice(num_keys, p=key_p))],
                    f"user-{int(rng.integers(0, num_users))}",
                    days[int(rng.integers(0, num_days))],
                    regions[int(region_choices[position])],
                    float(np.round(rng.lognormal(10.0, 1.0), 0)),
                ),
                size_bytes=record_bytes,
            )
        )
    return records
