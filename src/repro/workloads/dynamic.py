"""Highly dynamic datasets (§8.6, Table 7).

The paper splits each node's 40 GB into a 10 GB initial part plus 2 GB
batches arriving every 20 seconds (also the query interval).  The feed
slices a pre-generated dataset the same way: an initial fraction applied
up front, then equal batches drained one per interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import WorkloadError
from repro.types import GeoDataset, Record


@dataclass
class DynamicDataFeed:
    """Batched arrival schedule for one dataset."""

    initial: Dict[str, List[Record]]
    batches: List[Dict[str, List[Record]]]
    interval_seconds: float = 20.0
    _applied_batches: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise WorkloadError("interval_seconds must be > 0")

    @classmethod
    def split(
        cls,
        dataset: GeoDataset,
        initial_fraction: float = 0.25,
        num_batches: int = 15,
        interval_seconds: float = 20.0,
    ) -> "DynamicDataFeed":
        """Slice a fully-generated dataset into initial + batches.

        Per site: the first ``initial_fraction`` of records form the
        initial placement; the rest split into ``num_batches`` equal
        batches (the paper's 10 GB + 15 x 2 GB shape uses 0.25 and 15).
        """
        if not 0.0 < initial_fraction <= 1.0:
            raise WorkloadError("initial_fraction must be in (0, 1]")
        if num_batches < 1:
            raise WorkloadError("num_batches must be >= 1")
        initial: Dict[str, List[Record]] = {}
        batches: List[Dict[str, List[Record]]] = [
            {} for _ in range(num_batches)
        ]
        for site, records in dataset.shards.items():
            split_at = int(len(records) * initial_fraction)
            initial[site] = list(records[:split_at])
            rest = records[split_at:]
            if not rest:
                continue
            per_batch = max(1, len(rest) // num_batches)
            for index in range(num_batches):
                start = index * per_batch
                end = start + per_batch if index < num_batches - 1 else len(rest)
                if start >= len(rest):
                    break
                batches[index].setdefault(site, []).extend(rest[start:end])
        return cls(
            initial=initial, batches=batches, interval_seconds=interval_seconds
        )

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def applied_batches(self) -> int:
        return self._applied_batches

    @property
    def exhausted(self) -> bool:
        return self._applied_batches >= len(self.batches)

    def start_dataset(self, dataset_id: str, schema) -> GeoDataset:
        """A fresh dataset holding only the initial slice."""
        dataset = GeoDataset(dataset_id, schema)
        for site, records in self.initial.items():
            dataset.shards[site] = list(records)
        return dataset

    def apply_next_batch(self, dataset: GeoDataset) -> int:
        """Append the next batch in place; returns records added."""
        if self.exhausted:
            raise WorkloadError("feed is exhausted")
        batch = self.batches[self._applied_batches]
        self._applied_batches += 1
        added = 0
        for site, records in batch.items():
            dataset.shards.setdefault(site, []).extend(records)
            added += len(records)
        return added

    def total_records(self) -> int:
        count = sum(len(records) for records in self.initial.values())
        for batch in self.batches:
            count += sum(len(records) for records in batch.values())
        return count
