"""Map-side combiner.

The combiner merges map-output records with identical keys inside one
executor, emitting a single intermediate record per distinct key.  Every
intermediate record is ``reduction_ratio`` times the size of the input
records it came from (the map projects/transforms the record), and
merging k same-key records keeps one representative-size record — the
word-count semantics of Figure 1.

Two implementations share one contract: :func:`combine` runs the hot
columnar path (NumPy grouped aggregation) and :func:`combine_scalar`
keeps the original per-record loop as the reference.  Their outputs are
bit-identical — same record-dict insertion order, same float
accumulation order (``map_output_bytes`` is a strict left fold, which
``np.cumsum`` reproduces exactly), same per-key counts and max
representative sizes — and the parity suite holds them to that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.errors import EngineError
from repro.types import Key, Record

#: Below this many records the per-call NumPy overhead outweighs the
#: vectorized aggregation; the scalar loop is faster and bit-identical.
_COLUMNAR_MIN_RECORDS = 16


@dataclass
class CombinedRecord:
    """One combined intermediate record: a key plus merged statistics."""

    key: Key
    merged_count: int
    size_bytes: float

    def merge(self, other: "CombinedRecord") -> None:
        if other.key != self.key:
            raise EngineError(f"cannot merge keys {self.key} and {other.key}")
        self.merged_count += other.merged_count
        # Merging same-key records keeps one record; retain the larger
        # representative size (values aggregate in place).
        self.size_bytes = max(self.size_bytes, other.size_bytes)


@dataclass
class CombinedOutput:
    """All combined intermediate records of one executor (or one site)."""

    records: Dict[Key, CombinedRecord] = field(default_factory=dict)
    map_output_bytes: float = 0.0
    map_output_records: int = 0

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> float:
        return sum(record.size_bytes for record in self.records.values())

    @property
    def combine_savings(self) -> float:
        """Fraction of map-output bytes eliminated by combining."""
        if self.map_output_bytes <= 0:
            return 0.0
        return 1.0 - self.total_bytes / self.map_output_bytes

    def absorb(self, other: "CombinedOutput") -> None:
        """Merge another combined output into this one (same-key records
        collapse again) — used to aggregate executor outputs when they
        pass through a common local aggregation point."""
        for key, record in other.records.items():
            existing = self.records.get(key)
            if existing is None:
                self.records[key] = CombinedRecord(
                    key=record.key,
                    merged_count=record.merged_count,
                    size_bytes=record.size_bytes,
                )
            else:
                existing.merge(record)
        self.map_output_bytes += other.map_output_bytes
        self.map_output_records += other.map_output_records


def combine_scalar(
    records: Iterable[Record],
    key_indices: Sequence[int],
    reduction_ratio: float,
) -> CombinedOutput:
    """Per-record reference implementation of :func:`combine`.

    Retained for the scalar/columnar parity suite; semantics are the
    contract the columnar path must reproduce bit-for-bit.
    """
    if not 0.0 < reduction_ratio <= 1.0:
        raise EngineError(f"reduction_ratio must be in (0, 1], got {reduction_ratio}")
    output = CombinedOutput()
    for record in records:
        intermediate_bytes = record.size_bytes * reduction_ratio
        output.map_output_bytes += intermediate_bytes
        output.map_output_records += 1
        key = record.key(key_indices)
        existing = output.records.get(key)
        if existing is None:
            output.records[key] = CombinedRecord(
                key=key, merged_count=1, size_bytes=intermediate_bytes
            )
        else:
            existing.merged_count += 1
            existing.size_bytes = max(existing.size_bytes, intermediate_bytes)
    return output


def combine(
    records: Iterable[Record],
    key_indices: Sequence[int],
    reduction_ratio: float,
) -> CombinedOutput:
    """Run map + combine over one executor's records (columnar path).

    Each input record maps to one intermediate record of size
    ``record.size_bytes * reduction_ratio``; same-key intermediates merge.
    Aggregation is hash-bucketed and vectorized: one pass assigns every
    distinct key a dense group id in first-appearance order, then NumPy
    grouped reductions produce merged counts (``np.bincount``) and max
    representative sizes (stable sort + ``np.maximum.reduceat``).  The
    record dict is built in first-appearance order and every float
    matches the scalar fold exactly (sizes are elementwise products; the
    total is a sequential ``np.cumsum`` left fold).
    """
    if not 0.0 < reduction_ratio <= 1.0:
        raise EngineError(f"reduction_ratio must be in (0, 1], got {reduction_ratio}")
    if not isinstance(records, list):
        records = list(records)
    count = len(records)
    if count < _COLUMNAR_MIN_RECORDS:
        return combine_scalar(records, key_indices, reduction_ratio)

    sizes = np.fromiter(
        (record.size_bytes for record in records), dtype=np.float64, count=count
    )
    intermediate = sizes * reduction_ratio

    # Dense group ids in first-appearance order: the dict doubles as the
    # key table, so the output records dict preserves the scalar path's
    # insertion order for free.  itemgetter builds the same tuples as
    # Record.key without a per-record method call (single-index getters
    # return a bare value, hence the explicit 1-tuple branch).
    if len(key_indices) == 1:
        index = key_indices[0]
        keyed = ((record.values[index],) for record in records)
    else:
        getter = itemgetter(*key_indices)
        keyed = (getter(record.values) for record in records)
    group_of: Dict[Key, int] = {}
    new_group = group_of.setdefault
    group_ids = np.fromiter(
        (new_group(key, len(group_of)) for key in keyed),
        dtype=np.intp,
        count=count,
    )
    num_groups = len(group_of)

    merged_counts = np.bincount(group_ids, minlength=num_groups)
    if num_groups == count:
        # All keys distinct: no grouping needed, sizes pass through.
        max_sizes = intermediate
    else:
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        boundaries = np.empty(num_groups, dtype=np.intp)
        boundaries[0] = 0
        boundaries[1:] = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
        max_sizes = np.maximum.reduceat(intermediate[order], boundaries)

    output = CombinedOutput()
    output.map_output_records = count
    # np.cumsum is a strict sequential left fold, so this equals the
    # scalar loop's `total += x` accumulation bit-for-bit.
    output.map_output_bytes = float(np.cumsum(intermediate)[-1])
    counts_list = merged_counts.tolist()
    sizes_list = max_sizes.tolist()
    output.records = {
        key: CombinedRecord(
            key=key, merged_count=counts_list[group], size_bytes=sizes_list[group]
        )
        for key, group in group_of.items()
    }
    return output
