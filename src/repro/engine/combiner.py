"""Map-side combiner.

The combiner merges map-output records with identical keys inside one
executor, emitting a single intermediate record per distinct key.  Every
intermediate record is ``reduction_ratio`` times the size of the input
records it came from (the map projects/transforms the record), and
merging k same-key records keeps one representative-size record — the
word-count semantics of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.errors import EngineError
from repro.types import Key, Record


@dataclass
class CombinedRecord:
    """One combined intermediate record: a key plus merged statistics."""

    key: Key
    merged_count: int
    size_bytes: float

    def merge(self, other: "CombinedRecord") -> None:
        if other.key != self.key:
            raise EngineError(f"cannot merge keys {self.key} and {other.key}")
        self.merged_count += other.merged_count
        # Merging same-key records keeps one record; retain the larger
        # representative size (values aggregate in place).
        self.size_bytes = max(self.size_bytes, other.size_bytes)


@dataclass
class CombinedOutput:
    """All combined intermediate records of one executor (or one site)."""

    records: Dict[Key, CombinedRecord] = field(default_factory=dict)
    map_output_bytes: float = 0.0
    map_output_records: int = 0

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> float:
        return sum(record.size_bytes for record in self.records.values())

    @property
    def combine_savings(self) -> float:
        """Fraction of map-output bytes eliminated by combining."""
        if self.map_output_bytes <= 0:
            return 0.0
        return 1.0 - self.total_bytes / self.map_output_bytes

    def absorb(self, other: "CombinedOutput") -> None:
        """Merge another combined output into this one (same-key records
        collapse again) — used to aggregate executor outputs when they
        pass through a common local aggregation point."""
        for key, record in other.records.items():
            existing = self.records.get(key)
            if existing is None:
                self.records[key] = CombinedRecord(
                    key=record.key,
                    merged_count=record.merged_count,
                    size_bytes=record.size_bytes,
                )
            else:
                existing.merge(record)
        self.map_output_bytes += other.map_output_bytes
        self.map_output_records += other.map_output_records


def combine(
    records: Iterable[Record],
    key_indices: Sequence[int],
    reduction_ratio: float,
) -> CombinedOutput:
    """Run map + combine over one executor's records.

    Each input record maps to one intermediate record of size
    ``record.size_bytes * reduction_ratio``; same-key intermediates merge.
    """
    if not 0.0 < reduction_ratio <= 1.0:
        raise EngineError(f"reduction_ratio must be in (0, 1], got {reduction_ratio}")
    output = CombinedOutput()
    for record in records:
        intermediate_bytes = record.size_bytes * reduction_ratio
        output.map_output_bytes += intermediate_bytes
        output.map_output_records += 1
        key = record.key(key_indices)
        existing = output.records.get(key)
        if existing is None:
            output.records[key] = CombinedRecord(
                key=key, merged_count=1, size_bytes=intermediate_bytes
            )
        else:
            existing.merged_count += 1
            existing.size_bytes = max(existing.size_bytes, intermediate_bytes)
    return output
