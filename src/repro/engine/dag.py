"""Multi-stage query DAGs (§2.1).

"When a query arrives, a logically centralized controller compiles the
query into a directed acyclic graph (DAG) of processing stages."  This
module executes such DAGs on the engine: each stage is a map-reduce or a
join, a stage's output is materialized as a new geo-distributed dataset
living where its reduce tasks ran, and downstream stages consume it.

A stage starts when every referenced input's producing stage finished,
so the DAG's completion time is the critical-path sum of stage QCTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.engine.job import JobResult, MapReduceEngine
from repro.engine.join import JoinResult, JoinSpec, run_join
from repro.engine.shuffle import ReduceTaskMap
from repro.engine.spec import MapReduceSpec
from repro.errors import EngineError
from repro.obs import instrument
from repro.types import GeoDataset, Record, Schema


@dataclass(frozen=True)
class MapReduceStage:
    """One map/combine/shuffle/reduce stage."""

    name: str
    input_ref: str
    spec: MapReduceSpec
    key_names: "tuple[str, ...]"

    def __post_init__(self) -> None:
        if len(self.key_names) != len(self.spec.key_indices):
            raise EngineError(
                f"stage {self.name!r}: key_names arity "
                f"{len(self.key_names)} != key_indices arity "
                f"{len(self.spec.key_indices)}"
            )


@dataclass(frozen=True)
class JoinStage:
    """One equi-join stage between two inputs."""

    name: str
    left_ref: str
    right_ref: str
    spec: JoinSpec
    key_names: "tuple[str, ...]"

    def __post_init__(self) -> None:
        if len(self.key_names) != len(self.spec.left_key_indices):
            raise EngineError(
                f"stage {self.name!r}: key_names arity must match the join keys"
            )


Stage = Union[MapReduceStage, JoinStage]


@dataclass
class StageExecution:
    """One executed stage: its engine result and materialized output."""

    stage: Stage
    result: "JobResult | JoinResult"
    output: GeoDataset
    start_time: float
    finish_time: float


@dataclass
class DagResult:
    """Full DAG execution."""

    executions: List[StageExecution] = field(default_factory=list)

    @property
    def total_qct(self) -> float:
        if not self.executions:
            return 0.0
        return max(execution.finish_time for execution in self.executions)

    def output_of(self, stage_name: str) -> GeoDataset:
        for execution in self.executions:
            if execution.stage.name == stage_name:
                return execution.output
        raise EngineError(f"no executed stage named {stage_name!r}")

    def result_of(self, stage_name: str):
        for execution in self.executions:
            if execution.stage.name == stage_name:
                return execution.result
        raise EngineError(f"no executed stage named {stage_name!r}")


def _output_schema(key_names: Sequence[str]) -> Schema:
    return Schema.of(*key_names, "rows", kinds={"rows": "numeric"})


def _materialize_map_reduce(
    stage: MapReduceStage,
    result: JobResult,
    fractions: Mapping[str, float],
) -> GeoDataset:
    """One output record per distinct key, at its reduce task's site."""
    task_map = ReduceTaskMap.from_fractions(fractions, stage.spec.num_reduce_tasks)
    schema = _output_schema(stage.key_names)
    output = GeoDataset(f"{stage.name}.out", schema)
    for key, count in result.key_counts.items():
        size = max(1, int(result.key_bytes.get(key, 1)))
        record = Record(values=key + (count,), size_bytes=size)
        output.add_records(task_map.site_of_key(key), [record])
    return output


def _materialize_join(
    stage: JoinStage,
    result: JoinResult,
    fractions: Mapping[str, float],
) -> GeoDataset:
    """One output record per matched key, sized by its joined rows."""
    task_map = ReduceTaskMap.from_fractions(fractions, stage.spec.num_reduce_tasks)
    schema = _output_schema(stage.key_names)
    output = GeoDataset(f"{stage.name}.out", schema)
    for key, left_count in result.left.key_counts.items():
        right_count = result.right.key_counts.get(key)
        if not right_count:
            continue
        rows = left_count * right_count
        record = Record(
            values=key + (rows,),
            size_bytes=max(1, rows * stage.spec.output_record_bytes),
        )
        output.add_records(task_map.site_of_key(key), [record])
    return output


def execute_dag(
    engine: MapReduceEngine,
    base_datasets: Mapping[str, GeoDataset],
    stages: Sequence[Stage],
    reduce_fractions: Optional[Mapping[str, float]] = None,
    cube_sorted: bool = False,
) -> DagResult:
    """Execute the stages in order; later stages may reference earlier
    stages' outputs by stage name.

    ``stages`` must already be topologically ordered (a stage may only
    reference base datasets or stages appearing before it); violations
    raise :class:`EngineError`.
    """
    fractions = engine._resolve_fractions(reduce_fractions)
    available: Dict[str, GeoDataset] = dict(base_datasets)
    finish_times: Dict[str, float] = {name: 0.0 for name in base_datasets}
    dag = DagResult()
    seen_names = set(base_datasets)

    for stage in stages:
        if stage.name in seen_names:
            raise EngineError(f"duplicate stage/dataset name {stage.name!r}")
        seen_names.add(stage.name)
        refs = (
            [stage.input_ref]
            if isinstance(stage, MapReduceStage)
            else [stage.left_ref, stage.right_ref]
        )
        for ref in refs:
            if ref not in available:
                raise EngineError(
                    f"stage {stage.name!r} references unknown input {ref!r} "
                    "(stages must be topologically ordered)"
                )
        start = max(finish_times[ref] for ref in refs)

        if isinstance(stage, MapReduceStage):
            [result] = engine.run_many(
                [(available[stage.input_ref], stage.spec)],
                reduce_fractions=fractions,
                cube_sorted=cube_sorted,
                collect_keys=True,
            )
            output = _materialize_map_reduce(stage, result, fractions)
            stage_qct: float = result.qct
        else:
            result = run_join(
                engine,
                available[stage.left_ref],
                available[stage.right_ref],
                stage.spec,
                reduce_fractions=fractions,
                cube_sorted=cube_sorted,
            )
            output = _materialize_join(stage, result, fractions)
            stage_qct = result.qct

        finish = start + stage_qct
        obs = instrument.current()
        if obs.enabled:
            obs.tracer.record(
                f"stage:{stage.name}",
                stage="dag-stage",
                sim_start=start,
                sim_end=finish,
                output_records=output.total_records,
            )
            obs.metrics.counter("dag_stages").inc()
        available[stage.name] = output
        finish_times[stage.name] = finish
        dag.executions.append(
            StageExecution(
                stage=stage,
                result=result,
                output=output,
                start_time=start,
                finish_time=finish,
            )
        )
    return dag
