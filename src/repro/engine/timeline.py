"""Execution timelines: what happened when, per site.

A :class:`Timeline` is derived from a finished :class:`JobResult` and
renders a per-site Gantt-style ASCII view of the map, shuffle and reduce
phases — the first thing anyone asks for when a QCT looks wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.engine.job import JobResult
from repro.errors import EngineError


@dataclass(frozen=True)
class TimelineEvent:
    """One phase interval at one site."""

    site: str
    phase: str  # "map" | "shuffle-in" | "reduce"
    start: float
    end: float
    detail: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise EngineError(
                f"event ends before it starts: {self.start} > {self.end}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """All events of one job."""

    events: List[TimelineEvent] = field(default_factory=list)
    qct: float = 0.0

    @classmethod
    def from_job(cls, result: JobResult) -> "Timeline":
        """Reconstruct the phase intervals from a job's metrics."""
        timeline = cls(qct=result.qct)
        inbound_finish = {}
        for transfer_result in result.transfers:
            transfer = transfer_result.transfer
            # Zero-byte transfers still render (as instantaneous events)
            # and still gate the destination's reduce start; dropping
            # them used to hide entire shuffle edges from the Gantt.
            timeline.events.append(
                TimelineEvent(
                    site=transfer.dst,
                    phase="shuffle-in",
                    start=transfer.start_time,
                    end=transfer_result.finish_time,
                    detail=f"{transfer.src}->{transfer.dst} "
                    f"{transfer.num_bytes:.0f}B",
                )
            )
            inbound_finish[transfer.dst] = max(
                inbound_finish.get(transfer.dst, 0.0),
                transfer_result.finish_time,
            )
        for site, metrics in result.per_site.items():
            # A site that did map work always gets a map event — even
            # when nothing shuffled in (single-site jobs previously
            # rendered an empty Gantt).
            if metrics.input_records or metrics.map_finish > 0:
                timeline.events.append(
                    TimelineEvent(
                        site=site,
                        phase="map",
                        start=0.0,
                        end=metrics.map_finish,
                        detail=f"{metrics.input_records} records",
                    )
                )
            if metrics.reduce_seconds > 0:
                start = max(metrics.map_finish, inbound_finish.get(site, 0.0))
                timeline.events.append(
                    TimelineEvent(
                        site=site,
                        phase="reduce",
                        start=start,
                        end=metrics.finish_time,
                        detail=f"{metrics.downloaded_bytes:.0f}B in",
                    )
                )
        timeline.events.sort(key=lambda event: (event.site, event.start, event.phase))
        return timeline

    def events_at(self, site: str) -> List[TimelineEvent]:
        return [event for event in self.events if event.site == site]

    def critical_site(self) -> str:
        """The site whose last event defines the QCT."""
        if not self.events:
            raise EngineError("timeline has no events")
        last = max(self.events, key=lambda event: event.end)
        return last.site

    def render(self, width: int = 60) -> str:
        """ASCII Gantt chart: one row per (site, phase)."""
        if not self.events:
            return "(empty timeline)"
        horizon = max(self.qct, max(event.end for event in self.events))
        if horizon <= 0:
            horizon = 1.0
        lines = [f"timeline (QCT = {self.qct:.3f}s)"]
        glyph = {"map": "M", "shuffle-in": "s", "reduce": "R"}
        for event in self.events:
            begin = int(round(event.start / horizon * (width - 1)))
            finish = max(begin + 1, int(round(event.end / horizon * (width - 1))))
            bar = " " * begin + glyph[event.phase] * (finish - begin)
            lines.append(
                f"{event.site:>12s} {event.phase:<10s} |{bar:<{width}s}| "
                f"{event.duration:.3f}s"
            )
        return "\n".join(lines)
