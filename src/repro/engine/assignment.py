"""Partition → executor assignment (§6).

Spark assigns RDD partitions to executors without regard to content; Bohr
instead computes pairwise partition similarity with Jaccard-modified
DIMSUM and k-means-clusters similar partitions onto the same executor, so
their identical records combine before hitting the network.  The wall
time of that checking is measured and reported — it is the overhead of
Table 4 and is charged to the job's completion time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import EngineError
from repro.engine.rdd import RDDPartition, round_robin
from repro.similarity.dimsum import DimsumConfig, dimsum_similarity_matrix
from repro.similarity.kmeans import kmeans


@dataclass
class AssignmentResult:
    """Partitions grouped per executor, plus similarity-checking cost."""

    executor_partitions: List[List[RDDPartition]]
    overhead_seconds: float
    method: str

    @property
    def num_executors(self) -> int:
        return len(self.executor_partitions)

    @property
    def num_partitions(self) -> int:
        return sum(len(group) for group in self.executor_partitions)


def assign_partitions(
    partitions: Sequence[RDDPartition],
    num_executors: int,
    key_indices: Sequence[int],
    similarity_aware: bool = False,
    dimsum_config: DimsumConfig = DimsumConfig(),
    seed: int = 7,
) -> AssignmentResult:
    """Assign one machine's partitions to its executors.

    Default: round-robin (content-blind, like stock Spark).  Similarity
    aware: DIMSUM similarity matrix over partition key-sets, k-means into
    ``num_executors`` clusters, one cluster per executor.  Oversized
    clusters are rebalanced only by splitting across empty executors so
    no executor sits idle.
    """
    if num_executors < 1:
        raise EngineError("num_executors must be >= 1")
    if not partitions:
        return AssignmentResult([[] for _ in range(num_executors)], 0.0, "empty")
    if not similarity_aware or len(partitions) <= 1:
        groups = round_robin(list(partitions), num_executors)
        return AssignmentResult(groups, 0.0, "round-robin")

    # Wall-clock on purpose: RDD checking overhead, Table 4.
    started = time.perf_counter()  # lint: allow[R001]
    key_sets = [partition.key_set(key_indices) for partition in partitions]
    matrix, _ = dimsum_similarity_matrix(key_sets, dimsum_config)
    clusters = min(num_executors, len(partitions))
    clustering = kmeans(matrix, clusters, seed=seed)
    groups: List[List[RDDPartition]] = [[] for _ in range(num_executors)]
    for index, label in enumerate(clustering.labels):
        groups[label].append(partitions[index])
    _fill_idle_executors(groups)
    overhead = time.perf_counter() - started  # lint: allow[R001]
    return AssignmentResult(groups, overhead, "similarity")


def _fill_idle_executors(groups: List[List[RDDPartition]]) -> None:
    """Move partitions from the largest groups onto idle executors.

    Similarity clustering must not leave executors empty while another
    holds several partitions — that would trade shuffle volume for a
    straggler.  Splitting the largest cluster keeps its partitions
    mutually similar (any subset of a similar cluster is similar).
    """
    while True:
        idle = [index for index, group in enumerate(groups) if not group]
        if not idle:
            return
        largest = max(range(len(groups)), key=lambda index: len(groups[index]))
        if len(groups[largest]) <= 1:
            return  # nothing left to split
        groups[idle[0]].append(groups[largest].pop())
