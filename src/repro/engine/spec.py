"""Job specification for the engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import EngineError
from repro.types import Record, Value


@dataclass(frozen=True)
class MapReduceSpec:
    """What a map-reduce job looks like to the engine.

    Parameters
    ----------
    key_indices:
        Positions of the query's group-by attributes inside each record;
        records agreeing on these positions share a key and combine.
    reduction_ratio:
        :math:`R^a` of Table 1 — the ratio of map-output (intermediate)
        size to input size, before combining.  A selective scan has a low
        ratio; a heavy UDF can approach 1.
    num_reduce_tasks:
        Total reduce tasks distributed across sites by the task placement.
    filters:
        Equality predicates ``(attribute_index, required_value)`` applied
        at the map stage: non-matching records are read but emit no
        intermediate data (WHERE pushdown).
    """

    key_indices: Tuple[int, ...]
    reduction_ratio: float
    num_reduce_tasks: int = 100
    filters: Tuple[Tuple[int, Value], ...] = ()

    def __post_init__(self) -> None:
        if not self.key_indices:
            raise EngineError("spec needs at least one key attribute index")
        if len(set(self.key_indices)) != len(self.key_indices):
            raise EngineError(f"duplicate key indices: {self.key_indices}")
        if not 0.0 < self.reduction_ratio <= 1.0:
            raise EngineError(
                f"reduction_ratio must be in (0, 1], got {self.reduction_ratio}"
            )
        if self.num_reduce_tasks < 1:
            raise EngineError("num_reduce_tasks must be >= 1")
        for index, _value in self.filters:
            if index < 0:
                raise EngineError(f"filter attribute index must be >= 0, got {index}")

    @classmethod
    def of(
        cls,
        key_indices: "List[int] | Tuple[int, ...]",
        reduction_ratio: float,
        num_reduce_tasks: int = 100,
        filters: Sequence[Tuple[int, Value]] = (),
    ) -> "MapReduceSpec":
        return cls(
            key_indices=tuple(key_indices),
            reduction_ratio=reduction_ratio,
            num_reduce_tasks=num_reduce_tasks,
            filters=tuple(filters),
        )

    def matches(self, record: Record) -> bool:
        """True when the record passes every filter predicate."""
        for index, value in self.filters:
            if index >= len(record.values):
                raise EngineError(
                    f"filter index {index} out of range for record "
                    f"with {len(record.values)} values"
                )
            if record.values[index] != value:
                return False
        return True
