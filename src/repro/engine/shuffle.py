"""Shuffle plumbing: reduce-task placement and key routing.

Reduce tasks are dealt to sites according to the task-placement fractions
:math:`r_i` (Table 1); every intermediate key hashes to one task, hence
one destination site.  The all-to-all shuffle of §5 falls out: site i
uploads the share of its combined output whose tasks live elsewhere and
downloads its own share from every other site.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.errors import EngineError
from repro.obs import instrument
from repro.similarity.probes import largest_remainder_allocation
from repro.types import Key


def key_to_task(key: Key, num_tasks: int) -> int:
    """Stable hash of a key onto a reduce task id."""
    if num_tasks < 1:
        raise EngineError("num_tasks must be >= 1")
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") % num_tasks


@dataclass
class ReduceTaskMap:
    """Assignment of reduce tasks to sites."""

    task_sites: List[str]

    @classmethod
    def from_fractions(
        cls, fractions: Mapping[str, float], num_tasks: int
    ) -> "ReduceTaskMap":
        """Deal ``num_tasks`` tasks to sites proportionally to fractions.

        Fractions must be non-negative; at least one must be positive.
        Counts use largest-remainder so they sum exactly to ``num_tasks``.
        Tasks are interleaved across sites (not blocked) so consecutive
        task ids spread load, mirroring how Spark interleaves partitions.
        """
        if num_tasks < 1:
            raise EngineError("num_tasks must be >= 1")
        positive = {site: frac for site, frac in fractions.items() if frac > 0}
        if not positive:
            raise EngineError("at least one site needs a positive reduce fraction")
        if any(frac < 0 for frac in fractions.values()):
            raise EngineError("reduce fractions must be >= 0")
        counts = largest_remainder_allocation(positive, num_tasks)
        obs = instrument.current()
        metrics = obs.metrics
        if metrics.enabled:
            for site, count in counts.items():
                metrics.gauge("reduce_tasks", site=site).set(count)
        if obs.telemetry.enabled:
            for site in sorted(counts):
                obs.telemetry.emit(
                    "reduce-tasks", site=site, tasks=counts[site]
                )
        # Interleave: repeatedly deal one task to each site that still has quota.
        remaining = dict(counts)
        order = [site for site in fractions if counts.get(site, 0) > 0]
        task_sites: List[str] = []
        while len(task_sites) < num_tasks:
            progressed = False
            for site in order:
                if remaining.get(site, 0) > 0:
                    task_sites.append(site)
                    remaining[site] -= 1
                    progressed = True
            if not progressed:
                raise EngineError("task dealing stalled (internal error)")
        return cls(task_sites=task_sites[:num_tasks])

    @property
    def num_tasks(self) -> int:
        return len(self.task_sites)

    def site_of(self, task: int) -> str:
        if not 0 <= task < len(self.task_sites):
            raise EngineError(f"task {task} out of range [0, {len(self.task_sites)})")
        return self.task_sites[task]

    def site_of_key(self, key: Key) -> str:
        return self.site_of(key_to_task(key, self.num_tasks))

    def tasks_per_site(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for site in self.task_sites:
            counts[site] = counts.get(site, 0) + 1
        return counts

    def fraction_at(self, site: str) -> float:
        return self.tasks_per_site().get(site, 0) / self.num_tasks
