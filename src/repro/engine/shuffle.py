"""Shuffle plumbing: reduce-task placement and key routing.

Reduce tasks are dealt to sites according to the task-placement fractions
:math:`r_i` (Table 1); every intermediate key hashes to one task, hence
one destination site.  The all-to-all shuffle of §5 falls out: site i
uploads the share of its combined output whose tasks live elsewhere and
downloads its own share from every other site.

Routing is batched: :meth:`ReduceTaskMap.routing_table` hashes each
distinct key once (process-wide cached blake2b digests, one vectorized
modulo) and memoizes the key→site answer on the instance, so the
per-key :func:`key_to_task` / :meth:`ReduceTaskMap.site_of_key` calls in
shuffle planning collapse to dict lookups.  ``task_sites`` is immutable
by convention — the memo and the per-site count cache assume it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.errors import EngineError
from repro.obs import instrument
from repro.similarity.probes import largest_remainder_allocation
from repro.types import Key


@lru_cache(maxsize=1 << 18)
def _key_digest(text: str) -> int:
    """64-bit blake2b digest of a key's repr, cached process-wide.

    The digest is a pure function of the repr, so one cache serves every
    task map and every query — repeated routing of the same keys (the
    common case across replans and query batches) costs a dict lookup.
    """
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def key_to_task(key: Key, num_tasks: int) -> int:
    """Stable hash of a key onto a reduce task id."""
    if num_tasks < 1:
        raise EngineError("num_tasks must be >= 1")
    return _key_digest(repr(key)) % num_tasks


def keys_to_tasks(keys: List[Key], num_tasks: int) -> np.ndarray:
    """Batched :func:`key_to_task`: one hash pass, one vectorized modulo.

    Returns an ``intp`` array of task ids aligned with ``keys``; each
    entry equals ``key_to_task(key, num_tasks)`` exactly (cached blake2b
    8-byte little-endian digests gathered into one uint64 vector).
    """
    if num_tasks < 1:
        raise EngineError("num_tasks must be >= 1")
    if not keys:
        return np.empty(0, dtype=np.intp)
    digests = np.fromiter(
        map(_key_digest, map(repr, keys)), dtype=np.uint64, count=len(keys)
    )
    return (digests % np.uint64(num_tasks)).astype(np.intp)


@dataclass
class ReduceTaskMap:
    """Assignment of reduce tasks to sites.

    ``task_sites`` is treated as immutable after construction; the
    per-site count cache and the key→site memo rely on that.
    """

    task_sites: List[str]
    _site_counts: Optional[Dict[str, int]] = field(
        default=None, repr=False, compare=False
    )
    _site_memo: Dict[Key, str] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def from_fractions(
        cls, fractions: Mapping[str, float], num_tasks: int
    ) -> "ReduceTaskMap":
        """Deal ``num_tasks`` tasks to sites proportionally to fractions.

        Fractions must be non-negative; at least one must be positive.
        Counts use largest-remainder so they sum exactly to ``num_tasks``.
        Tasks are interleaved across sites (not blocked) so consecutive
        task ids spread load, mirroring how Spark interleaves partitions.
        """
        if num_tasks < 1:
            raise EngineError("num_tasks must be >= 1")
        positive = {site: frac for site, frac in fractions.items() if frac > 0}
        if not positive:
            raise EngineError("at least one site needs a positive reduce fraction")
        if any(frac < 0 for frac in fractions.values()):
            raise EngineError("reduce fractions must be >= 0")
        counts = largest_remainder_allocation(positive, num_tasks)
        obs = instrument.current()
        metrics = obs.metrics
        if metrics.enabled:
            for site, count in counts.items():
                metrics.gauge("reduce_tasks", site=site).set(count)
        if obs.telemetry.enabled:
            for site in sorted(counts):
                obs.telemetry.emit(
                    "reduce-tasks", site=site, tasks=counts[site]
                )
        # Interleave: repeatedly deal one task to each site that still has quota.
        remaining = dict(counts)
        order = [site for site in fractions if counts.get(site, 0) > 0]
        task_sites: List[str] = []
        while len(task_sites) < num_tasks:
            progressed = False
            for site in order:
                if remaining.get(site, 0) > 0:
                    task_sites.append(site)
                    remaining[site] -= 1
                    progressed = True
            if not progressed:
                raise EngineError("task dealing stalled (internal error)")
        return cls(task_sites=task_sites[:num_tasks])

    @property
    def num_tasks(self) -> int:
        return len(self.task_sites)

    def site_of(self, task: int) -> str:
        if not 0 <= task < len(self.task_sites):
            raise EngineError(f"task {task} out of range [0, {len(self.task_sites)})")
        return self.task_sites[task]

    def site_of_key(self, key: Key) -> str:
        site = self._site_memo.get(key)
        if site is None:
            site = self.site_of(key_to_task(key, self.num_tasks))
            self._site_memo[key] = site
        return site

    def routing_table(self, keys: Iterable[Key]) -> Dict[Key, str]:
        """Batched key→site routing for every distinct key in ``keys``.

        Keys already memoized are answered from the memo; the rest go
        through one batched hash pass (:func:`keys_to_tasks`).  The
        returned dict maps each distinct input key to its destination
        site, identical to per-key :meth:`site_of_key` answers.
        """
        memo = self._site_memo
        table: Dict[Key, str] = {}
        if memo:
            fresh: List[Key] = []
            seen_fresh = set()
            for key in keys:
                site = memo.get(key)
                if site is not None:
                    table[key] = site
                elif key not in seen_fresh:
                    seen_fresh.add(key)
                    fresh.append(key)
        else:
            # Fresh map: nothing can be memoized, dedupe in one C pass.
            fresh = list(dict.fromkeys(keys))
        if fresh:
            tasks = keys_to_tasks(fresh, self.num_tasks)
            routed = dict(
                zip(fresh, map(self.task_sites.__getitem__, tasks.tolist()))
            )
            memo.update(routed)
            table.update(routed)
        return table

    def tasks_per_site(self) -> Dict[str, int]:
        if self._site_counts is None:
            counts: Dict[str, int] = {}
            for site in self.task_sites:
                counts[site] = counts.get(site, 0) + 1
            self._site_counts = counts
        return dict(self._site_counts)

    def fraction_at(self, site: str) -> float:
        if self._site_counts is None:
            self.tasks_per_site()
        assert self._site_counts is not None
        return self._site_counts.get(site, 0) / self.num_tasks
