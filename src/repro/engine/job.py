"""End-to-end map-reduce job execution over geo-distributed shards.

Timeline per job (matching §2.1's stage structure):

1. every site chunks its shard into RDD partitions, deals them to
   machines, assigns partitions to executors (round-robin or
   similarity-aware), and runs map + combine — compute time is the
   busiest executor's bytes over the site's per-executor compute rate,
   plus any RDD-similarity-checking overhead;
2. each combined record routes to a reduce task, hence a site; all
   cross-site intermediate data is simulated as concurrent WAN transfers
   with max-min fair sharing, starting when the source site's map stage
   finishes;
3. a site's reduce work starts when its last inbound byte lands; QCT is
   the latest site finish time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine.assignment import assign_partitions
from repro.engine.combiner import CombinedOutput, combine
from repro.engine.rdd import make_partitions, round_robin
from repro.engine.shuffle import ReduceTaskMap
from repro.engine.spec import MapReduceSpec
from repro.errors import EngineError
from repro.obs import instrument
from repro.similarity.dimsum import DimsumConfig
from repro.types import GeoDataset
from repro.wan.topology import WanTopology
from repro.wan.transfer import Transfer, TransferResult, TransferScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chaos.schedule import FaultSchedule

#: Below this many routed keys per source site the per-key dict fold is
#: faster than building code/size arrays; both folds are bit-identical.
_BATCH_MIN_KEYS = 16


@dataclass
class SiteMetrics:
    """Per-site accounting for one job."""

    site: str
    input_bytes: float = 0.0
    input_records: int = 0
    map_output_bytes: float = 0.0
    intermediate_bytes: float = 0.0  # after combining: the f_i of Table 1
    intermediate_records: int = 0
    uploaded_bytes: float = 0.0  # WAN bytes sent to other sites
    downloaded_bytes: float = 0.0  # WAN bytes received from other sites
    local_shuffle_bytes: float = 0.0  # intra-site shuffle (LAN)
    map_seconds: float = 0.0
    rdd_overhead_seconds: float = 0.0
    map_finish: float = 0.0
    reduce_seconds: float = 0.0
    finish_time: float = 0.0
    #: Chaos accounting: map-task waves re-executed after injected
    #: failures, shuffle bytes lost to abandoned transfers, and whether
    #: the site sat out the job entirely (site outage).
    task_retry_waves: int = 0
    lost_bytes: float = 0.0
    excluded: bool = False

    @property
    def combine_savings(self) -> float:
        """Fraction of map output removed by the combiner at this site."""
        if self.map_output_bytes <= 0:
            return 0.0
        return 1.0 - self.intermediate_bytes / self.map_output_bytes


@dataclass
class JobResult:
    """Outcome of one job execution."""

    qct: float
    per_site: Dict[str, SiteMetrics]
    transfers: List[TransferResult] = field(default_factory=list)
    #: Per-key combined record counts and bytes (populated only when the
    #: engine ran with ``collect_keys=True``; used by joins and by DAG
    #: stage materialization).
    key_counts: Dict = field(default_factory=dict)
    key_bytes: Dict = field(default_factory=dict)

    @property
    def total_intermediate_bytes(self) -> float:
        return sum(metrics.intermediate_bytes for metrics in self.per_site.values())

    @property
    def total_wan_bytes(self) -> float:
        return sum(metrics.uploaded_bytes for metrics in self.per_site.values())

    @property
    def total_rdd_overhead_seconds(self) -> float:
        return sum(
            metrics.rdd_overhead_seconds for metrics in self.per_site.values()
        )

    @property
    def total_lost_bytes(self) -> float:
        """Shuffle bytes that never arrived (abandoned under chaos)."""
        return sum(metrics.lost_bytes for metrics in self.per_site.values())

    @property
    def failed_transfers(self) -> List[TransferResult]:
        return [result for result in self.transfers if result.failed]

    def intermediate_bytes_at(self, site: str) -> float:
        metrics = self.per_site.get(site)
        return metrics.intermediate_bytes if metrics else 0.0


@dataclass
class PlannedJob:
    """A job after its map stage and shuffle plan, awaiting WAN results.

    Splitting planning from completion lets a serving layer inject many
    jobs' transfers into one shared :class:`~repro.wan.transfer.WanSession`
    and finish each job as its flows drain; :meth:`MapReduceEngine.run_many`
    is just the batch composition of the two halves.  ``start_offset``
    stamps the job onto an absolute shared clock: map runs
    ``[start_offset, map_finish]``, transfers start at absolute times, and
    the resulting QCT is an absolute completion time on that clock.
    ``start_offset == 0.0`` keeps the job-relative batch semantics
    bit-identical.
    """

    tag: str
    per_site: Dict[str, SiteMetrics]
    transfers: List[Transfer] = field(default_factory=list)
    start_offset: float = 0.0
    collect_keys: bool = False
    key_counts: Dict = field(default_factory=dict)
    key_bytes: Dict = field(default_factory=dict)

    @property
    def map_finish(self) -> float:
        """Latest map finish across sites (absolute when offset-stamped)."""
        return max(
            (m.map_finish for m in self.per_site.values() if not m.excluded),
            default=self.start_offset,
        )


class MapReduceEngine:
    """Executes :class:`MapReduceSpec` jobs over a :class:`WanTopology`."""

    def __init__(
        self,
        topology: WanTopology,
        partition_records: int = 64,
        rdd_similarity: bool = False,
        dimsum_config: DimsumConfig = DimsumConfig(),
        lan_bps: float = 10.0e9,
        seed: int = 7,
        charge_rdd_overhead: bool = True,
        faults: "Optional[FaultSchedule]" = None,
        stall_timeout_seconds: float = math.inf,
    ) -> None:
        """``faults`` injects a chaos schedule: dead sites sit out the
        job, stragglers slow a site's map/reduce compute, failed task
        waves re-execute, and the shuffle runs over the fault-aware WAN
        simulator (``stall_timeout_seconds`` bounds blackout parking;
        transfers that exceed it are lost and their bytes accounted in
        :attr:`SiteMetrics.lost_bytes`)."""
        if partition_records < 1:
            raise EngineError("partition_records must be >= 1")
        self.topology = topology
        self.partition_records = partition_records
        self.rdd_similarity = rdd_similarity
        self.dimsum_config = dimsum_config
        self.faults = faults
        self.scheduler = TransferScheduler(
            topology,
            lan_bps=lan_bps,
            faults=faults,
            stall_timeout_seconds=stall_timeout_seconds,
        )
        self.seed = seed
        self.charge_rdd_overhead = charge_rdd_overhead

    # ------------------------------------------------------------------

    def run(
        self,
        dataset: GeoDataset,
        spec: MapReduceSpec,
        reduce_fractions: Optional[Mapping[str, float]] = None,
        cube_sorted: bool = False,
    ) -> JobResult:
        """Execute one job; returns the QCT and per-site metrics.

        ``reduce_fractions`` defaults to a uniform split over all sites.
        ``cube_sorted`` feeds records in cube-cluster order (Iridium-C and
        Bohr) instead of raw order (Iridium).
        """
        [result] = self.run_many(
            [(dataset, spec)],
            reduce_fractions=reduce_fractions,
            cube_sorted=cube_sorted,
        )
        return result

    def run_many(
        self,
        jobs: Sequence["tuple[GeoDataset, MapReduceSpec]"],
        reduce_fractions: Optional[Mapping[str, float]] = None,
        cube_sorted: bool = False,
        share_task_map: bool = False,
        collect_keys: bool = False,
    ) -> List[JobResult]:
        """Execute several jobs concurrently over the shared WAN.

        All jobs' shuffle transfers contend for the same uplinks and
        downlinks (max-min fair), so each job's QCT reflects the others'
        load — the situation recurring queries face in production.

        ``share_task_map`` routes every job's keys through one reduce-task
        map (all jobs must agree on ``num_reduce_tasks``); this aligns
        key → site routing across jobs, which joins require.
        ``collect_keys`` additionally aggregates per-key combined counts
        into each :class:`JobResult` (used by the join operator).
        """
        if not jobs:
            return []
        fractions = self._resolve_fractions(reduce_fractions)
        dead_sites = self._dead_sites()
        if dead_sites:
            fractions = self._exclude_dead_fractions(fractions, dead_sites)
        if share_task_map:
            task_counts = {spec.num_reduce_tasks for _dataset, spec in jobs}
            if len(task_counts) != 1:
                raise EngineError(
                    "share_task_map requires equal num_reduce_tasks; "
                    f"got {sorted(task_counts)}"
                )
            shared = ReduceTaskMap.from_fractions(fractions, task_counts.pop())
            task_maps = [shared] * len(jobs)
        else:
            task_maps = [
                ReduceTaskMap.from_fractions(fractions, spec.num_reduce_tasks)
                for _dataset, spec in jobs
            ]

        per_job: List[PlannedJob] = []
        all_transfers: List = []
        for index, (dataset, spec) in enumerate(jobs):
            planned = self.plan_job(
                dataset,
                spec,
                task_maps[index],
                dead_sites=dead_sites,
                cube_sorted=cube_sorted,
                collect_keys=collect_keys,
                tag=f"job-{index}",
            )
            per_job.append(planned)
            all_transfers.extend(planned.transfers)

        results = self.scheduler.simulate(all_transfers)
        return [
            self.complete_job(
                planned,
                [
                    result
                    for result in results
                    if result.transfer.tag == planned.tag
                ],
            )
            for planned in per_job
        ]

    # ------------------------------------------------------------------
    # plan / complete halves (the serving layer's entry points)
    # ------------------------------------------------------------------

    def resolve_routing(
        self,
        reduce_fractions: Optional[Mapping[str, float]],
        num_reduce_tasks: int,
    ) -> "tuple[ReduceTaskMap, frozenset[str]]":
        """Resolve reduce fractions against faults into a task map.

        Returns the key→site routing plus the set of dead sites (to pass
        through to :meth:`plan_job`).
        """
        fractions = self._resolve_fractions(reduce_fractions)
        dead_sites = self._dead_sites()
        if dead_sites:
            fractions = self._exclude_dead_fractions(fractions, dead_sites)
        return ReduceTaskMap.from_fractions(fractions, num_reduce_tasks), dead_sites

    def plan_job(
        self,
        dataset: GeoDataset,
        spec: MapReduceSpec,
        task_map: ReduceTaskMap,
        *,
        dead_sites: "frozenset[str]" = frozenset(),
        cube_sorted: bool = False,
        collect_keys: bool = False,
        tag: str = "job-0",
        start_offset: float = 0.0,
    ) -> PlannedJob:
        """Run the map stage and plan the shuffle; no WAN simulation yet."""
        metrics = {
            site.name: SiteMetrics(site=site.name) for site in self.topology
        }
        site_outputs: Dict[str, List[CombinedOutput]] = {}
        for site_name in self.topology.site_names:
            if site_name in dead_sites:
                # Site outage: its shard is unreachable — no map work,
                # no shuffle contribution, partial results downstream.
                metrics[site_name].excluded = True
                site_outputs[site_name] = []
                continue
            site_outputs[site_name] = self._map_stage(
                dataset, spec, site_name, metrics[site_name], cube_sorted
            )
            if start_offset:
                metrics[site_name].map_finish = (
                    start_offset + metrics[site_name].map_finish
                )
        planned = PlannedJob(
            tag=tag,
            per_site=metrics,
            start_offset=start_offset,
            collect_keys=collect_keys,
        )
        if collect_keys:
            counts: Dict = {}
            sizes: Dict = {}
            for outputs in site_outputs.values():
                for output in outputs:
                    for key, record in output.records.items():
                        counts[key] = counts.get(key, 0) + record.merged_count
                        sizes[key] = sizes.get(key, 0.0) + record.size_bytes
            planned.key_counts, planned.key_bytes = counts, sizes
        planned.transfers = self._plan_shuffle(
            site_outputs, task_map, metrics, tag=tag
        )
        return planned

    def complete_job(
        self, planned: PlannedJob, transfer_results: Sequence[TransferResult]
    ) -> JobResult:
        """Finish a planned job once its WAN transfers have results."""
        qct = self._reduce_stage(transfer_results, planned.per_site)
        job_result = JobResult(
            qct=qct, per_site=planned.per_site, transfers=list(transfer_results)
        )
        if planned.collect_keys:
            job_result.key_counts = planned.key_counts
            job_result.key_bytes = planned.key_bytes
        obs = instrument.current()
        if obs.sanitizer.enabled:
            obs.sanitizer.check_job(job_result)
        if obs.tracer.enabled:
            self._record_job_spans(
                obs.tracer, job_result, map_start=planned.start_offset
            )
        if obs.telemetry.enabled:
            self._emit_job_telemetry(
                obs.telemetry,
                job_result,
                planned.tag,
                map_start=planned.start_offset,
            )
        return job_result

    @staticmethod
    def _emit_job_telemetry(
        telemetry, result: JobResult, job: str, map_start: float = 0.0
    ) -> None:
        """Stage/task lifecycle events for one job (per-site, sim clock).

        Map runs [map_start, map_finish], reduce
        [finish - reduce_seconds, finish]; stage-finish carries its own
        start so the Gantt derivation never has to pair events.
        rdd_overhead is wall-coupled and excluded from determinism
        digests by name.
        """
        for site, site_metrics in result.per_site.items():
            if site_metrics.excluded:
                continue
            if site_metrics.input_records or site_metrics.map_finish > map_start:
                telemetry.emit(
                    "stage-start", t=map_start, stage="map", site=site, job=job
                )
                telemetry.emit(
                    "stage-finish",
                    t=site_metrics.map_finish,
                    stage="map",
                    site=site,
                    job=job,
                    start=map_start,
                    input_bytes=site_metrics.input_bytes,
                    intermediate_bytes=site_metrics.intermediate_bytes,
                    rdd_overhead_seconds=site_metrics.rdd_overhead_seconds,
                )
            if site_metrics.task_retry_waves > 0:
                telemetry.emit(
                    "task-wave",
                    t=site_metrics.map_finish,
                    site=site,
                    job=job,
                    waves=site_metrics.task_retry_waves,
                )
            if site_metrics.reduce_seconds > 0:
                reduce_start = site_metrics.finish_time - site_metrics.reduce_seconds
                telemetry.emit(
                    "stage-start", t=reduce_start, stage="reduce", site=site, job=job
                )
                telemetry.emit(
                    "stage-finish",
                    t=site_metrics.finish_time,
                    stage="reduce",
                    site=site,
                    job=job,
                    start=reduce_start,
                    downloaded_bytes=site_metrics.downloaded_bytes,
                )
        telemetry.emit(
            "job-finish",
            t=result.qct,
            job=job,
            qct=result.qct,
            wan_bytes=result.total_wan_bytes,
            lost_bytes=result.total_lost_bytes,
        )

    @staticmethod
    def _record_job_spans(tracer, result: JobResult, map_start: float = 0.0) -> None:
        """Emit simulated-clock map/shuffle/reduce spans for one job.

        The spans nest under whatever span is open on the active tracer
        (normally the ``query`` span) and carry the phase intervals the
        post-hoc :class:`~repro.engine.timeline.Timeline` reconstructs —
        but as machine-readable trace output instead of ASCII art.
        """
        for site, site_metrics in result.per_site.items():
            if site_metrics.input_records or site_metrics.map_finish > map_start:
                tracer.record(
                    f"map@{site}",
                    stage="map",
                    sim_start=map_start,
                    sim_end=site_metrics.map_finish,
                    site=site,
                    input_records=site_metrics.input_records,
                    map_output_bytes=site_metrics.map_output_bytes,
                    intermediate_bytes=site_metrics.intermediate_bytes,
                    rdd_overhead_seconds=site_metrics.rdd_overhead_seconds,
                )
        for transfer_result in result.transfers:
            transfer = transfer_result.transfer
            tracer.record(
                f"shuffle {transfer.src}->{transfer.dst}",
                stage="shuffle",
                sim_start=transfer.start_time,
                sim_end=transfer_result.finish_time,
                site=transfer.dst,
                src=transfer.src,
                dst=transfer.dst,
                bytes=transfer.num_bytes,
            )
        for site, site_metrics in result.per_site.items():
            if site_metrics.reduce_seconds > 0:
                tracer.record(
                    f"reduce@{site}",
                    stage="reduce",
                    sim_start=site_metrics.finish_time
                    - site_metrics.reduce_seconds,
                    sim_end=site_metrics.finish_time,
                    site=site,
                    downloaded_bytes=site_metrics.downloaded_bytes,
                )

    # ------------------------------------------------------------------

    def _resolve_fractions(
        self, reduce_fractions: Optional[Mapping[str, float]]
    ) -> Dict[str, float]:
        if reduce_fractions is None:
            share = 1.0 / len(self.topology)
            return {name: share for name in self.topology.site_names}
        unknown = set(reduce_fractions) - set(self.topology.site_names)
        if unknown:
            raise EngineError(f"reduce fractions name unknown sites {sorted(unknown)}")
        return dict(reduce_fractions)

    def _dead_sites(self) -> "frozenset[str]":
        """Sites dark at job start under the injected fault schedule."""
        if self.faults is None:
            return frozenset()
        return frozenset(
            name
            for name in self.topology.site_names
            if self.faults.site_dead_at(name, 0.0)
        )

    def _exclude_dead_fractions(
        self, fractions: Dict[str, float], dead_sites: "frozenset[str]"
    ) -> Dict[str, float]:
        """Re-route reduce work away from dead sites (renormalized)."""
        alive = {
            site: fraction
            for site, fraction in fractions.items()
            if site not in dead_sites
        }
        total = sum(alive.values())
        if not alive or total <= 0:
            raise EngineError(
                "all reduce fractions land on dead sites "
                f"{sorted(dead_sites)}; nothing can host reduce tasks"
            )
        return {site: fraction / total for site, fraction in alive.items()}

    def _map_stage(
        self,
        dataset: GeoDataset,
        spec: MapReduceSpec,
        site_name: str,
        site_metrics: SiteMetrics,
        cube_sorted: bool,
    ) -> List[CombinedOutput]:
        """Run map + combine at one site; returns per-executor outputs."""
        site = self.topology.site(site_name)
        shard = dataset.shard(site_name)
        site_metrics.input_bytes = float(sum(r.size_bytes for r in shard))
        site_metrics.input_records = len(shard)
        if not shard:
            return []

        partitions = make_partitions(
            shard,
            site_name,
            self.partition_records,
            key_indices=spec.key_indices,
            cube_sorted=cube_sorted,
        )
        machine_loads = round_robin(partitions, site.machines)
        executor_outputs: List[CombinedOutput] = []
        busiest_executor_bytes = 0.0
        for machine_partitions in machine_loads:
            assignment = assign_partitions(
                machine_partitions,
                site.executors_per_machine,
                spec.key_indices,
                similarity_aware=self.rdd_similarity,
                dimsum_config=self.dimsum_config,
                seed=self.seed,
            )
            site_metrics.rdd_overhead_seconds += assignment.overhead_seconds
            for executor_partitions in assignment.executor_partitions:
                records = [
                    record
                    for partition in executor_partitions
                    for record in partition.records
                    if spec.matches(record)  # WHERE pushdown at the map
                ]
                if not records:
                    continue
                output = combine(records, spec.key_indices, spec.reduction_ratio)
                executor_outputs.append(output)
                executor_bytes = float(sum(r.size_bytes for r in records))
                busiest_executor_bytes = max(busiest_executor_bytes, executor_bytes)

        site_metrics.map_output_bytes = sum(
            output.map_output_bytes for output in executor_outputs
        )
        site_metrics.intermediate_bytes = sum(
            output.total_bytes for output in executor_outputs
        )
        site_metrics.intermediate_records = sum(
            output.num_records for output in executor_outputs
        )
        site_metrics.map_seconds = busiest_executor_bytes / site.compute_bps
        if self.faults is not None:
            # Stragglers stretch the busiest executor; every failed task
            # wave re-runs it once more.
            slowdown = self.faults.compute_slowdown(site_name)
            waves = self.faults.task_failure_waves(site_name)
            site_metrics.task_retry_waves = waves
            site_metrics.map_seconds *= slowdown * (1.0 + waves)
        overhead = (
            site_metrics.rdd_overhead_seconds if self.charge_rdd_overhead else 0.0
        )
        site_metrics.map_finish = site_metrics.map_seconds + overhead
        metrics = instrument.current().metrics
        if metrics.enabled:
            # Combiner hit rate per site = 1 - output/input over these two.
            metrics.counter("combiner_input_bytes", site=site_name).inc(
                site_metrics.map_output_bytes
            )
            metrics.counter("combiner_output_bytes", site=site_name).inc(
                site_metrics.intermediate_bytes
            )
            metrics.histogram("map_seconds", site=site_name).observe(
                site_metrics.map_finish
            )
            if site_metrics.rdd_overhead_seconds > 0:
                metrics.histogram("rdd_overhead_seconds", site=site_name).observe(
                    site_metrics.rdd_overhead_seconds
                )
            if site_metrics.task_retry_waves > 0:
                metrics.counter("task_retries", site=site_name).inc(
                    site_metrics.task_retry_waves
                )
        return executor_outputs

    def _plan_shuffle(
        self,
        site_outputs: Mapping[str, List[CombinedOutput]],
        task_map: ReduceTaskMap,
        metrics: Dict[str, SiteMetrics],
        tag: str = "job-0",
    ) -> List[Transfer]:
        """Route combined records to reduce sites; build WAN transfers.

        Routing is batched: each source site's keys go through
        :meth:`ReduceTaskMap.routing_table` (one hash pass per distinct
        key, memoized across calls), and per-destination byte totals are
        masked-``np.cumsum`` folds — a strict left fold over the records
        in encounter order, so every float matches the per-record
        ``volume[(src, dst)] += record.size_bytes`` accumulation exactly.
        """
        volume: Dict[tuple, float] = {}
        for src, outputs in site_outputs.items():
            keys: List = []
            sizes: List[float] = []
            for output in outputs:
                for key, record in output.records.items():
                    keys.append(key)
                    sizes.append(record.size_bytes)
            if not keys:
                continue
            table = task_map.routing_table(keys)
            if len(keys) < _BATCH_MIN_KEYS:
                for key, size in zip(keys, sizes):
                    dst = table[key]
                    volume[(src, dst)] = volume.get((src, dst), 0.0) + size
                continue
            dst_codes: Dict[str, int] = {}
            codes = np.empty(len(keys), dtype=np.intp)
            for position, key in enumerate(keys):
                code = dst_codes.setdefault(table[key], len(dst_codes))
                codes[position] = code
            size_array = np.asarray(sizes, dtype=np.float64)
            for dst, code in dst_codes.items():
                selected = size_array[codes == code]
                volume[(src, dst)] = float(np.cumsum(selected)[-1])
        obs = instrument.current()
        registry = obs.metrics
        telemetry = obs.telemetry
        transfers: List[Transfer] = []
        wan_bytes = 0.0
        lan_bytes = 0.0
        earliest_start: Optional[float] = None
        for (src, dst), num_bytes in sorted(volume.items()):
            if src == dst:
                metrics[src].local_shuffle_bytes += num_bytes
                lan_bytes += num_bytes
            else:
                metrics[src].uploaded_bytes += num_bytes
                metrics[dst].downloaded_bytes += num_bytes
                wan_bytes += num_bytes
            link = "lan" if src == dst else "wan"
            if registry.enabled:
                registry.counter(
                    "shuffle_bytes", src=src, dst=dst, link=link
                ).inc(num_bytes)
            start = metrics[src].map_finish
            if earliest_start is None or start < earliest_start:
                earliest_start = start
            transfers.append(
                Transfer(
                    src=src,
                    dst=dst,
                    num_bytes=num_bytes,
                    start_time=metrics[src].map_finish,
                    tag=tag,
                )
            )
        # One aggregate event per planning call; per-edge detail is already
        # on the flow-start events the transfers produce.
        if telemetry.enabled and transfers:
            telemetry.emit(
                "shuffle-plan",
                t=earliest_start,
                tag=tag,
                edges=len(transfers),
                wan_bytes=wan_bytes,
                lan_bytes=lan_bytes,
            )
        return transfers

    def _reduce_stage(
        self, results: Sequence[TransferResult], metrics: Dict[str, SiteMetrics]
    ) -> float:
        """Compute reduce finish times; returns the job QCT.

        Transfers that failed under chaos delivered nothing: their bytes
        move from the uploaded/downloaded ledgers into the source site's
        ``lost_bytes`` (so WAN conservation holds over delivered bytes),
        and the reduce at the destination still waits out the failed
        attempt before proceeding with what did arrive.
        """
        inbound_finish: Dict[str, float] = {}
        inbound_bytes: Dict[str, float] = {}
        for result in results:
            dst = result.transfer.dst
            inbound_finish[dst] = max(inbound_finish.get(dst, 0.0), result.finish_time)
            if result.failed:
                src = result.transfer.src
                metrics[src].uploaded_bytes -= result.transfer.num_bytes
                metrics[src].lost_bytes += result.transfer.num_bytes
                metrics[dst].downloaded_bytes -= result.transfer.num_bytes
                continue
            inbound_bytes[dst] = inbound_bytes.get(dst, 0.0) + result.transfer.num_bytes

        qct = 0.0
        for site_name, site_metrics in metrics.items():
            site = self.topology.site(site_name)
            start = max(site_metrics.map_finish, inbound_finish.get(site_name, 0.0))
            received = inbound_bytes.get(site_name, 0.0)
            site_metrics.reduce_seconds = received / (
                site.compute_bps * site.executors
            )
            if self.faults is not None and received > 0:
                site_metrics.reduce_seconds *= self.faults.compute_slowdown(
                    site_name
                )
            site_metrics.finish_time = start + site_metrics.reduce_seconds
            qct = max(qct, site_metrics.finish_time)
        return qct
