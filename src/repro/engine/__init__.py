"""Record-level map/combine/shuffle/reduce engine over the WAN simulator.

A deliberately small Spark: datasets are split into RDD partitions,
partitions are assigned to executors on machines, map output is combined
per executor (identical keys merge), and the combined intermediate data
shuffles across sites through :class:`repro.wan.TransferScheduler` under
a reduce-task placement.  Intermediate-data reduction *emerges* from the
actual record keys — no closed-form similarity shortcut — which is what
makes similarity-aware placement measurably win or lose here, exactly as
in the paper's Figure 1.
"""

from repro.engine.assignment import AssignmentResult, assign_partitions
from repro.engine.combiner import CombinedOutput, combine
from repro.engine.dag import (
    DagResult,
    JoinStage,
    MapReduceStage,
    execute_dag,
)
from repro.engine.job import JobResult, MapReduceEngine, SiteMetrics
from repro.engine.join import JoinResult, JoinSpec, run_join
from repro.engine.rdd import RDDPartition, make_partitions
from repro.engine.shuffle import ReduceTaskMap, key_to_task
from repro.engine.spec import MapReduceSpec
from repro.engine.timeline import Timeline, TimelineEvent

__all__ = [
    "AssignmentResult",
    "CombinedOutput",
    "DagResult",
    "JobResult",
    "JoinResult",
    "JoinSpec",
    "JoinStage",
    "MapReduceEngine",
    "MapReduceSpec",
    "MapReduceStage",
    "RDDPartition",
    "ReduceTaskMap",
    "SiteMetrics",
    "Timeline",
    "TimelineEvent",
    "assign_partitions",
    "combine",
    "execute_dag",
    "key_to_task",
    "make_partitions",
    "run_join",
]
