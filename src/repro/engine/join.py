"""Two-dataset equi-join stage.

§2.1: queries compile into a DAG of stages.  The star-schema queries of
TPC-DS join a fact table against dimensions; this module provides the
geo-distributed join stage on top of the engine's concurrent execution:
both sides map + combine locally, shuffle through a *shared* reduce-task
map (so equal keys meet at the same site), and the reduce stage matches
them.

The join result size follows from the actual key multiplicities:
``|A ⋈ B| = Σ_k count_A(k) · count_B(k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.engine.job import JobResult, MapReduceEngine
from repro.engine.spec import MapReduceSpec
from repro.errors import EngineError
from repro.types import GeoDataset


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join between two datasets on projected key columns."""

    left_key_indices: "tuple[int, ...]"
    right_key_indices: "tuple[int, ...]"
    left_ratio: float = 1.0
    right_ratio: float = 1.0
    num_reduce_tasks: int = 100
    output_record_bytes: int = 200

    def __post_init__(self) -> None:
        if len(self.left_key_indices) != len(self.right_key_indices):
            raise EngineError(
                "join keys must have equal arity on both sides; got "
                f"{self.left_key_indices} vs {self.right_key_indices}"
            )
        if self.output_record_bytes < 1:
            raise EngineError("output_record_bytes must be >= 1")

    def left_spec(self) -> MapReduceSpec:
        return MapReduceSpec.of(
            self.left_key_indices, self.left_ratio, self.num_reduce_tasks
        )

    def right_spec(self) -> MapReduceSpec:
        return MapReduceSpec.of(
            self.right_key_indices, self.right_ratio, self.num_reduce_tasks
        )


@dataclass
class JoinResult:
    """Outcome of a geo-distributed join."""

    qct: float
    left: JobResult
    right: JobResult
    joined_records: int
    matched_keys: int
    output_bytes: int

    @property
    def total_wan_bytes(self) -> float:
        return self.left.total_wan_bytes + self.right.total_wan_bytes


def run_join(
    engine: MapReduceEngine,
    left: GeoDataset,
    right: GeoDataset,
    spec: JoinSpec,
    reduce_fractions: Optional[Mapping[str, float]] = None,
    cube_sorted: bool = False,
) -> JoinResult:
    """Execute the join; both sides share the WAN and the task map."""
    left_result, right_result = engine.run_many(
        [(left, spec.left_spec()), (right, spec.right_spec())],
        reduce_fractions=reduce_fractions,
        cube_sorted=cube_sorted,
        share_task_map=True,
        collect_keys=True,
    )
    joined = 0
    matched = 0
    for key, left_count in left_result.key_counts.items():
        right_count = right_result.key_counts.get(key)
        if right_count:
            matched += 1
            joined += left_count * right_count
    # The join itself happens at the reduce sites after both sides land.
    qct = max(left_result.qct, right_result.qct)
    return JoinResult(
        qct=qct,
        left=left_result,
        right=right_result,
        joined_records=joined,
        matched_keys=matched,
        output_bytes=joined * spec.output_record_bytes,
    )
