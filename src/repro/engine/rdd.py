"""RDD partitions.

A site's shard is chunked into fixed-size partitions.  Whether records
are chunked in raw arrival order (Iridium) or in cube-sorted order
(Iridium-C and all Bohr variants) decides how much per-executor combining
is possible later: cube sorting clusters identical keys into the same
partition, which is the local payoff of §4.1's pre-processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.errors import EngineError
from repro.types import Key, Record


@dataclass
class RDDPartition:
    """One partition of records living at a site."""

    partition_id: int
    site: str
    records: List[Record] = field(default_factory=list)

    @property
    def num_records(self) -> int:
        return len(self.records)

    @property
    def size_bytes(self) -> int:
        return sum(record.size_bytes for record in self.records)

    def key_set(self, key_indices: Sequence[int]) -> Set[Key]:
        """Distinct keys in this partition (input to RDD similarity)."""
        return {record.key(key_indices) for record in self.records}


def make_partitions(
    records: Sequence[Record],
    site: str,
    partition_records: int,
    key_indices: "Sequence[int] | None" = None,
    cube_sorted: bool = False,
    start_id: int = 0,
) -> List[RDDPartition]:
    """Chunk a site's records into partitions.

    With ``cube_sorted`` the records are ordered by key first, emulating
    data served from OLAP cubes whose similarity search has already
    clustered identical keys together (§4.1).  Raw order models reading
    unorganized HDFS blocks.
    """
    if partition_records < 1:
        raise EngineError("partition_records must be >= 1")
    if cube_sorted:
        if key_indices is None:
            raise EngineError("cube_sorted chunking requires key_indices")
        ordered = sorted(records, key=lambda record: str(record.key(key_indices)))
    else:
        ordered = list(records)
    partitions: List[RDDPartition] = []
    for offset in range(0, len(ordered), partition_records):
        partitions.append(
            RDDPartition(
                partition_id=start_id + len(partitions),
                site=site,
                records=ordered[offset : offset + partition_records],
            )
        )
    return partitions


def round_robin(items: Sequence, buckets: int) -> List[List]:
    """Deal items into ``buckets`` lists, round-robin."""
    if buckets < 1:
        raise EngineError("buckets must be >= 1")
    out: List[List] = [[] for _ in range(buckets)]
    for index, item in enumerate(items):
        out[index % buckets].append(item)
    return out
