"""OLAP cube substrate (§2.2, §4.1).

The paper stores raw data as OLAP cubes (Apache Kylin on Hive) so that
similarity checking can operate on pre-aggregated, pre-clustered cells
instead of raw records.  This package provides the equivalent:

- :class:`~repro.olap.cube.OLAPCube` — a multi-dimensional aggregate with
  cells addressed by coordinate tuples.
- :mod:`~repro.olap.operations` — slice, dice, roll-up, drill-down, pivot
  and projection (dimension cubes).
- :class:`~repro.olap.dimension_cube.DimensionCubeSet` — the per-query-type
  dimension cubes of §4.1.
- :class:`~repro.olap.builder.CubeBuilder` — incremental cube maintenance
  with buffering of data generated during query execution.
- :mod:`~repro.olap.storage` — the storage-overhead model behind Table 6.
"""

from repro.olap.builder import CubeBuilder
from repro.olap.cube import CellAggregate, OLAPCube
from repro.olap.dimension import Dimension, Hierarchy
from repro.olap.dimension_cube import DimensionCubeSet
from repro.olap.operations import dice, drill_down, pivot, project, roll_up, slice_cube
from repro.olap.storage import StorageModel, StorageReport

__all__ = [
    "CellAggregate",
    "CubeBuilder",
    "Dimension",
    "DimensionCubeSet",
    "Hierarchy",
    "OLAPCube",
    "StorageModel",
    "StorageReport",
    "dice",
    "drill_down",
    "pivot",
    "project",
    "roll_up",
    "slice_cube",
]
