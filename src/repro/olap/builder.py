"""Incremental cube maintenance with query-time buffering (§4.1).

"If new data are generated during query execution, they are buffered
until the query finishes."  The builder wraps a :class:`DimensionCubeSet`
with that buffering protocol and simple accounting used by the overhead
analysis (Table 7 / §8.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.errors import CubeError
from repro.olap.dimension_cube import DimensionCubeSet
from repro.types import Record, Schema


@dataclass
class CubeBuilder:
    """Maintains a dataset's cubes as data streams in."""

    cube_set: DimensionCubeSet
    _buffer: List[Record] = field(default_factory=list)
    _in_query: bool = False
    inserted: int = 0
    buffered_total: int = 0

    @classmethod
    def start(
        cls,
        schema: Schema,
        initial_records: Iterable[Record] = (),
        measure: Optional[str] = None,
    ) -> "CubeBuilder":
        return cls(DimensionCubeSet.build(initial_records, schema, measure=measure))

    @property
    def schema(self) -> Schema:
        return self.cube_set.schema

    def ingest(
        self, records: Iterable[Record], eager_attributes: Optional[Sequence[str]] = None
    ) -> None:
        """Add newly generated records.

        During query execution records are buffered; otherwise they are
        inserted immediately (eagerly into the dimension cube the next
        query needs, lazily elsewhere).
        """
        for record in records:
            if self._in_query:
                self._buffer.append(record)
                self.buffered_total += 1
            else:
                self.cube_set.insert(record, eager_attributes=eager_attributes)
                self.inserted += 1

    def begin_query(self) -> None:
        if self._in_query:
            raise CubeError("query already in progress")
        self._in_query = True

    def end_query(self, eager_attributes: Optional[Sequence[str]] = None) -> int:
        """Finish the query and flush the buffer; returns flushed count."""
        if not self._in_query:
            raise CubeError("no query in progress")
        self._in_query = False
        flushed = len(self._buffer)
        for record in self._buffer:
            self.cube_set.insert(record, eager_attributes=eager_attributes)
            self.inserted += 1
        self._buffer.clear()
        return flushed

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def catch_up(self) -> int:
        """Run deferred background updates on all dimension cubes."""
        return self.cube_set.update_background()
