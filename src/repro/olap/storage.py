"""Storage-overhead model (Table 6, §8.5).

Bohr trades storage for latency: raw data is kept (HDFS replication is
untouched, §7), OLAP cubes add roughly 40–45% of the raw size, and the
similarity metadata (sorted cluster index + probes) adds ~2%.  Queries
themselves only need the cubes and similarity metadata, so "storage needed
by queries" is far below what Iridium needs (the raw data).

The model is structural, not hard-coded: cube size follows from the
number of cells and the per-cell encoding; metadata size from the cluster
index.  With workload-realistic key cardinality the ratios land where
Table 6 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.olap.cube import OLAPCube

#: Fixed per-cell overhead: aggregate struct, hash bucket, count/sum fields.
CELL_HEADER_BYTES = 48
#: Encoded bytes per dimension value stored in a cell coordinate.
BYTES_PER_DIMENSION_VALUE = 24
#: Per-cell entry in the similarity cluster index (cell id + count + rank).
CLUSTER_INDEX_ENTRY_BYTES = 20
#: Serialized size of one probe record (coordinates + weight).
PROBE_RECORD_BYTES = 256
#: Query-processing working space as a fraction of the data it reads
#: ("storage needed by queries is higher than storage for OLAP cubes ...
#: due to the overhead of performing OLAP operations").
QUERY_WORKSPACE_FRACTION = 0.12


def cube_bytes(cube: OLAPCube) -> int:
    """Serialized size of one cube."""
    per_cell = CELL_HEADER_BYTES + BYTES_PER_DIMENSION_VALUE * len(cube.dimensions)
    return cube.num_cells * per_cell


def similarity_metadata_bytes(cubes: Iterable[OLAPCube], probe_records: int) -> int:
    """Cluster index over every cube plus stored probe records."""
    index_bytes = sum(cube.num_cells * CLUSTER_INDEX_ENTRY_BYTES for cube in cubes)
    return index_bytes + probe_records * PROBE_RECORD_BYTES


@dataclass(frozen=True)
class StorageReport:
    """Per-node storage breakdown for one scheme (one row of Table 6)."""

    scheme: str
    raw_bytes: int
    cube_bytes: int
    similarity_bytes: int

    @property
    def per_node_total(self) -> int:
        """Everything the node stores."""
        return self.raw_bytes + self.cube_bytes + self.similarity_bytes

    @property
    def needed_by_queries(self) -> int:
        """Storage actually read while processing queries.

        Iridium reads raw data; cube-based schemes read cubes (+ similarity
        metadata for Bohr), each inflated by OLAP working space.
        """
        if self.cube_bytes <= 0:
            base = self.raw_bytes
        else:
            base = self.cube_bytes + self.similarity_bytes
        return int(base * (1.0 + QUERY_WORKSPACE_FRACTION))


class StorageModel:
    """Builds :class:`StorageReport` rows for the schemes of Table 6."""

    def __init__(self, raw_bytes_per_node: int) -> None:
        self.raw_bytes_per_node = raw_bytes_per_node

    def iridium(self) -> StorageReport:
        """Raw data only (plus the small scratch Iridium keeps)."""
        return StorageReport(
            scheme="iridium",
            raw_bytes=self.raw_bytes_per_node,
            cube_bytes=0,
            similarity_bytes=0,
        )

    def iridium_c(self, cubes: Iterable[OLAPCube]) -> StorageReport:
        """Raw data + OLAP cubes, no similarity metadata."""
        return StorageReport(
            scheme="iridium-c",
            raw_bytes=self.raw_bytes_per_node,
            cube_bytes=sum(cube_bytes(cube) for cube in cubes),
            similarity_bytes=0,
        )

    def bohr(
        self, cubes: Iterable[OLAPCube], probe_records: int
    ) -> StorageReport:
        """Raw data + cubes + similarity metadata."""
        cube_list = list(cubes)
        return StorageReport(
            scheme="bohr",
            raw_bytes=self.raw_bytes_per_node,
            cube_bytes=sum(cube_bytes(cube) for cube in cube_list),
            similarity_bytes=similarity_metadata_bytes(cube_list, probe_records),
        )
