"""Classic OLAP operations (§2.2): slice, dice, roll-up, drill-down, pivot.

All operations are pure — they return new cubes and never mutate their
input.  ``project`` (aggregate away dimensions) is the workhorse behind
dimension cubes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence, Set

from repro.errors import CubeError
from repro.olap.cube import CellAggregate, OLAPCube
from repro.types import Key, Value


def slice_cube(cube: OLAPCube, dimension: str, value: Value) -> OLAPCube:
    """Fix one dimension to a single value, producing a cube without it.

    E.g. slicing the time dimension of Figure 2 at 2014 yields the sales
    of all products in all regions in 2014.
    """
    index = cube.dimension_index(dimension)
    remaining = tuple(name for name in cube.dimensions if name != dimension)
    if not remaining:
        raise CubeError("slicing the last dimension would leave an empty cube")
    result = OLAPCube(dimensions=remaining, measure=cube.measure)
    for coordinate, cell in cube.cells.items():
        if coordinate[index] != value:
            continue
        reduced = coordinate[:index] + coordinate[index + 1 :]
        _accumulate(result, reduced, cell)
    return result


def dice(cube: OLAPCube, selections: Mapping[str, Iterable[Value]]) -> OLAPCube:
    """Keep only cells whose values fall inside per-dimension sets.

    Dimensionality is preserved; e.g. dicing Figure 2 on
    ``{"product": {"A"}, "time": {"2014"}}`` gives product A's 2014 sales
    across all regions.
    """
    index_of = {name: cube.dimension_index(name) for name in selections}
    value_sets: dict = {name: set(values) for name, values in selections.items()}
    result = OLAPCube(dimensions=cube.dimensions, measure=cube.measure)
    for coordinate, cell in cube.cells.items():
        if all(
            coordinate[index_of[name]] in allowed
            for name, allowed in value_sets.items()
        ):
            result.cells[coordinate] = cell.copy()
    return result


def roll_up(
    cube: OLAPCube, dimension: str, mapping: Callable[[Value], Value]
) -> OLAPCube:
    """Coarsen one dimension by mapping its values upward in a hierarchy."""
    index = cube.dimension_index(dimension)
    result = OLAPCube(dimensions=cube.dimensions, measure=cube.measure)
    for coordinate, cell in cube.cells.items():
        coarse = (
            coordinate[:index] + (mapping(coordinate[index]),) + coordinate[index + 1 :]
        )
        _accumulate(result, coarse, cell)
    return result


def drill_down(base_cube: OLAPCube, dimensions: Sequence[str]) -> OLAPCube:
    """Re-derive a finer view from a base cube holding more dimensions.

    Aggregation is lossy, so drilling down requires the finer *base* cube;
    this mirrors real OLAP engines which answer drill-down from the base
    cuboid.  ``dimensions`` must be a superset of nothing in particular —
    any subset of the base cube's dimensions is valid; the point is that
    the caller holds a coarse cube and goes back to the base to get detail.
    """
    return project(base_cube, dimensions)


def project(cube: OLAPCube, dimensions: Sequence[str]) -> OLAPCube:
    """Aggregate away all dimensions not listed, preserving order given.

    This is the derivation of a *dimension cube* (§2.2): e.g. projecting
    Figure 2's cube onto (product, time) aggregates along region.
    """
    if not dimensions:
        raise CubeError("projection needs at least one dimension")
    if len(set(dimensions)) != len(dimensions):
        raise CubeError(f"duplicate dimensions in projection: {dimensions}")
    indices = [cube.dimension_index(name) for name in dimensions]
    result = OLAPCube(dimensions=tuple(dimensions), measure=cube.measure)
    for coordinate, cell in cube.cells.items():
        projected: Key = tuple(coordinate[index] for index in indices)
        _accumulate(result, projected, cell)
    return result


def pivot(cube: OLAPCube, dimensions: Sequence[str]) -> OLAPCube:
    """Reorder dimensions (rotate the cube) without changing content."""
    if set(dimensions) != set(cube.dimensions) or len(dimensions) != len(
        cube.dimensions
    ):
        raise CubeError(
            f"pivot must permute exactly {list(cube.dimensions)}, got {list(dimensions)}"
        )
    return project(cube, dimensions)


def _accumulate(cube: OLAPCube, coordinate: Key, cell: CellAggregate) -> None:
    existing = cube.cells.get(coordinate)
    if existing is None:
        cube.cells[coordinate] = cell.copy()
    else:
        existing.merge(cell)
