"""The OLAP cube data structure.

A cube aggregates records along a fixed tuple of dimensions (attribute
names).  Each distinct coordinate tuple owns one :class:`CellAggregate`
holding the record count, total serialized bytes and an optional numeric
measure sum.  Identical-key records collapse into one cell — exactly the
aggregation a combiner performs — so cube cells double as the "records
sorted and clustered according to their similarity" of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CubeError
from repro.types import Key, Record, Schema, Value


@dataclass
class CellAggregate:
    """Aggregate of all records sharing one coordinate tuple."""

    count: int = 0
    size_bytes: int = 0
    measure_sum: float = 0.0

    def add(self, size_bytes: int, measure: float = 0.0, count: int = 1) -> None:
        self.count += count
        self.size_bytes += size_bytes
        self.measure_sum += measure

    def merge(self, other: "CellAggregate") -> None:
        self.count += other.count
        self.size_bytes += other.size_bytes
        self.measure_sum += other.measure_sum

    def copy(self) -> "CellAggregate":
        return CellAggregate(self.count, self.size_bytes, self.measure_sum)


@dataclass
class OLAPCube:
    """A multi-dimensional aggregate over one dataset.

    Parameters
    ----------
    dimensions:
        Ordered attribute names forming the coordinate space.
    measure:
        Optional numeric attribute whose values are summed per cell.
    """

    dimensions: Tuple[str, ...]
    measure: Optional[str] = None
    cells: Dict[Key, CellAggregate] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise CubeError("cube needs at least one dimension")
        if len(set(self.dimensions)) != len(self.dimensions):
            raise CubeError(f"duplicate dimensions: {self.dimensions}")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[Record],
        schema: Schema,
        dimensions: Sequence[str],
        measure: Optional[str] = None,
    ) -> "OLAPCube":
        """Build a cube by inserting every record."""
        cube = cls(dimensions=tuple(dimensions), measure=measure)
        indices = schema.indices(dimensions)
        measure_index = schema.index(measure) if measure is not None else None
        for record in records:
            cube._insert_at(record.key(indices), record, measure_index)
        return cube

    def insert(self, record: Record, schema: Schema) -> None:
        """Insert one record (used by the incremental builder)."""
        indices = schema.indices(self.dimensions)
        measure_index = schema.index(self.measure) if self.measure else None
        self._insert_at(record.key(indices), record, measure_index)

    def _insert_at(
        self, coordinate: Key, record: Record, measure_index: Optional[int]
    ) -> None:
        measure_value = 0.0
        if measure_index is not None:
            raw = record.values[measure_index]
            if not isinstance(raw, (int, float)) or isinstance(raw, bool):
                raise CubeError(
                    f"measure attribute {self.measure!r} must be numeric, "
                    f"got {raw!r}"
                )
            measure_value = float(raw)
        cell = self.cells.get(coordinate)
        if cell is None:
            cell = self.cells[coordinate] = CellAggregate()
        cell.add(record.size_bytes, measure_value)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def dimension_index(self, name: str) -> int:
        try:
            return self.dimensions.index(name)
        except ValueError:
            raise CubeError(
                f"cube has no dimension {name!r}; has {list(self.dimensions)}"
            ) from None

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def total_count(self) -> int:
        return sum(cell.count for cell in self.cells.values())

    @property
    def total_bytes(self) -> int:
        return sum(cell.size_bytes for cell in self.cells.values())

    def __iter__(self) -> Iterator[Tuple[Key, CellAggregate]]:
        return iter(self.cells.items())

    def __len__(self) -> int:
        return len(self.cells)

    def coordinates(self) -> List[Key]:
        return list(self.cells.keys())

    def values_of(self, dimension: str) -> List[Value]:
        """Distinct values appearing along one dimension."""
        index = self.dimension_index(dimension)
        return sorted({coordinate[index] for coordinate in self.cells}, key=str)

    def cells_by_weight(self) -> List[Tuple[Key, CellAggregate]]:
        """Cells sorted by descending record count (ties: lexicographic).

        This is the "similarity search" of §4.1: the cube's densest cells
        are its largest clusters of mutually similar records, and the
        top-k of this ordering become the probe (§4.2).
        """
        return sorted(
            self.cells.items(), key=lambda item: (-item[1].count, str(item[0]))
        )

    def merge_cube(self, other: "OLAPCube") -> None:
        """Merge another cube with identical dimensions into this one."""
        if other.dimensions != self.dimensions:
            raise CubeError(
                f"cannot merge cube over {other.dimensions} into {self.dimensions}"
            )
        for coordinate, cell in other.cells.items():
            existing = self.cells.get(coordinate)
            if existing is None:
                self.cells[coordinate] = cell.copy()
            else:
                existing.merge(cell)

    def copy(self) -> "OLAPCube":
        return OLAPCube(
            dimensions=self.dimensions,
            measure=self.measure,
            cells={coordinate: cell.copy() for coordinate, cell in self.cells.items()},
        )
