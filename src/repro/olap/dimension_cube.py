"""Per-query-type dimension cubes (§4.1).

Different recurring queries touch different attributes of the same
dataset.  Bohr classifies queries by the attribute set they access — a
*query type* — and serves each type from a dimension cube containing only
those attributes, derived from the base cube.

When new data arrives during query execution it is buffered; only the
dimension cube needed by the imminent query is updated eagerly, the rest
catch up in the background (here: on :meth:`DimensionCubeSet.update_background`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import CubeError
from repro.olap.cube import OLAPCube
from repro.olap.operations import project
from repro.types import Record, Schema

#: A query type is the ordered tuple of attributes the query accesses.
QueryTypeKey = Tuple[str, ...]


def query_type_key(attributes: Sequence[str]) -> QueryTypeKey:
    """Canonical key for a query type (order-insensitive)."""
    if not attributes:
        raise CubeError("query type needs at least one attribute")
    return tuple(sorted(attributes))


@dataclass
class DimensionCubeSet:
    """The base cube of a dataset plus its derived dimension cubes."""

    schema: Schema
    base: OLAPCube
    _derived: Dict[QueryTypeKey, OLAPCube] = field(default_factory=dict)
    _stale: Dict[QueryTypeKey, List[Record]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        records: Iterable[Record],
        schema: Schema,
        measure: Optional[str] = None,
    ) -> "DimensionCubeSet":
        """Build the base cube over every attribute of the schema."""
        base = OLAPCube.from_records(records, schema, schema.names, measure=measure)
        return cls(schema=schema, base=base)

    def register_query_type(self, attributes: Sequence[str]) -> QueryTypeKey:
        """Ensure a dimension cube exists for this attribute set."""
        key = query_type_key(attributes)
        for name in key:
            if name not in self.schema:
                raise CubeError(f"query attribute {name!r} not in schema")
        if key not in self._derived:
            self._derived[key] = project(self.base, list(key))
            self._stale[key] = []
        return key

    def cube_for(self, attributes: Sequence[str]) -> OLAPCube:
        """The dimension cube serving queries over these attributes."""
        key = self.register_query_type(attributes)
        return self._derived[key]

    @property
    def query_types(self) -> List[QueryTypeKey]:
        return list(self._derived.keys())

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------

    def insert(
        self, record: Record, eager_attributes: Optional[Sequence[str]] = None
    ) -> None:
        """Insert a new record.

        The base cube is always updated.  If ``eager_attributes`` names a
        query type, only that dimension cube is updated now; all others
        are marked stale and updated by :meth:`update_background` — the
        exact policy described in §4.1.
        """
        self.schema.validate_record(record)
        self.base.insert(record, self.schema)
        eager_key = query_type_key(eager_attributes) if eager_attributes else None
        for key, cube in self._derived.items():
            if eager_key is None or key == eager_key:
                cube.insert(record, self.schema)
            else:
                self._stale[key].append(record)

    def update_background(self) -> int:
        """Apply all deferred dimension-cube updates; returns the count."""
        applied = 0
        for key, pending in self._stale.items():
            cube = self._derived[key]
            for record in pending:
                cube.insert(record, self.schema)
                applied += 1
            pending.clear()
        return applied

    def pending_updates(self) -> int:
        return sum(len(pending) for pending in self._stale.values())

    def is_consistent(self) -> bool:
        """True when every dimension cube matches a fresh projection."""
        if self.pending_updates():
            return False
        for key, cube in self._derived.items():
            fresh = project(self.base, list(key))
            if fresh.cells.keys() != cube.cells.keys():
                return False
            for coordinate, cell in fresh.cells.items():
                if cube.cells[coordinate].count != cell.count:
                    return False
        return True
