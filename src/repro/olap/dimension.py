"""Dimensions and hierarchies.

A cube dimension corresponds to one dataset attribute.  Hierarchical
dimensions (day → month → year, city → country → region) support roll-up:
each level maps finer values to coarser ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import CubeError
from repro.types import Value

#: Maps a finer value to its parent value one level up.
LevelMapping = Callable[[Value], Value]


@dataclass
class Hierarchy:
    """An ordered list of named levels, finest first.

    ``mappings[i]`` maps values at level ``i`` to values at level ``i+1``;
    there is one fewer mapping than there are levels.
    """

    levels: List[str]
    mappings: List[LevelMapping] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.levels) < 1:
            raise CubeError("hierarchy needs at least one level")
        if len(self.mappings) != len(self.levels) - 1:
            raise CubeError(
                f"hierarchy with {len(self.levels)} levels needs "
                f"{len(self.levels) - 1} mappings, got {len(self.mappings)}"
            )

    def level_index(self, level: str) -> int:
        try:
            return self.levels.index(level)
        except ValueError:
            raise CubeError(f"unknown hierarchy level {level!r}") from None

    def map_to(self, value: Value, from_level: str, to_level: str) -> Value:
        """Map a value from a finer level to a coarser one."""
        start = self.level_index(from_level)
        end = self.level_index(to_level)
        if end < start:
            raise CubeError(
                f"cannot map downwards from {from_level!r} to {to_level!r}; "
                "drill-down needs the base cube"
            )
        current = value
        for mapping in self.mappings[start:end]:
            current = mapping(current)
        return current


@dataclass(frozen=True)
class Dimension:
    """One cube dimension, optionally hierarchical."""

    name: str
    hierarchy: Optional[Hierarchy] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CubeError("dimension name must be non-empty")

    @property
    def is_hierarchical(self) -> bool:
        return self.hierarchy is not None


def date_hierarchy() -> Hierarchy:
    """A ready-made day → month → year hierarchy for ``YYYY-MM-DD`` strings."""

    def day_to_month(value: Value) -> Value:
        return str(value)[:7]

    def month_to_year(value: Value) -> Value:
        return str(value)[:4]

    return Hierarchy(
        levels=["day", "month", "year"],
        mappings=[day_to_month, month_to_year],
    )


def region_hierarchy(country_of: Dict[str, str]) -> Hierarchy:
    """A city → country hierarchy backed by an explicit mapping table."""

    def city_to_country(value: Value) -> Value:
        key = str(value)
        if key not in country_of:
            raise CubeError(f"city {key!r} missing from region mapping")
        return country_of[key]

    return Hierarchy(levels=["city", "country"], mappings=[city_to_country])
