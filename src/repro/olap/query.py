"""Answering aggregation queries directly from OLAP cubes.

Table 6's punchline is that cube-based schemes serve queries *from the
cubes*, never touching raw data.  This module provides that serving
path: SUM / COUNT / AVG / MIN-free group-bys are answered from the
dimension cube's cells, and the answer provably equals what the engine
computes over the raw records (tested against brute force).

MIN/MAX need per-cell extrema the cube does not keep; they raise, which
tells the controller to fall back to the raw path.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import CubeError, QueryError
from repro.olap.cube import OLAPCube
from repro.olap.dimension_cube import DimensionCubeSet
from repro.query.spec import QuerySpec
from repro.types import Key

#: Aggregations a cube cell can answer exactly.
CUBE_ANSWERABLE = ("SUM", "COUNT", "AVG")


def answer_from_cube(
    cube: OLAPCube, aggregate: str
) -> Dict[Key, float]:
    """Answer one aggregate over the cube's own dimensions.

    ``aggregate`` is ``"COUNT"``, ``"SUM"`` or ``"AVG"``; SUM/AVG use the
    cube's measure attribute.
    """
    func = aggregate.upper()
    if func not in CUBE_ANSWERABLE:
        raise QueryError(
            f"aggregate {aggregate!r} cannot be answered from a cube; "
            f"answerable: {CUBE_ANSWERABLE}"
        )
    if func in ("SUM", "AVG") and cube.measure is None:
        raise CubeError(f"cube has no measure attribute for {func}")
    answers: Dict[Key, float] = {}
    for coordinate, cell in cube.cells.items():
        if func == "COUNT":
            answers[coordinate] = float(cell.count)
        elif func == "SUM":
            answers[coordinate] = cell.measure_sum
        else:  # AVG
            answers[coordinate] = (
                cell.measure_sum / cell.count if cell.count else 0.0
            )
    return answers


def parse_aggregate(expression: str) -> Tuple[str, str]:
    """Split ``"SUM(revenue)"`` into ``("SUM", "revenue")``."""
    open_paren = expression.find("(")
    if open_paren < 0 or not expression.endswith(")"):
        raise QueryError(f"malformed aggregate expression {expression!r}")
    return expression[:open_paren].upper(), expression[open_paren + 1 : -1].strip()


def answer_query(
    query: QuerySpec, cube_sets_by_site: Sequence[DimensionCubeSet]
) -> Dict[str, Dict[Key, float]]:
    """Answer a parsed aggregation query from per-site cube sets.

    Each site contributes the dimension cube for the query's type; the
    per-site cubes merge (cells with equal coordinates add up, exactly
    like the reduce stage) and every requested aggregate is evaluated.
    Returns ``{aggregate_expression: {group_key: value}}``.
    """
    if not query.aggregates:
        raise QueryError("only aggregation queries can be cube-answered")
    if query.filters:
        raise QueryError(
            "filtered queries need the raw path (cube cells pre-aggregate "
            "away the filter columns)"
        )
    merged: "OLAPCube | None" = None
    for cube_set in cube_sets_by_site:
        cube = cube_set.cube_for(list(query.group_by))
        if merged is None:
            merged = cube.copy()
        else:
            merged.merge_cube(cube)
    if merged is None:
        raise QueryError("no cube sets supplied")

    results: Dict[str, Dict[Key, float]] = {}
    for expression in query.aggregates:
        func, column = parse_aggregate(expression)
        if func in ("SUM", "AVG") and merged.measure != column:
            raise CubeError(
                f"cube measures {merged.measure!r}, query aggregates "
                f"{column!r}; build the cube set with measure={column!r}"
            )
        results[expression] = answer_from_cube(merged, func)
    return results


def brute_force_answer(
    records, schema, group_by: Sequence[str], aggregate: str
) -> Dict[Key, float]:
    """Reference implementation over raw records (for tests/validation)."""
    func, column = parse_aggregate(aggregate) if "(" in aggregate else (
        aggregate.upper(), "",
    )
    key_indices = schema.indices(list(group_by))
    measure_index = schema.index(column) if func in ("SUM", "AVG") else None
    sums: Dict[Key, float] = {}
    counts: Dict[Key, int] = {}
    for record in records:
        key = record.key(key_indices)
        counts[key] = counts.get(key, 0) + 1
        if measure_index is not None:
            sums[key] = sums.get(key, 0.0) + float(record.values[measure_index])
    if func == "COUNT":
        return {key: float(value) for key, value in counts.items()}
    if func == "SUM":
        return sums
    if func == "AVG":
        return {key: sums.get(key, 0.0) / counts[key] for key in counts}
    raise QueryError(f"unsupported aggregate {aggregate!r}")
