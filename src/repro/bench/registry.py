"""Benchmark case registry and the harness-owned seed.

A *case* is one named measurement: a callable returning the metrics of
one figure/table/ablation reproduction, split by clock::

    @register_bench("fig06-qct-random", suites=("figures", "smoke"))
    def case():
        result = run_scheme("bohr", "tpcds")
        return {
            "sim": {"qct.bohr.tpcds": result.mean_qct},
            "wall": {"lp_seconds.tpcds": result.prep.lp_solve_seconds},
        }

``sim`` metrics live on the simulated clock — deterministic for a pinned
seed, gated with a tight tolerance.  ``wall`` metrics are host-machine
timings — gated loosely.  All metrics are lower-is-better by convention
(record ``wan_bytes``, not "reduction %").

The harness owns the seed: scripts call :func:`bench_seed` instead of
hard-coding constants (lint rule R007 enforces this for ``benchmarks/``),
so ``repro bench --seed N`` re-runs the whole suite under a different
randomness universe.  ``REPRO_BENCH_SEED`` overrides the default for
plain ``pytest benchmarks`` runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import BenchError

#: Metrics returned by a case: {"sim": {...}, "wall": {...}}.
CaseMetrics = Mapping[str, Mapping[str, float]]
CaseFn = Callable[[], CaseMetrics]

#: The seed every benchmark derives from unless the harness overrides it.
DEFAULT_SEED = 11

_METRIC_KINDS = ("sim", "wall")

_active_seed: Optional[int] = None


def bench_seed() -> int:
    """The harness-pinned seed (``REPRO_BENCH_SEED`` or 11 by default)."""
    if _active_seed is not None:
        return _active_seed
    env = os.environ.get("REPRO_BENCH_SEED")
    if env is not None:
        try:
            return int(env)
        except ValueError:
            raise BenchError(
                f"REPRO_BENCH_SEED={env!r} is not an integer"
            ) from None
    return DEFAULT_SEED


def set_bench_seed(seed: Optional[int]) -> None:
    """Pin (or with ``None`` unpin) the seed benchmarks derive from."""
    global _active_seed
    _active_seed = None if seed is None else int(seed)


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark measurement."""

    name: str
    fn: CaseFn
    suites: Tuple[str, ...]
    module: str = ""
    description: str = ""

    def collect(self) -> Dict[str, Dict[str, float]]:
        """Run the case and validate/normalize its metrics."""
        raw = self.fn()
        if not isinstance(raw, Mapping):
            raise BenchError(
                f"case {self.name!r} returned {type(raw).__name__}, "
                "expected a mapping with 'sim'/'wall' metric groups"
            )
        unknown = set(raw) - set(_METRIC_KINDS)
        if unknown:
            raise BenchError(
                f"case {self.name!r} returned unknown metric groups "
                f"{sorted(unknown)}; allowed: {_METRIC_KINDS}"
            )
        metrics: Dict[str, Dict[str, float]] = {}
        for kind in _METRIC_KINDS:
            group = raw.get(kind, {})
            metrics[kind] = {}
            for key, value in group.items():
                try:
                    metrics[kind][str(key)] = float(value)
                except (TypeError, ValueError):
                    raise BenchError(
                        f"case {self.name!r} metric {kind}.{key} is not "
                        f"numeric: {value!r}"
                    ) from None
        if not metrics["sim"] and not metrics["wall"]:
            raise BenchError(f"case {self.name!r} returned no metrics")
        return metrics


_CASES: Dict[str, BenchCase] = {}
_RESET_HOOKS: List[Callable[[], None]] = []


def register_bench(
    name: str,
    suites: Tuple[str, ...] = (),
    description: str = "",
) -> Callable[[CaseFn], CaseFn]:
    """Decorator registering one benchmark case under ``name``."""

    def decorate(fn: CaseFn) -> CaseFn:
        if name in _CASES:
            raise BenchError(f"duplicate benchmark case {name!r}")
        _CASES[name] = BenchCase(
            name=name,
            fn=fn,
            suites=tuple(suites),
            module=getattr(fn, "__module__", ""),
            description=description or (fn.__doc__ or "").strip(),
        )
        return fn

    return decorate


def register_reset_hook(hook: Callable[[], None]) -> None:
    """Register a cache-clearing hook the harness calls before each
    timed repetition, so every case is measured cold."""
    if hook not in _RESET_HOOKS:
        _RESET_HOOKS.append(hook)


def reset_caches() -> None:
    """Invoke every registered reset hook."""
    for hook in _RESET_HOOKS:
        hook()


def all_cases() -> List[BenchCase]:
    """Every registered case, name-sorted (registration-order agnostic)."""
    return [_CASES[name] for name in sorted(_CASES)]


def cases_for(suite: str) -> List[BenchCase]:
    """Cases belonging to ``suite`` (``full`` selects everything)."""
    if suite == "full":
        return all_cases()
    selected = [case for case in all_cases() if suite in case.suites]
    if not selected:
        raise BenchError(
            f"suite {suite!r} selected no cases; known suites: "
            f"{sorted({name for case in all_cases() for name in case.suites})}"
        )
    return selected


def clear_registry() -> None:
    """Drop all registered cases and hooks (test isolation only)."""
    _CASES.clear()
    _RESET_HOOKS.clear()
