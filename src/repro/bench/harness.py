"""The benchmark harness: run a suite of cases, emit a report.

Each case is executed ``warmup + repeat`` times with every registered
cache-reset hook invoked first, so repetitions measure the cold path and
the wall-clock median/stdev mean something.  Simulation-clock metrics
must come out bit-identical across repetitions — the harness asserts
this, piggybacking a determinism check on every benchmark run — and are
recorded once; wall metrics are recorded as the median across measured
repetitions.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.bench import registry
from repro.bench.discover import discover
from repro.bench.schema import build_report
from repro.errors import BenchError
from repro.util.stats import stdev

#: The curated subsets `repro bench --suite` accepts.
SUITES = ("smoke", "figures", "tables", "ablations", "serve", "hotpaths", "full")

ProgressFn = Callable[[str], None]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def run_case(
    case: registry.BenchCase, warmup: int, repeat: int
) -> Dict[str, Any]:
    """Execute one case; return its report entry."""
    if repeat < 1:
        raise BenchError("repeat must be >= 1")
    samples: List[float] = []
    sim_metrics: Optional[Dict[str, float]] = None
    wall_samples: Dict[str, List[float]] = {}
    for repetition in range(warmup + repeat):
        registry.reset_caches()
        # Wall-clock by design: the harness times benchmark cases.
        started = time.perf_counter()  # lint: allow[R001]
        metrics = case.collect()
        elapsed = time.perf_counter() - started  # lint: allow[R001]
        if repetition < warmup:
            continue
        samples.append(elapsed)
        if sim_metrics is None:
            sim_metrics = metrics["sim"]
        elif metrics["sim"] != sim_metrics:
            changed = sorted(
                key
                for key in set(sim_metrics) | set(metrics["sim"])
                if sim_metrics.get(key) != metrics["sim"].get(key)
            )
            raise BenchError(
                f"case {case.name!r} is nondeterministic: sim metrics "
                f"{changed} differ across same-seed repetitions"
            )
        for key, value in metrics["wall"].items():
            wall_samples.setdefault(key, []).append(value)
    return {
        "module": case.module,
        "suites": sorted(case.suites),
        "description": case.description,
        "sim": sim_metrics or {},
        "wall": {
            key: _median(values) for key, values in sorted(wall_samples.items())
        },
        "duration_seconds": {
            "median": _median(samples),
            "stdev": stdev(samples),
            "samples": samples,
        },
    }


def run_suite(
    suite: str = "smoke",
    seed: Optional[int] = None,
    warmup: int = 0,
    repeat: int = 1,
    benchmarks_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, Any]:
    """Discover, filter, run, and package one suite into a report dict."""
    if suite not in SUITES:
        raise BenchError(
            f"unknown suite {suite!r}; choose one of {', '.join(SUITES)}"
        )
    discover(benchmarks_dir)
    cases = registry.cases_for(suite)
    effective_seed = seed if seed is not None else registry.bench_seed()
    registry.set_bench_seed(effective_seed)
    benchmarks: Dict[str, Dict[str, Any]] = {}
    try:
        for index, case in enumerate(cases, start=1):
            if progress is not None:
                progress(
                    f"[{index}/{len(cases)}] {case.name} "
                    f"({case.module or 'inline'})"
                )
            benchmarks[case.name] = run_case(case, warmup, repeat)
    finally:
        registry.set_bench_seed(None)
    return build_report(
        benchmarks,
        suite=suite,
        seed=effective_seed,
        warmup=warmup,
        repeat=repeat,
    )
