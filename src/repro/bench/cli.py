"""CLI plumbing for ``repro bench``.

::

    repro bench --suite smoke --out BENCH_smoke.json
    repro bench --suite smoke --compare BENCH_smoke.json
    repro bench --suite full --out BENCH_2.json --compare BENCH_1.json
    repro bench --list
    repro bench --suite smoke --profile --profile-out bench.collapsed

``--compare`` runs the suite, diffs it against the baseline report, and
exits nonzero on any regression (see :mod:`repro.bench.compare` for the
tolerance bands); ``--ignore-wall`` confines the gate to deterministic
simulation-clock metrics for cross-machine comparisons.
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.errors import BenchError


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.bench.harness import SUITES

    parser.add_argument(
        "--suite",
        choices=SUITES,
        default="smoke",
        help="curated subset to run (default: smoke)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the BENCH_<n>.json report here"
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="diff this run against a baseline report; exit 1 on regression",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="pin the harness seed (default: REPRO_BENCH_SEED or 11)",
    )
    parser.add_argument(
        "--warmup", type=int, default=0,
        help="unmeasured repetitions per case (default: 0)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="measured repetitions per case (default: 1)",
    )
    parser.add_argument(
        "--benchmarks-dir", metavar="DIR", default=None,
        help="directory holding bench_*.py (default: ./benchmarks)",
    )
    parser.add_argument(
        "--sim-tol", type=float, default=1e-9,
        help="relative tolerance for sim-clock metrics (default: 1e-9)",
    )
    parser.add_argument(
        "--wall-tol", type=float, default=0.5,
        help="relative tolerance for wall-clock metrics (default: 0.5)",
    )
    parser.add_argument(
        "--ignore-wall", action="store_true",
        help="gate only sim-clock metrics (cross-machine compares)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_cases",
        help="list the suite's cases without running them",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the suite run (wall-clock hotspots + collapsed stacks)",
    )
    parser.add_argument(
        "--profile-out", metavar="FILE", default="bench.collapsed",
        help="collapsed-stack output for --profile "
        "(default: bench.collapsed)",
    )


def run_bench(args: argparse.Namespace) -> int:
    """Execute ``repro bench``; returns the process exit code."""
    from repro.bench.discover import discover
    from repro.bench.harness import run_suite
    from repro.bench.registry import cases_for
    from repro.bench.schema import load_report, save_report

    if args.list_cases:
        discover(args.benchmarks_dir)
        for case in cases_for(args.suite):
            suites = ",".join(case.suites) or "-"
            print(f"{case.name:32s} [{suites}] {case.module}")
        return 0

    profiler = None
    if args.profile:
        from repro.obs.profile import WallProfiler

        profiler = WallProfiler()
        profiler.start()
    try:
        report = run_suite(
            suite=args.suite,
            seed=args.seed,
            warmup=args.warmup,
            repeat=args.repeat,
            benchmarks_dir=args.benchmarks_dir,
            progress=lambda line: print(f"bench {line}"),
        )
    finally:
        if profiler is not None:
            profiler.stop()
    total = sum(
        entry["duration_seconds"]["median"]
        for entry in report["benchmarks"].values()
    )
    print(
        f"bench suite {args.suite!r}: {len(report['benchmarks'])} cases, "
        f"median wall total {total:.2f}s, seed {report['seed']}"
    )
    if profiler is not None:
        print()
        print(profiler.render_hotspots(limit=15))
        profiler.write_collapsed(args.profile_out)
        print(f"collapsed stacks written to {args.profile_out}")
    if args.out:
        save_report(report, args.out)
        print(f"report written to {args.out}")

    if args.compare:
        from repro.bench.compare import compare_reports

        baseline = load_report(args.compare)
        comparison = compare_reports(
            baseline,
            report,
            sim_rel_tol=args.sim_tol,
            wall_rel_tol=args.wall_tol,
            ignore_wall=args.ignore_wall,
        )
        print()
        print(comparison.render())
        if not comparison.ok:
            return 1
    return 0


def main(argv: Optional[list] = None) -> int:
    """Standalone entry point (``python -m repro.bench``)."""
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Continuous benchmarking harness for the Bohr "
        "reproduction (suites, BENCH_<n>.json reports, regression gates).",
    )
    add_bench_arguments(parser)
    try:
        return run_bench(parser.parse_args(argv))
    except BenchError as error:
        print(f"bench error: {error}")
        return 2
