"""Continuous benchmarking: harness, schema, and perf-regression gates.

The ``benchmarks/bench_*.py`` scripts reproduce the paper's figures and
tables; this package turns them into a *perf trajectory*.  Each script
registers one or more :class:`~repro.bench.registry.BenchCase` hooks
returning the simulation-clock metrics the paper reports (QCT seconds,
WAN bytes shuffled, solver time); the harness runs a suite of cases with
a pinned seed, times each case on the wall clock (warmup + repeats,
median/stdev), and emits a versioned ``BENCH_<n>.json`` that
``repro bench --compare`` diffs against with per-metric tolerance bands
(tight for deterministic sim-time, loose for wall time), exiting nonzero
on regressions.  See DESIGN.md "Benchmark report schema".
"""

from repro.bench.registry import (
    BenchCase,
    all_cases,
    bench_seed,
    cases_for,
    register_bench,
    register_reset_hook,
    set_bench_seed,
)
from repro.bench.schema import SCHEMA_VERSION, load_report, save_report
from repro.bench.compare import CompareReport, MetricDelta, compare_reports
from repro.bench.harness import SUITES, run_suite

__all__ = [
    "BenchCase",
    "CompareReport",
    "MetricDelta",
    "SCHEMA_VERSION",
    "SUITES",
    "all_cases",
    "bench_seed",
    "cases_for",
    "compare_reports",
    "load_report",
    "register_bench",
    "register_reset_hook",
    "run_suite",
    "save_report",
    "set_bench_seed",
]
