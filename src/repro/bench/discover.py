"""Benchmark-script discovery.

The suite lives in ``benchmarks/bench_*.py`` at the repository root; the
scripts double as pytest regression tests (shape assertions) and as
harness benchmark providers (their ``register_bench`` hooks run at
import).  Discovery imports every script once — re-importing would
re-register cases — and leaves the registry holding the union of all
hooks.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.registry import BenchCase, all_cases
from repro.errors import BenchError


def default_benchmarks_dir() -> Path:
    """Locate ``benchmarks/``: ``$REPRO_BENCH_DIR``, else ``./benchmarks``."""
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return Path(env)
    return Path.cwd() / "benchmarks"


def discover(benchmarks_dir: Optional[str] = None) -> List[BenchCase]:
    """Import every ``bench_*.py`` under the directory; return all cases."""
    directory = (
        Path(benchmarks_dir) if benchmarks_dir else default_benchmarks_dir()
    )
    if not directory.is_dir():
        raise BenchError(
            f"benchmarks directory not found: {directory} (run from the "
            "repository root, or set REPRO_BENCH_DIR / --benchmarks-dir)"
        )
    scripts = sorted(directory.glob("bench_*.py"))
    if not scripts:
        raise BenchError(f"no bench_*.py scripts under {directory}")
    # Scripts do `from common import ...`; make the directory importable.
    dir_str = str(directory.resolve())
    if dir_str not in sys.path:
        sys.path.insert(0, dir_str)
    for script in scripts:
        name = script.stem
        if name in sys.modules:
            continue  # already imported; its cases are registered
        spec = importlib.util.spec_from_file_location(name, script)
        if spec is None or spec.loader is None:
            raise BenchError(f"cannot load benchmark script {script}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as error:  # lint: allow[R006] — import boundary: any error in user script code becomes a typed BenchError (re-raised)
            del sys.modules[name]
            raise BenchError(
                f"importing {script.name} failed: {error}"
            ) from error
    cases = all_cases()
    if not cases:
        raise BenchError(
            f"no benchmark cases registered by {len(scripts)} scripts "
            f"under {directory} — are the register_bench hooks missing?"
        )
    return cases
