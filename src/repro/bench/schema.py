"""The versioned ``BENCH_<n>.json`` report format.

One report is one harness invocation: environment provenance (git SHA,
python, platform), the harness knobs (suite, seed, warmup, repeat), and
one entry per benchmark case::

    {
      "schema_version": 1,
      "git_sha": "...", "python": "3.12.1", "platform": "Linux-...",
      "suite": "full", "seed": 11, "warmup": 0, "repeat": 3,
      "created": "2026-08-06T12:00:00Z",
      "benchmarks": {
        "fig06-qct-random": {
          "module": "bench_fig06_qct_random",
          "suites": ["figures", "smoke"],
          "sim": {"qct.bohr.tpcds": 2.8531682},
          "wall": {"lp_seconds.tpcds": 0.0123},
          "duration_seconds": {"median": 4.1, "stdev": 0.2,
                               "samples": [4.1, 4.3, 3.9]}
        }
      }
    }

``sim`` metrics are simulation-clock quantities — identical across runs
at the same seed; ``wall`` metrics and ``duration_seconds`` are host
timings.  The schema is documented in DESIGN.md and enforced by
:func:`validate_report`; comparing reports across schema versions is a
hard error so a silent format drift can never masquerade as a perf
verdict.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from typing import Any, Dict, Optional

from repro.errors import BenchError

SCHEMA_VERSION = 1

_REQUIRED_TOP = ("schema_version", "suite", "seed", "benchmarks")
_REQUIRED_CASE = ("sim", "wall", "duration_seconds")


def git_sha(cwd: Optional[str] = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def environment_info() -> Dict[str, str]:
    """Provenance fields stamped into every report."""
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def build_report(
    benchmarks: Dict[str, Dict[str, Any]],
    suite: str,
    seed: int,
    warmup: int,
    repeat: int,
) -> Dict[str, Any]:
    """Assemble a schema-versioned report document."""
    report: Dict[str, Any] = {"schema_version": SCHEMA_VERSION}
    report.update(environment_info())
    # Wall-clock by design: report provenance timestamp, not simulation.
    report["created"] = time.strftime(  # lint: allow[R001]
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
    )
    report["suite"] = suite
    report["seed"] = seed
    report["warmup"] = warmup
    report["repeat"] = repeat
    report["benchmarks"] = benchmarks
    validate_report(report)
    return report


def validate_report(report: Dict[str, Any], source: str = "report") -> None:
    """Structural validation; raises :class:`BenchError` with the defect."""
    if not isinstance(report, dict):
        raise BenchError(f"{source}: not a JSON object")
    for key in _REQUIRED_TOP:
        if key not in report:
            raise BenchError(f"{source}: missing required field {key!r}")
    version = report["schema_version"]
    if not isinstance(version, int):
        raise BenchError(
            f"{source}: schema_version must be an integer, got {version!r}"
        )
    benchmarks = report["benchmarks"]
    if not isinstance(benchmarks, dict):
        raise BenchError(f"{source}: 'benchmarks' must be an object")
    for name, entry in benchmarks.items():
        if not isinstance(entry, dict):
            raise BenchError(f"{source}: benchmark {name!r} is not an object")
        for key in _REQUIRED_CASE:
            if key not in entry:
                raise BenchError(
                    f"{source}: benchmark {name!r} missing field {key!r}"
                )
        for kind in ("sim", "wall"):
            group = entry[kind]
            if not isinstance(group, dict):
                raise BenchError(
                    f"{source}: benchmark {name!r} group {kind!r} is not "
                    "an object"
                )
            for metric, value in group.items():
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    raise BenchError(
                        f"{source}: benchmark {name!r} metric "
                        f"{kind}.{metric} is not numeric: {value!r}"
                    )
        duration = entry["duration_seconds"]
        if not isinstance(duration, dict) or "median" not in duration:
            raise BenchError(
                f"{source}: benchmark {name!r} duration_seconds must be an "
                "object with at least a 'median'"
            )


def check_same_schema(
    baseline: Dict[str, Any], candidate: Dict[str, Any]
) -> None:
    """Refuse to compare reports across schema versions."""
    base_version = baseline.get("schema_version")
    cand_version = candidate.get("schema_version")
    if base_version != cand_version or cand_version != SCHEMA_VERSION:
        raise BenchError(
            f"schema version mismatch: baseline v{base_version}, candidate "
            f"v{cand_version}, this tool reads v{SCHEMA_VERSION} — "
            "regenerate the older report before comparing"
        )


def save_report(report: Dict[str, Any], path: str) -> None:
    """Write a validated report as stable, diff-friendly JSON."""
    validate_report(report, source=path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Load and validate a report written by :func:`save_report`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as error:
        raise BenchError(f"cannot read {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise BenchError(f"{path}: invalid JSON ({error})") from None
    validate_report(report, source=path)
    return report
