"""The perf-regression engine: diff two ``BENCH_<n>.json`` reports.

Every metric is lower-is-better by convention.  Tolerance bands are
per-clock:

* **sim** metrics come off the simulated clock and are deterministic for
  a pinned seed — the default band is 1e-9 relative (bit-identical up to
  float printing), so *any* real change in QCT / bytes shuffled trips
  the gate;
* **wall** metrics (and the harness's own ``duration_seconds`` median)
  are host timings — the default band is +50%, and regressions under an
  absolute floor (default 50 ms) are ignored as scheduler noise.
  ``ignore_wall=True`` drops the wall gate entirely for cross-machine
  comparisons (CI runners vs the machine that produced the baseline).

A case present in the baseline (and tagged with the compared suite) but
missing from the candidate is a gate failure too: silently dropping a
benchmark must not read as "no regressions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.bench.schema import check_same_schema
from repro.util.tabulate import format_table

#: (status, fails_gate) — ordering matters for report sorting.
_STATUS_ORDER = ("regressed", "missing", "new", "improved", "ok")


@dataclass
class MetricDelta:
    """One metric's baseline→candidate movement."""

    case: str
    clock: str  # "sim" | "wall"
    metric: str
    baseline: float
    candidate: float
    status: str  # "ok" | "improved" | "regressed" | "missing" | "new"

    @property
    def delta_pct(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else float("inf")
        return 100.0 * (self.candidate - self.baseline) / self.baseline


@dataclass
class CompareReport:
    """The full diff between a baseline and a candidate run."""

    baseline_sha: str
    candidate_sha: str
    suite: str
    deltas: List[MetricDelta] = field(default_factory=list)
    missing_cases: List[str] = field(default_factory=list)
    new_cases: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "regressed"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_cases

    def render(self) -> str:
        """Human-readable verdict table (regressions first)."""
        lines: List[str] = []
        interesting = [
            delta for delta in self.deltas if delta.status != "ok"
        ]
        interesting.sort(
            key=lambda d: (_STATUS_ORDER.index(d.status), d.case, d.metric)
        )
        header = (
            f"bench compare [{self.suite}]: baseline "
            f"{self.baseline_sha[:12]} -> candidate {self.candidate_sha[:12]}"
        )
        lines.append(header)
        if interesting:
            rows = [
                [
                    delta.status.upper(),
                    delta.case,
                    f"{delta.clock}.{delta.metric}",
                    f"{delta.baseline:.6g}",
                    f"{delta.candidate:.6g}",
                    f"{delta.delta_pct:+.2f}%",
                ]
                for delta in interesting
            ]
            lines.append(
                format_table(
                    rows,
                    headers=("status", "case", "metric", "baseline",
                             "candidate", "delta"),
                )
            )
        for case in self.missing_cases:
            lines.append(
                f"MISSING  {case}: present in baseline but absent from the "
                "candidate run"
            )
        for case in self.new_cases:
            lines.append(f"NEW      {case}: no baseline yet (not gated)")
        checked = len(self.deltas)
        lines.append(
            f"{checked} metrics checked: {len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved, "
            f"{len(self.missing_cases)} missing cases"
        )
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _classify(
    baseline: float, candidate: float, rel_tol: float, abs_floor: float
) -> str:
    if abs(candidate - baseline) <= abs_floor:
        return "ok"
    bound = abs(baseline) * rel_tol
    if candidate > baseline + bound:
        return "regressed"
    if candidate < baseline - bound:
        return "improved"
    return "ok"


def _case_metrics(entry: Dict[str, Any]) -> List[Tuple[str, str, float]]:
    """Flatten one case entry to (clock, metric, value) triples."""
    triples: List[Tuple[str, str, float]] = []
    for metric, value in sorted(entry.get("sim", {}).items()):
        triples.append(("sim", metric, float(value)))
    for metric, value in sorted(entry.get("wall", {}).items()):
        triples.append(("wall", metric, float(value)))
    duration = entry.get("duration_seconds", {})
    if "median" in duration:
        triples.append(
            ("wall", "duration_seconds.median", float(duration["median"]))
        )
    return triples


def compare_reports(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    sim_rel_tol: float = 1e-9,
    wall_rel_tol: float = 0.5,
    wall_abs_floor: float = 0.05,
    ignore_wall: bool = False,
) -> CompareReport:
    """Diff two loaded reports; see the module docstring for the bands.

    The comparison domain is every baseline case tagged with the
    candidate's suite (all baseline cases when the baseline itself was a
    narrower run), so a smoke candidate can gate against a committed
    full-suite baseline without flagging the unrun cases as missing.
    """
    check_same_schema(baseline, candidate)
    suite = str(candidate.get("suite", "full"))
    report = CompareReport(
        baseline_sha=str(baseline.get("git_sha", "unknown")),
        candidate_sha=str(candidate.get("git_sha", "unknown")),
        suite=suite,
    )
    base_cases: Dict[str, Any] = baseline["benchmarks"]
    cand_cases: Dict[str, Any] = candidate["benchmarks"]

    def in_domain(name: str) -> bool:
        if suite == "full":
            return True
        suites = base_cases[name].get("suites", [])
        return suite in suites or not suites

    for name in sorted(base_cases):
        if not in_domain(name):
            continue
        if name not in cand_cases:
            report.missing_cases.append(name)
            continue
        cand_entry = cand_cases[name]
        cand_lookup = {
            (clock, metric): value
            for clock, metric, value in _case_metrics(cand_entry)
        }
        for clock, metric, base_value in _case_metrics(base_cases[name]):
            if (clock, metric) not in cand_lookup:
                report.deltas.append(
                    MetricDelta(name, clock, metric, base_value,
                                float("nan"), "missing")
                )
                report.missing_cases.append(f"{name}:{clock}.{metric}")
                continue
            cand_value = cand_lookup.pop((clock, metric))
            if clock == "wall":
                if ignore_wall:
                    status = "ok"
                else:
                    status = _classify(
                        base_value, cand_value, wall_rel_tol, wall_abs_floor
                    )
            else:
                status = _classify(base_value, cand_value, sim_rel_tol, 0.0)
            report.deltas.append(
                MetricDelta(name, clock, metric, base_value, cand_value,
                            status)
            )
        for (clock, metric), value in sorted(cand_lookup.items()):
            report.deltas.append(
                MetricDelta(name, clock, metric, float("nan"), value, "new")
            )
    report.new_cases.extend(
        name for name in sorted(cand_cases) if name not in base_cases
    )
    return report
