"""``python -m repro.lint`` — run the lint pass exactly as CI does."""

import sys

from repro.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
