"""Two-run same-seed determinism smoke (``repro lint --determinism``).

Runs the same experiment twice with identical seeds, each under a fresh
tracer and telemetry bus, and compares a digest of the *simulated* trace
content, a digest of the reported numbers, and a digest of the telemetry
event stream (:func:`repro.obs.telemetry.telemetry_digest`).  Wall-clock fields (span wall times, the
measured offline-prep costs) legitimately differ between runs and are
excluded; everything else — span structure, sim-clock intervals, byte
counts, similarities, placement fractions — must be byte-identical, or
the simulator has nondeterministic state (the WANify failure mode: a
silently drifting simulator corrupts every seed-controlled comparison).

``charge_rdd_overhead`` is forced off for the check: the paper's RDD
overhead is a *measured wall time* charged to QCT, so with it on, QCT is
wall-coupled by design and two runs differ in the last decimals.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.obs.span import Span

#: Span attributes carrying measured wall time (excluded from digests).
_WALL_ATTRS = frozenset(
    {"wall_seconds", "rdd_overhead_seconds", "overhead_seconds"}
)

#: Significant digits kept when digesting floats; identical computations
#: produce bit-identical floats, so this only guards repr formatting.
_FLOAT_DIGITS = 12


def _canonical(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.{_FLOAT_DIGITS}e}"
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in sorted(
            value.items(), key=lambda pair: str(pair[0])
        )}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def trace_digest(spans: Sequence[Span]) -> str:
    """SHA-256 over the sim-relevant content of a span list, in order."""
    payload: List[object] = []
    for span in spans:
        attrs = {
            key: _canonical(value)
            for key, value in sorted(span.attrs.items())
            if key not in _WALL_ATTRS
        }
        payload.append(
            [
                span.name,
                span.stage,
                span.parent_id,
                _canonical(span.sim_start) if span.sim_start is not None else None,
                _canonical(span.sim_end) if span.sim_end is not None else None,
                attrs,
            ]
        )
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def result_digest(results: Iterable) -> str:
    """SHA-256 over the reported numbers of ``ExperimentResult`` objects."""
    payload: List[object] = []
    for result in results:
        payload.append(
            [
                result.system,
                result.workload,
                _canonical(result.mean_qct),
                _canonical(result.baseline_mean_qct),
                _canonical(result.prep.moved_bytes),
                _canonical(dict(result.prep.reduce_fractions)),
                _canonical(result.intermediate_by_site()),
                [_canonical(run.wan_bytes) for run in result.runs],
            ]
        )
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of the two-run comparison."""

    deterministic: bool
    trace_digests: Tuple[str, str]
    result_digests: Tuple[str, str]
    spans: int
    scheme: str
    workload: str
    seed: int
    #: SHA-256 of the telemetry event streams (wall attrs excluded).
    telemetry_digests: Tuple[str, str] = ("", "")
    telemetry_events: int = 0

    def render(self) -> str:
        verdict = "DETERMINISTIC" if self.deterministic else "NON-DETERMINISTIC"
        lines = [
            f"{verdict}: {self.scheme} on {self.workload} "
            f"(seed {self.seed}, {self.spans} spans/run, "
            f"{self.telemetry_events} telemetry events/run)",
            f"  trace digests:     {self.trace_digests[0][:16]}… vs "
            f"{self.trace_digests[1][:16]}…",
            f"  result digests:    {self.result_digests[0][:16]}… vs "
            f"{self.result_digests[1][:16]}…",
            f"  telemetry digests: {self.telemetry_digests[0][:16]}… vs "
            f"{self.telemetry_digests[1][:16]}…",
        ]
        return "\n".join(lines)


def run_determinism_check(
    scheme: str = "bohr",
    workload: str = "bigdata-aggregation",
    placement: str = "random",
    seed: int = 11,
    queries: int = 2,
    scale: float = 1.0,
    base_uplink: str = "2MB/s",
    chaos_profile: "str | None" = None,
    chaos_seed: int = 13,
) -> DeterminismReport:
    """Execute the experiment twice and compare sim-content digests.

    With ``chaos_profile`` both runs execute under the same injected
    fault schedule: faults, retries, and degraded replanning must be
    exactly as deterministic as the benign simulator.
    """
    from repro.core.runner import run_experiment
    from repro.obs import instrument
    from repro.obs.telemetry import TelemetryBus, telemetry_digest
    from repro.systems.base import SystemConfig
    from repro.wan.presets import ec2_ten_sites
    from repro.workloads import build_workload

    digests: List[Tuple[str, str, int, str, int]] = []
    for _ in range(2):
        topology = ec2_ten_sites(base_uplink=base_uplink)
        config = SystemConfig(
            lag_seconds=8.0,
            seed=seed,
            partition_records=8,
            charge_rdd_overhead=False,  # wall-measured; excluded by design
        )
        chaos = None
        if chaos_profile is not None:
            from repro.chaos.profiles import build_schedule
            from repro.chaos.runtime import ChaosConfig

            chaos = ChaosConfig(
                faults=build_schedule(chaos_profile, topology, seed=chaos_seed)
            )

        def factory():
            return build_workload(
                workload, topology, placement=placement, seed=seed, scale=scale
            )

        bus = TelemetryBus()
        with instrument.instrumented(telemetry=bus) as obs:
            result = run_experiment(
                scheme, factory, topology, config, query_limit=queries,
                chaos=chaos,
            )
        digests.append(
            (
                trace_digest(obs.tracer.spans),
                result_digest([result]),
                len(obs.tracer.spans),
                telemetry_digest(bus),
                len(bus.events),
            )
        )

    (trace_a, result_a, spans_a, tele_a, events_a) = digests[0]
    (trace_b, result_b, _spans_b, tele_b, _events_b) = digests[1]
    return DeterminismReport(
        deterministic=(
            trace_a == trace_b and result_a == result_b and tele_a == tele_b
        ),
        trace_digests=(trace_a, trace_b),
        result_digests=(result_a, result_b),
        spans=spans_a,
        scheme=scheme,
        workload=workload,
        seed=seed,
        telemetry_digests=(tele_a, tele_b),
        telemetry_events=events_a,
    )
