"""Whole-program project model: modules, symbols, import and call graphs.

The per-file rules (R001–R008) see one AST at a time; the interprocedural
passes (R009–R012, :mod:`repro.lint.passes`) need to know *who calls
whom* across the whole of ``src/repro``.  :class:`ProjectGraph` supplies
that: it parses every module under one or more roots, builds a symbol
table per module (functions, classes, methods, import aliases,
re-exports, star-imports), and resolves every call site to a set of
candidate project functions.

Resolution is deliberately conservative and honest about its limits:

* dotted names are resolved through import aliases, re-export chains
  (``repro.SystemConfig`` → ``repro.systems.base.SystemConfig``) and
  ``__init__`` star-imports, with a cycle guard;
* ``self.method()`` resolves through the enclosing class and its
  project-resolvable bases;
* attribute calls on unknown receivers fall back to class-hierarchy
  analysis by method name (every project class defining that method is a
  candidate — an over-approximation, never an omission);
* what cannot be classified is *counted* as unresolved and reported in
  :class:`ResolutionStats`, never silently dropped.  CI gates on the
  resolution rate (see ``tests/lint/test_graph.py``).

Parse failures do not abort the build: the broken module is recorded as
an ``R000`` finding (same convention as the per-file runner) and the
graph is built from the modules that do parse.
"""

from __future__ import annotations

import ast
import builtins
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding
from repro.lint.pragmas import parse_pragmas

#: Pseudo-function name for a module's import-time frame.
MODULE_FRAME = "<module>"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules",
                        ".pytest_cache", "build", "dist"})

#: Method names of builtin container/scalar types — attribute calls whose
#: receiver is unknown but whose name lives here are classified external.
_BUILTIN_METHOD_NAMES: FrozenSet[str] = frozenset(
    name
    for tp in (list, dict, set, frozenset, str, bytes, bytearray, tuple,
               int, float, complex)
    for name in dir(tp)
    if not name.startswith("_")
) | frozenset({
    # file-like / io
    "read", "write", "close", "readline", "readlines", "flush", "seek",
    # re module objects
    "match", "search", "findall", "finditer", "fullmatch", "sub",
    "group", "groups", "groupdict", "start", "end", "span",
})


def _numpy_method_names() -> FrozenSet[str]:
    """Method names of numpy arrays/generators, when numpy is present.

    Receivers of these calls are overwhelmingly ndarrays or seeded
    generators in this codebase; without this set every ``matrix.sum()``
    would count against the resolution rate as a false unknown.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep here
        return frozenset()
    names: Set[str] = set()
    for tp in (np.ndarray, np.random.Generator):
        names.update(name for name in dir(tp) if not name.startswith("_"))
    return frozenset(names)


_EXTERNAL_METHOD_NAMES = _BUILTIN_METHOD_NAMES | _numpy_method_names()

_BUILTIN_NAMES = frozenset(vars(builtins))


def dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted text of a Name/Attribute chain with import aliases resolved."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(aliases.get(current.id, current.id))
    return ".".join(reversed(parts))


def iter_frame(nodes: Sequence[ast.AST]) -> Iterator[ast.AST]:
    """Nodes executed in one frame (module body or function body).

    Descends into everything *except* nested function bodies — those are
    their own frames — while still yielding the parts of a nested ``def``
    that execute in this frame (decorators and argument defaults).
    Lambdas are opaque (deferred bodies).
    """
    stack: List[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(node.decorator_list)
            stack.extend(d for d in node.args.defaults)
            stack.extend(d for d in node.args.kw_defaults if d is not None)
            continue
        if isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class CallSite:
    """One call expression inside one function frame."""

    caller: str          #: qualname of the enclosing function frame
    lineno: int
    col: int
    text: str            #: callee as written (dotted, aliases resolved)
    kind: str            #: "project" | "external" | "builtin" | "unresolved"
    targets: Tuple[str, ...]  #: candidate project callee qualnames
    node: ast.Call = field(repr=False, compare=False, default=None)


@dataclass
class FunctionInfo:
    """One function/method/nested-def (or a module's import-time frame)."""

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    path: str
    lineno: int
    node: Optional[ast.AST] = field(repr=False, default=None)
    calls: List[CallSite] = field(default_factory=list)
    #: names bound locally in this frame (params + assignments), used to
    #: tell dynamic callables from module symbols.
    local_names: FrozenSet[str] = frozenset()
    params: Tuple[str, ...] = ()


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef = field(repr=False, default=None)
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)  #: name -> qualname


@dataclass
class ModuleInfo:
    name: str
    path: str
    source: str = field(repr=False, default="")
    tree: Optional[ast.Module] = field(repr=False, default=None)
    pragmas: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: local alias -> canonical dotted path, module- and function-level.
    import_aliases: Dict[str, str] = field(default_factory=dict)
    star_imports: List[str] = field(default_factory=list)
    functions: Dict[str, str] = field(default_factory=dict)   #: top-level name -> qualname
    classes: Dict[str, str] = field(default_factory=dict)     #: name -> qualname


@dataclass
class ResolutionStats:
    """Call-site classification counts; the graph's honesty report."""

    project: int = 0
    external: int = 0
    builtin: int = 0
    unresolved: int = 0

    @property
    def total(self) -> int:
        return self.project + self.external + self.builtin + self.unresolved

    @property
    def rate(self) -> float:
        """Fraction of call sites classified (not left unresolved)."""
        if self.total == 0:
            return 1.0
        return 1.0 - self.unresolved / self.total


class ProjectGraph:
    """The project model: modules, functions, classes, call edges."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.parse_failures: List[Finding] = []
        #: caller qualname -> callee qualnames (project edges only).
        self.edges: Dict[str, Set[str]] = {}
        self.stats = ResolutionStats()
        self._reverse: Optional[Dict[str, Set[str]]] = None
        self._export_memo: Dict[Tuple[str, str], Optional[Tuple[str, str]]] = {}
        self._methods_by_name: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[str]) -> "ProjectGraph":
        """Build the model from package directories and/or loose files."""
        graph = cls()
        for root in paths:
            graph._load_root(root)
        graph._collect_symbols()
        graph._resolve_calls()
        return graph

    def _load_root(self, root: str) -> None:
        if os.path.isfile(root):
            stem = os.path.splitext(os.path.basename(root))[0]
            self._load_file(root, stem)
            return
        if not os.path.isdir(root):
            raise LintError(f"no such file or directory: {root!r}")
        root = root.rstrip("/\\")
        package_root = os.path.isfile(os.path.join(root, "__init__.py"))
        base = os.path.basename(root) if package_root else None
        for dirpath, dirs, names in os.walk(root):
            dirs[:] = sorted(
                d for d in dirs
                if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            rel = os.path.relpath(dirpath, root)
            rel_parts = [] if rel == "." else rel.replace("\\", "/").split("/")
            if rel_parts and not os.path.isfile(
                os.path.join(dirpath, "__init__.py")
            ) and base is not None:
                # a non-package dir inside a package: skip its contents
                continue
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                stem = os.path.splitext(name)[0]
                if base is not None:
                    parts = [base] + rel_parts
                    if stem != "__init__":
                        parts.append(stem)
                    module_name = ".".join(parts)
                else:
                    module_name = ".".join(rel_parts + [stem]) if stem != "__init__" \
                        else ".".join(rel_parts) or stem
                self._load_file(os.path.join(dirpath, name), module_name)

    def _load_file(self, path: str, module_name: str) -> None:
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            offset = getattr(exc, "offset", None) or 1
            message = getattr(exc, "msg", None) or str(exc)
            self.parse_failures.append(
                Finding(path=path, line=lineno, col=offset - 1,
                        rule_id="R000",
                        message=f"parse failure: {message}")
            )
            return
        self.modules[module_name] = ModuleInfo(
            name=module_name, path=path, source=source, tree=tree,
            pragmas=parse_pragmas(source),
        )

    # ------------------------------------------------------------------
    # symbols
    # ------------------------------------------------------------------

    def _collect_symbols(self) -> None:
        for module in self.modules.values():
            self._collect_imports(module)
            for stmt in module.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{module.name}.{stmt.name}"
                    module.functions[stmt.name] = qualname
                elif isinstance(stmt, ast.ClassDef):
                    qualname = f"{module.name}.{stmt.name}"
                    module.classes[stmt.name] = qualname
                    self.classes[qualname] = ClassInfo(
                        qualname=qualname, module=module.name,
                        name=stmt.name, node=stmt,
                        bases=tuple(
                            name for name in (
                                dotted_name(b, module.import_aliases)
                                for b in stmt.bases
                            ) if name
                        ),
                    )
            self._collect_functions(module)
        for info in self.classes.values():
            for method, qualname in info.methods.items():
                self._methods_by_name.setdefault(method, ())
                self._methods_by_name[method] += (qualname,)

    def _collect_imports(self, module: ModuleInfo) -> None:
        """All import statements, module- and function-level alike.

        Lazy in-function imports are common in this codebase (CLI entry
        points defer heavy imports); folding them into one alias table
        keeps their call sites resolvable.
        """
        package = module.name.rsplit(".", 1)[0] if "." in module.name else ""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        module.import_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        module.import_aliases.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                target = self._import_base(module, node, package)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        module.star_imports.append(target)
                        continue
                    full = f"{target}.{alias.name}" if target else alias.name
                    module.import_aliases[alias.asname or alias.name] = full

    @staticmethod
    def _import_base(module: ModuleInfo, node: ast.ImportFrom,
                     package: str) -> Optional[str]:
        if node.level == 0:
            return node.module or None
        # relative import: climb level-1 packages above this module's package
        parts = package.split(".") if package else []
        climb = node.level - 1
        if climb > len(parts):
            return None
        base_parts = parts[: len(parts) - climb]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) or None

    def _collect_functions(self, module: ModuleInfo) -> None:
        # the module's import-time frame
        frame = FunctionInfo(
            qualname=f"{module.name}.{MODULE_FRAME}", module=module.name,
            name=MODULE_FRAME, class_name=None, path=module.path, lineno=1,
            node=module.tree,
        )
        self.functions[frame.qualname] = frame

        def visit_def(node, owner_qual: str, class_name: Optional[str]) -> None:
            qualname = f"{owner_qual}.{node.name}"
            info = FunctionInfo(
                qualname=qualname, module=module.name, name=node.name,
                class_name=class_name, path=module.path,
                lineno=node.lineno, node=node,
                local_names=self._frame_locals(node),
                params=self._param_names(node),
            )
            self.functions[qualname] = info
            if class_name is not None:
                self.classes[owner_qual].methods[node.name] = qualname
            for stmt in ast.walk(node):
                if stmt is node:
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if self._enclosing_def(node, stmt) is node:
                        visit_def(stmt, qualname, None)
                        # defining frame -> nested closure: conservative
                        # "may call" edge (factories usually invoke or
                        # hand out their closures).
                        self.edges.setdefault(qualname, set()).add(
                            f"{qualname}.{stmt.name}"
                        )

        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_def(stmt, module.name, None)
            elif isinstance(stmt, ast.ClassDef):
                class_qual = f"{module.name}.{stmt.name}"
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        visit_def(item, class_qual, stmt.name)

    @staticmethod
    def _enclosing_def(root: ast.AST, target: ast.AST) -> Optional[ast.AST]:
        """The nearest def/lambda strictly containing ``target`` under ``root``."""
        result: List[ast.AST] = [root]

        def descend(node: ast.AST, owner: ast.AST) -> bool:
            for child in ast.iter_child_nodes(node):
                if child is target:
                    result[0] = owner
                    return True
                next_owner = child if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ) else owner
                if descend(child, next_owner):
                    return True
            return False

        descend(root, root)
        return result[0]

    @staticmethod
    def _param_names(node) -> Tuple[str, ...]:
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return tuple(names)

    def _frame_locals(self, node) -> FrozenSet[str]:
        names: Set[str] = set(self._param_names(node))
        for child in iter_frame(node.body):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                continue  # alias-table material, not dynamic locals
            targets: List[ast.AST] = []
            if isinstance(child, ast.Assign):
                targets = list(child.targets)
            elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                targets = [child.target]
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                targets = [child.target]
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                targets = [i.optional_vars for i in child.items
                           if i.optional_vars is not None]
            elif isinstance(child, ast.comprehension):
                targets = [child.target]
            for target in targets:
                for leaf in ast.walk(target):
                    # Store context only: ``x[k] = v`` / ``x.attr = v``
                    # mutate an existing object, they do not bind ``x``.
                    if isinstance(leaf, ast.Name) and isinstance(
                        leaf.ctx, ast.Store
                    ):
                        names.add(leaf.id)
        for child in iter_frame(node.body):
            if isinstance(child, (ast.Global, ast.Nonlocal)):
                names.difference_update(child.names)
        return frozenset(names)

    # ------------------------------------------------------------------
    # symbol resolution (re-exports, star imports)
    # ------------------------------------------------------------------

    def resolve_symbol(
        self, module_name: str, symbol: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Tuple[str, str]]:
        """Resolve ``symbol`` as seen from ``module_name``.

        Returns ``(kind, qualname)`` with kind one of ``"function"``,
        ``"class"``, ``"module"`` or ``"external"``; ``None`` when the
        symbol cannot be found.  Follows re-export chains and
        ``__init__`` star-imports with a cycle guard.
        """
        key = (module_name, symbol)
        if key in self._export_memo:
            return self._export_memo[key]
        if _seen is None:
            _seen = set()
        if key in _seen:
            return None
        _seen.add(key)
        module = self.modules.get(module_name)
        result: Optional[Tuple[str, str]] = None
        if module is not None:
            if symbol in module.functions:
                result = ("function", module.functions[symbol])
            elif symbol in module.classes:
                result = ("class", module.classes[symbol])
            elif f"{module_name}.{symbol}" in self.modules:
                result = ("module", f"{module_name}.{symbol}")
            elif symbol in module.import_aliases:
                result = self._resolve_dotted(
                    module.import_aliases[symbol], _seen
                )
            else:
                for star in module.star_imports:
                    result = self.resolve_symbol(star, symbol, _seen)
                    if result is not None:
                        break
        elif module_name.split(".")[0] not in self._project_roots():
            result = ("external", f"{module_name}.{symbol}")
        self._export_memo[key] = result
        return result

    def _project_roots(self) -> Set[str]:
        return {name.split(".")[0] for name in self.modules}

    def _resolve_dotted(
        self, dotted: str, _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Tuple[str, str]]:
        """Resolve a canonical dotted path to a project symbol or external."""
        if dotted in self.modules:
            return ("module", dotted)
        root = dotted.split(".")[0]
        if root not in self._project_roots():
            return ("external", dotted)
        # longest module prefix, then navigate symbols
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                remainder = parts[cut:]
                resolved = self.resolve_symbol(prefix, remainder[0], _seen)
                for attr in remainder[1:]:
                    if resolved is None:
                        return None
                    kind, qual = resolved
                    if kind == "module":
                        resolved = self.resolve_symbol(qual, attr, _seen)
                    elif kind == "class":
                        info = self.classes.get(qual)
                        method = self._class_method(info, attr)
                        resolved = ("function", method) if method else None
                    elif kind == "external":
                        resolved = ("external", f"{qual}.{attr}")
                    else:
                        return None
                return resolved
        return None

    def _class_method(self, info: Optional[ClassInfo],
                      name: str, _depth: int = 0) -> Optional[str]:
        """Look up a method on a class or its project-resolvable bases."""
        if info is None or _depth > 8:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in info.bases:
            resolved = self._resolve_dotted(base)
            if resolved and resolved[0] == "class":
                found = self._class_method(
                    self.classes.get(resolved[1]), name, _depth + 1
                )
                if found:
                    return found
        return None

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------

    def _resolve_calls(self) -> None:
        for module in self.modules.values():
            for info in list(self.functions.values()):
                if info.module != module.name:
                    continue
                body = (module.tree.body if info.name == MODULE_FRAME
                        else info.node.body)
                if info.name == MODULE_FRAME:
                    nodes = iter_frame(body)
                else:
                    nodes = iter_frame(body)
                for node in nodes:
                    if isinstance(node, ast.Call):
                        self._classify_call(module, info, node)
        self._reverse = None

    def _classify_call(self, module: ModuleInfo, info: FunctionInfo,
                       call: ast.Call) -> None:
        kind, targets, text = self._resolve_callee(module, info, call.func)
        site = CallSite(
            caller=info.qualname, lineno=call.lineno, col=call.col_offset,
            text=text, kind=kind, targets=tuple(targets), node=call,
        )
        info.calls.append(site)
        setattr(self.stats, kind, getattr(self.stats, kind) + 1)
        if targets:
            self.edges.setdefault(info.qualname, set()).update(targets)

    def _resolve_callee(
        self, module: ModuleInfo, info: FunctionInfo, func: ast.AST,
    ) -> Tuple[str, List[str], str]:
        if isinstance(func, ast.Name):
            return self._resolve_name_call(module, info, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attr_call(module, info, func)
        if isinstance(func, ast.Lambda):
            return "unresolved", [], "<lambda>"
        return "unresolved", [], ast.dump(func)[:40]

    def _resolve_name_call(
        self, module: ModuleInfo, info: FunctionInfo, name: str,
    ) -> Tuple[str, List[str], str]:
        # nested defs of this frame shadow module symbols
        nested = f"{info.qualname}.{name}"
        if nested in self.functions:
            return "project", [nested], name
        if name == "cls" and info.class_name is not None:
            # ``cls(...)`` in a classmethod constructs this class
            class_qual = f"{module.name}.{info.class_name}"
            init = self._class_method(self.classes.get(class_qual), "__init__")
            return "project", [init] if init else [class_qual], name
        if name in info.local_names and name not in module.import_aliases:
            return "unresolved", [], name  # dynamic callable (param/local)
        resolved = self.resolve_symbol(module.name, name)
        if resolved is not None:
            return self._targets_from(resolved, name)
        if name in _BUILTIN_NAMES:
            return "builtin", [], name
        return "unresolved", [], name

    def _resolve_attr_call(
        self, module: ModuleInfo, info: FunctionInfo, func: ast.Attribute,
    ) -> Tuple[str, List[str], str]:
        text = dotted_name(func, module.import_aliases) or func.attr
        chain: List[str] = []
        current: ast.AST = func
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        chain.reverse()
        if isinstance(current, ast.Name):
            root = current.id
            if root in ("self", "cls") and info.class_name is not None:
                class_qual = f"{module.name}.{info.class_name}"
                if len(chain) == 1:
                    method = self._class_method(
                        self.classes.get(class_qual), chain[0]
                    )
                    if method:
                        return "project", [method], text
                return self._cha_fallback(chain[-1], text)
            if root not in info.local_names or root in module.import_aliases:
                dotted = dotted_name(func, module.import_aliases)
                if dotted is not None:
                    resolved = self._resolve_dotted(dotted)
                    if resolved is not None:
                        return self._targets_from(resolved, dotted)
                    # roots that are project symbols (e.g. Class.method)
                    sym = self.resolve_symbol(module.name, root)
                    if sym and sym[0] == "class":
                        method = self._class_method(
                            self.classes.get(sym[1]), chain[-1]
                        )
                        if method:
                            return "project", [method], text
        return self._cha_fallback(chain[-1], text)

    def _cha_fallback(self, method_name: str,
                      text: str) -> Tuple[str, List[str], str]:
        """Class-hierarchy analysis: candidates = every project method
        with this name.

        Builtin-container method names win over CHA: ``record.update(x)``
        on a local dict must not resolve to every project ``update``
        method (a precision > recall trade — a project method that
        shadows a dict/list/str method name loses its CHA edges, but
        receivers the analysis cannot type stop producing phantom
        interprocedural findings).
        """
        if method_name in _EXTERNAL_METHOD_NAMES:
            return "builtin", [], text
        candidates = self._methods_by_name.get(method_name)
        if candidates:
            return "project", sorted(set(candidates)), text
        return "unresolved", [], text

    def _targets_from(self, resolved: Tuple[str, str],
                      text: str) -> Tuple[str, List[str], str]:
        kind, qual = resolved
        if kind == "function":
            return "project", [qual], text
        if kind == "class":
            init = self._class_method(self.classes.get(qual), "__init__")
            return "project", [init] if init else [qual], text
        if kind == "module":
            # calling a module is nonsense; treat as unresolved
            return "unresolved", [], text
        return "external", [], text

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def reverse_edges(self) -> Dict[str, Set[str]]:
        """callee qualname -> caller qualnames (built lazily)."""
        if self._reverse is None:
            reverse: Dict[str, Set[str]] = {}
            for caller, callees in self.edges.items():
                for callee in callees:
                    reverse.setdefault(callee, set()).add(caller)
            self._reverse = reverse
        return self._reverse

    def functions_in(self, prefixes: Iterable[str]) -> Iterator[FunctionInfo]:
        """All function frames defined in modules matching the prefixes."""
        prefixes = tuple(prefixes)
        for info in self.functions.values():
            if module_matches(info.module, prefixes):
                yield info

    def describe(self) -> str:
        """Human summary for ``repro lint --graph``."""
        stats = self.stats
        lines = [
            f"project graph: {len(self.modules)} modules, "
            f"{len(self.functions)} functions, "
            f"{len(self.classes)} classes, "
            f"{sum(len(v) for v in self.edges.values())} call edges",
            f"call sites: {stats.total} total — "
            f"{stats.project} project, {stats.external} external, "
            f"{stats.builtin} builtin, {stats.unresolved} unresolved "
            f"(resolution rate {stats.rate:.1%})",
        ]
        if self.parse_failures:
            lines.append(
                f"parse failures: {len(self.parse_failures)} module(s) "
                "skipped (reported as R000)"
            )
        unresolved: Dict[str, int] = {}
        for info in self.functions.values():
            for site in info.calls:
                if site.kind == "unresolved":
                    unresolved[site.text] = unresolved.get(site.text, 0) + 1
        if unresolved:
            worst = sorted(unresolved.items(),
                           key=lambda item: (-item[1], item[0]))[:8]
            lines.append(
                "top unresolved callees: "
                + ", ".join(f"{name}×{count}" for name, count in worst)
            )
        return "\n".join(lines)


def module_matches(module: str, prefixes: Iterable[str]) -> bool:
    """True when ``module`` is one of the prefixes or nested beneath one."""
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False
