"""The determinism/correctness rule pack (R001–R007).

Each rule encodes one clause of the repo's simulation contract (see
DESIGN.md "Determinism & invariants contract"):

* **R001** — no wall-clock reads in simulation code.  The simulator runs
  on its own clock; ``time.time``/``perf_counter``/``monotonic`` and
  ``datetime.now`` silently couple results to the host machine.  The
  intentional offline-prep timing sites (Tables 3–5 of the paper) carry
  ``# lint: allow[R001]`` pragmas.
* **R002** — no raw ``random`` module (or legacy global-state
  ``numpy.random.*``) use; all randomness flows through
  :mod:`repro.util.rng` so streams are seed-derived and independent.
* **R003** — no iteration over unordered set expressions feeding
  order-sensitive constructs (float accumulation, list building,
  hashing) without ``sorted(...)``; set iteration order varies with the
  process hash seed.
* **R004** — no float ``==``/``!=`` on sim-time/bytes quantities;
  accumulated floats differ in the last ulp across orderings.
* **R005** — no mutable default arguments (shared across calls).
* **R006** — no bare or blanket ``except`` (swallows the typed
  :class:`~repro.errors.ReproError` hierarchy and real bugs alike).
* **R007** — no hard-coded seeds in benchmark scripts (files under a
  ``benchmarks`` directory).  The harness owns the seed
  (:func:`repro.bench.bench_seed`); a literal ``SEED = 3`` or
  ``seed=7`` pins part of the suite to a private randomness universe
  that ``repro bench --seed`` cannot shift.
* **R008** — no direct ``print()`` in library code under ``src/repro/``.
  Library modules return or render strings and let the CLI layer decide
  where they go; a stray ``print`` corrupts machine-readable output
  (``--json``, JSONL exports) and cannot be silenced.  CLI entry points
  (``cli.py``, ``__main__.py``) and the terminal view (``top.py``) are
  whitelisted by basename; one-off sites carry ``# lint: allow[R008]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.registry import LintRule, register
from repro.lint.visitor import LintContext

_CheckResult = Iterator[Tuple[ast.AST, str]]


# ----------------------------------------------------------------------
# R001 — wall-clock reads
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(LintRule):
    rule_id = "R001"
    title = "wall-clock read in simulation code"
    node_types = (ast.Attribute, ast.Name)

    def check(self, node: ast.AST, context: LintContext) -> _CheckResult:
        # Only the outermost attribute of a chain carries the full name;
        # inner attributes resolve to prefixes and never match.
        parent = context.parent(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            return
        if isinstance(node, ast.Name) and node.id in context.import_aliases:
            name = context.import_aliases[node.id]
        elif isinstance(node, ast.Attribute):
            name = context.qualified_name(node) or ""
        else:
            return
        if name in _WALL_CLOCK_CALLS:
            yield node, (
                f"wall-clock read {name}() — simulation code must use the "
                "sim clock; pragma intentional offline-prep timing sites"
            )


# ----------------------------------------------------------------------
# R002 — raw randomness
# ----------------------------------------------------------------------

_NUMPY_GLOBAL_RNG = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "get_state",
        "set_state",
    }
)


@register
class RawRandomRule(LintRule):
    rule_id = "R002"
    title = "raw random module use"
    node_types = (ast.Import, ast.ImportFrom, ast.Attribute, ast.Name)

    def check(self, node: ast.AST, context: LintContext) -> _CheckResult:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield node, self._message(alias.name)
            return
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "random":
                yield node, self._message("random")
            return
        parent = context.parent(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            return
        if isinstance(node, ast.Name):
            name = context.import_aliases.get(node.id, "")
        else:
            name = context.qualified_name(node) or ""
        if name.startswith("random."):
            yield node, self._message(name)
        elif name.startswith("numpy.random."):
            terminal = name.rsplit(".", 1)[1]
            if terminal in _NUMPY_GLOBAL_RNG:
                yield node, (
                    f"global-state {name} — derive a seeded generator via "
                    "repro.util.rng.derive_rng instead"
                )

    @staticmethod
    def _message(name: str) -> str:
        return (
            f"stdlib {name} is seeded process-globally — route randomness "
            "through repro.util.rng (derive_rng/spawn_seeds)"
        )


# ----------------------------------------------------------------------
# R003 — unordered iteration feeding order-sensitive constructs
# ----------------------------------------------------------------------

#: Builtins whose result is insensitive to argument iteration order
#: (``sum`` is NOT here: float addition is not associative).
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "set", "frozenset", "min", "max", "any", "all", "len"}
)

#: Callables that materialize or depend on their argument's order.
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate", "sum"})

_R003_HINT = "iteration order follows the hash seed; wrap in sorted(...)"


@register
class UnorderedIterationRule(LintRule):
    rule_id = "R003"
    title = "unordered set iteration feeding an order-sensitive construct"
    node_types = (ast.For, ast.ListComp, ast.GeneratorExp, ast.Call)

    def check(self, node: ast.AST, context: LintContext) -> _CheckResult:
        if isinstance(node, ast.For):
            if context.is_set_expr(node.iter) and self._accumulates(node):
                yield node.iter, (
                    "loop over an unordered set accumulates/appends — "
                    + _R003_HINT
                )
            return
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            parent = context.parent(node)
            if isinstance(parent, ast.Call) and node in parent.args:
                name = context.qualified_name(parent.func)
                if name in _ORDER_INSENSITIVE_CONSUMERS:
                    return
            for generator in node.generators:
                if context.is_set_expr(generator.iter):
                    yield generator.iter, (
                        "comprehension materializes an unordered set in "
                        "arbitrary order — " + _R003_HINT
                    )
            return
        # Call: order-sensitive builtins fed a set expression directly.
        assert isinstance(node, ast.Call)
        name = context.qualified_name(node.func)
        is_join = (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        )
        if name not in _ORDER_SENSITIVE_CONSUMERS and not is_join:
            return
        for arg in node.args[:1]:
            if context.is_set_expr(arg):
                consumer = name or "str.join"
                yield arg, (
                    f"{consumer}() over an unordered set fixes an arbitrary "
                    "order — " + _R003_HINT
                )

    @staticmethod
    def _accumulates(loop: ast.For) -> bool:
        """True when the loop body accumulates floats or builds sequences."""
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend", "insert")
            ):
                return True
        return False


# ----------------------------------------------------------------------
# R004 — float equality on sim-time/bytes quantities
# ----------------------------------------------------------------------

#: Underscore-separated identifier tokens that mark a sim-time/bytes
#: quantity ("map_output_bytes", "start_time", ...).  Token-wise matching
#: keeps "strategy" (contains "rate") and friends out.
_QUANTITY_TOKENS = frozenset(
    {"seconds", "time", "bytes", "qct", "bps", "rate", "makespan",
     "duration", "epoch", "deadline", "lag"}
)


def _is_quantity_name(name: str) -> bool:
    return any(token in _QUANTITY_TOKENS for token in name.lower().split("_"))


@register
class FloatEqualityRule(LintRule):
    rule_id = "R004"
    title = "float equality on a sim-time/bytes quantity"
    node_types = (ast.Compare,)

    def check(self, node: ast.AST, context: LintContext) -> _CheckResult:
        assert isinstance(node, ast.Compare)
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left] + list(node.comparators)
        for operand in operands:
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, float
            ):
                yield node, (
                    "exact float comparison — accumulated floats differ in "
                    "the last ulp; compare with a tolerance or restructure"
                )
                return
        for operand in operands:
            name = self._terminal_name(operand)
            if name and _is_quantity_name(name):
                yield node, (
                    f"float ==/!= on quantity {name!r} — compare with a "
                    "tolerance (or <=/>= against the bound)"
                )
                return

    @staticmethod
    def _terminal_name(node: ast.AST) -> str:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return ""


# ----------------------------------------------------------------------
# R005 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "collections.defaultdict",
     "collections.OrderedDict", "collections.deque"}
)


@register
class MutableDefaultRule(LintRule):
    rule_id = "R005"
    title = "mutable default argument"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, node: ast.AST, context: LintContext) -> _CheckResult:
        args = node.args
        defaults = list(args.defaults) + [
            default for default in args.kw_defaults if default is not None
        ]
        for default in defaults:
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ):
                yield default, (
                    "mutable default is shared across calls — default to "
                    "None and create inside the function"
                )
            elif isinstance(default, ast.Call):
                name = context.qualified_name(default.func)
                if name in _MUTABLE_FACTORIES:
                    yield default, (
                        f"default {name}() is evaluated once and shared "
                        "across calls — default to None instead"
                    )


# ----------------------------------------------------------------------
# R006 — bare or blanket except
# ----------------------------------------------------------------------


@register
class BlanketExceptRule(LintRule):
    rule_id = "R006"
    title = "bare or blanket except"
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.AST, context: LintContext) -> _CheckResult:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield node, (
                "bare except catches SystemExit/KeyboardInterrupt too — "
                "catch a ReproError subclass (or at least Exception + re-raise)"
            )
            return
        for exc in self._exception_names(node.type, context):
            if exc in ("Exception", "BaseException"):
                yield node, (
                    f"blanket except {exc} swallows unrelated bugs — catch "
                    "the narrowest ReproError subclass that applies"
                )
                return

    @staticmethod
    def _exception_names(node: ast.AST, context: LintContext):
        nodes = node.elts if isinstance(node, ast.Tuple) else [node]
        for item in nodes:
            name = context.qualified_name(item)
            if name:
                yield name


# ----------------------------------------------------------------------
# R007 — hard-coded seeds in benchmark scripts
# ----------------------------------------------------------------------

_R007_HINT = (
    "benchmarks take their seed from the harness — use "
    "repro.bench.bench_seed() (or derive a sub-stream from it)"
)


def _is_int_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    )


@register
class HardCodedBenchSeedRule(LintRule):
    rule_id = "R007"
    title = "hard-coded seed in a benchmark script"
    node_types = (ast.Assign, ast.Call, ast.FunctionDef, ast.AsyncFunctionDef)

    @staticmethod
    def _in_benchmarks(context: LintContext) -> bool:
        normalized = context.path.replace("\\", "/")
        return "benchmarks" in normalized.split("/")[:-1]

    def check(self, node: ast.AST, context: LintContext) -> _CheckResult:
        if not self._in_benchmarks(context):
            return
        if isinstance(node, ast.Assign):
            if not _is_int_literal(node.value):
                return
            for target in node.targets:
                if isinstance(target, ast.Name) and "seed" in target.id.lower():
                    yield node, (
                        f"literal seed constant {target.id} — " + _R007_HINT
                    )
            return
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "seed" and _is_int_literal(keyword.value):
                    yield keyword.value, ("literal seed= argument — " + _R007_HINT)
            return
        # Function definitions: a `seed` parameter with an int default.
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            if arg.arg == "seed" and _is_int_literal(default):
                yield default, ("literal default for seed= — " + _R007_HINT)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and arg.arg == "seed" and _is_int_literal(
                default
            ):
                yield default, ("literal default for seed= — " + _R007_HINT)


# ----------------------------------------------------------------------
# R008 — direct print() in library code
# ----------------------------------------------------------------------

#: Modules whose job *is* terminal output, matched by basename.
_PRINT_WHITELIST = frozenset({"cli.py", "__main__.py", "top.py"})


@register
class LibraryPrintRule(LintRule):
    rule_id = "R008"
    title = "direct print() in library code"
    node_types = (ast.Call,)

    @staticmethod
    def _in_library(context: LintContext) -> bool:
        normalized = context.path.replace("\\", "/")
        segments = normalized.split("/")
        if segments[-1] in _PRINT_WHITELIST:
            return False
        for index, segment in enumerate(segments[:-1]):
            if segment == "src" and segments[index + 1 : index + 2] == ["repro"]:
                return True
        return False

    def check(self, node: ast.AST, context: LintContext) -> _CheckResult:
        assert isinstance(node, ast.Call)
        if not self._in_library(context):
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield node, (
                "direct print() in library code — return/render the string "
                "and let the CLI layer emit it (or write to an injected "
                "stream); pragma genuinely interactive sites"
            )
