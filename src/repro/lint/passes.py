"""Interprocedural passes R009–R012 over the project graph.

Where the per-file rules (R001–R008) are syntactic — they flag the line
that *contains* the hazard — these passes are semantic: they flag the
line that *reaches* the hazard through call chains the per-file walker
cannot see.

* **R009** — wall-clock / global-RNG taint.  A helper that reads
  ``time.perf_counter()`` (unpragma'd) or draws from an unseeded
  generator taints every caller; simulation code calling a tainted
  helper outside the sim packages gets a finding with the full chain.
  Sources sanctioned with ``# lint: allow[R001]``/``[R002]`` pragmas
  (the audited offline-prep timing sites) do not taint.
* **R010** — shared-mutable-state inventory.  Module-level mutable
  containers, class-level mutable attributes, ``lru_cache`` memo tables
  and ``global``-rebound slots are collected into a machine-readable
  inventory (``shared_state.json``); the ones actually *mutated* from
  function bodies become findings.  The future multi-tenant serving
  layer treats this inventory as its isolation TODO list.
* **R011** — observer purity.  No code reachable from ``repro.obs``
  may write attributes of engine/wan/core objects; the CI bit-identity
  guard checks this dynamically for one workload, this pass proves it
  for every call chain.
* **R012** — interprocedural unordered iteration.  A helper returning a
  ``set`` (directly, transitively, or per its return annotation) makes
  order-sensitive iteration at its call sites hash-seed dependent —
  the R003 hazard, laundered through a function boundary.

Passes honour the same ``allow[R009]``-style line pragmas as the
per-file rules, evaluated at the finding line (full line range for
multi-line expressions).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding
from repro.lint.flow import (
    propagate_property,
    reach_chain,
    reachable_from,
    taint_callers,
    taint_chain,
)
from repro.lint.graph import (
    MODULE_FRAME,
    FunctionInfo,
    ModuleInfo,
    ProjectGraph,
    dotted_name,
    iter_frame,
    module_matches,
)
from repro.lint.baseline import normalize_path
from repro.lint.pragmas import is_suppressed
from repro.lint.registry import STATIC_RULE_IDS
from repro.lint.rules import _NUMPY_GLOBAL_RNG, _WALL_CLOCK_CALLS


@dataclass(frozen=True)
class ProjectRoles:
    """Which packages play which part in the determinism contract.

    ``sim`` packages own sim-clock state and placement decisions (R009
    sinks); ``observer`` packages must be pure readers (R011 roots);
    ``protected`` packages own the objects observers must not write
    (R011 targets).  Tests rebind these to fixture module names.
    """

    sim: Tuple[str, ...]
    observer: Tuple[str, ...]
    protected: Tuple[str, ...]


DEFAULT_ROLES = ProjectRoles(
    sim=(
        "repro.engine", "repro.wan", "repro.core", "repro.placement",
        "repro.similarity", "repro.chaos", "repro.systems",
        "repro.workloads", "repro.query", "repro.olap",
    ),
    observer=("repro.obs",),
    protected=("repro.engine", "repro.wan", "repro.core"),
)


def _suppressed(module: ModuleInfo, node: ast.AST, rule_id: str) -> bool:
    line = getattr(node, "lineno", 1)
    end = line
    if isinstance(node, ast.expr):
        end = getattr(node, "end_lineno", None) or line
    return any(
        is_suppressed(module.pragmas, lineno, rule_id)
        for lineno in range(line, end + 1)
    )


def _frame_body(graph: ProjectGraph, info: FunctionInfo) -> Sequence[ast.AST]:
    if info.name == MODULE_FRAME:
        return graph.modules[info.module].tree.body
    return info.node.body


# ----------------------------------------------------------------------
# R009 — wall-clock / global-RNG taint through call chains
# ----------------------------------------------------------------------

#: Entropy sources the syntactic rules never see (R002 only knows the
#: legacy global-state numpy API; an *unseeded* Generator is just as
#: nondeterministic).
_SEMANTIC_ENTROPY = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})


def _call_source_desc(name: str, call: ast.Call) -> Optional[Tuple[str, str]]:
    """(description, sanctioning per-file rule id) for a source call."""
    if name in _WALL_CLOCK_CALLS:
        return f"wall-clock read {name}()", "R001"
    if name.startswith("random."):
        return f"global-state {name}()", "R002"
    if name in ("numpy.random.default_rng", "numpy.random.RandomState"):
        if not call.args and not call.keywords:
            return f"unseeded {name}()", "R002"
        return None
    if name.startswith("numpy.random."):
        if name.rsplit(".", 1)[1] in _NUMPY_GLOBAL_RNG:
            return f"global-state {name}()", "R002"
        return None
    if name in _SEMANTIC_ENTROPY or name.startswith("secrets."):
        return f"entropy source {name}()", "R002"
    return None


def _direct_sources(graph: ProjectGraph) -> Dict[str, str]:
    """Functions containing an unsanctioned clock/entropy read."""
    direct: Dict[str, str] = {}
    for info in graph.functions.values():
        module = graph.modules[info.module]
        for node in iter_frame(_frame_body(graph, info)):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, module.import_aliases)
            if not name:
                continue
            described = _call_source_desc(name, node)
            if described is None:
                continue
            desc, sanction_rule = described
            if (
                _suppressed(module, node, sanction_rule)
                or _suppressed(module, node, "R009")
            ):
                continue
            direct.setdefault(info.qualname, desc)
    return direct


class TaintPass:
    rule_id = "R009"
    title = "laundered wall-clock/global-RNG read reaches simulation code"

    def run(self, graph: ProjectGraph, roles: ProjectRoles) -> List[Finding]:
        tainted = taint_callers(graph, _direct_sources(graph))
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int]] = set()
        for info in graph.functions_in(roles.sim):
            module = graph.modules[info.module]
            for site in info.calls:
                if site.kind != "project":
                    continue
                culprit = next(
                    (
                        target for target in site.targets
                        if target in tainted
                        and not self._in_sim(graph, target, roles)
                    ),
                    None,
                )
                if culprit is None:
                    continue
                if _suppressed(module, site.node, "R009"):
                    continue
                key = (info.path, site.lineno, site.col)
                if key in seen:
                    continue
                seen.add(key)
                chain = [info.qualname] + taint_chain(tainted, culprit)
                findings.append(Finding(
                    path=info.path, line=site.lineno, col=site.col,
                    rule_id=self.rule_id,
                    message=(
                        f"{tainted[culprit].source} reaches sim code through "
                        + " -> ".join(chain)
                        + " — route through the sim clock / a derived "
                        "generator, or pragma the source line"
                    ),
                ))
        return findings

    @staticmethod
    def _in_sim(graph: ProjectGraph, qualname: str,
                roles: ProjectRoles) -> bool:
        info = graph.functions.get(qualname)
        return info is not None and module_matches(info.module, roles.sim)


# ----------------------------------------------------------------------
# R010 — shared-mutable-state inventory
# ----------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.deque", "collections.Counter",
})

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "extendleft",
})

_CACHE_DECORATORS = frozenset({
    "functools.lru_cache", "functools.cache", "lru_cache", "cache",
})


@dataclass
class SharedStateEntry:
    """One piece of process-shared state, for ``shared_state.json``."""

    module: str
    name: str
    kind: str           #: module-global | class-attr | cache | global-rebind
    path: str
    line: int
    container: str = ""
    mutated: bool = False
    mutation_sites: List[str] = field(default_factory=list)
    justification: Optional[str] = None

    @property
    def key(self) -> str:
        return f"{self.module}.{self.name}"

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "module": self.module, "name": self.name, "kind": self.kind,
            "path": self.path, "line": self.line,
            "container": self.container, "mutated": self.mutated,
            "mutation_sites": sorted(self.mutation_sites),
        }
        if self.justification is not None:
            payload["justification"] = self.justification
        return payload


def _mutable_container(module: ModuleInfo, value: ast.AST) -> Optional[str]:
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func, module.import_aliases)
        if name in _MUTABLE_FACTORIES:
            return name.rsplit(".", 1)[-1]
    return None


def build_inventory(graph: ProjectGraph) -> List[SharedStateEntry]:
    """Collect every shared-state candidate, then mark the mutated ones."""
    entries: Dict[str, SharedStateEntry] = {}
    for module in graph.modules.values():
        for stmt in module.tree.body:
            _collect_stmt_entry(module, stmt, None, entries)
            if isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    _collect_stmt_entry(module, item, stmt.name, entries)
    for info in graph.functions.values():
        module = graph.modules[info.module]
        if _cache_decorated(module, info):
            entry = SharedStateEntry(
                module=info.module,
                name=(f"{info.class_name}.{info.name}" if info.class_name
                      else info.name),
                kind="cache", path=normalize_path(info.path),
                line=info.lineno,
                container="lru_cache", mutated=True,
            )
            entries.setdefault(entry.key, entry)
    _mark_rebinds(graph, entries)
    _mark_mutations(graph, entries)
    return sorted(entries.values(), key=lambda e: (e.path, e.line, e.name))


def _collect_stmt_entry(
    module: ModuleInfo, stmt: ast.AST, class_name: Optional[str],
    entries: Dict[str, SharedStateEntry],
) -> None:
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets, value = [stmt.target], stmt.value
    else:
        return
    container = _mutable_container(module, value)
    if container is None:
        return
    for target in targets:
        if not isinstance(target, ast.Name):
            continue
        name = f"{class_name}.{target.id}" if class_name else target.id
        kind = "class-attr" if class_name else "module-global"
        entry = SharedStateEntry(
            module=module.name, name=name, kind=kind,
            path=normalize_path(module.path),
            line=stmt.lineno, container=container,
        )
        entries.setdefault(entry.key, entry)


def _cache_decorated(module: ModuleInfo, info: FunctionInfo) -> bool:
    if info.node is None or not hasattr(info.node, "decorator_list"):
        return False
    for decorator in info.node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target, module.import_aliases)
        if name in _CACHE_DECORATORS:
            return True
    return False


def _mark_rebinds(graph: ProjectGraph,
                  entries: Dict[str, SharedStateEntry]) -> None:
    for info in graph.functions.values():
        if info.name == MODULE_FRAME or info.node is None:
            continue
        for node in iter_frame(info.node.body):
            if not isinstance(node, ast.Global):
                continue
            for name in node.names:
                key = f"{info.module}.{name}"
                site = f"{normalize_path(info.path)}:{node.lineno}"
                if key in entries:
                    entries[key].mutated = True
                    entries[key].mutation_sites.append(site)
                else:
                    entries[key] = SharedStateEntry(
                        module=info.module, name=name, kind="global-rebind",
                        path=normalize_path(info.path), line=node.lineno,
                        container="global", mutated=True,
                        mutation_sites=[site],
                    )


def _mark_mutations(graph: ProjectGraph,
                    entries: Dict[str, SharedStateEntry]) -> None:
    for info in graph.functions.values():
        if info.name == MODULE_FRAME or info.node is None:
            continue  # import-time construction of a table is not runtime sharing
        module = graph.modules[info.module]
        for node in iter_frame(info.node.body):
            for receiver in _mutation_receivers(node):
                for key in _receiver_keys(module, info, receiver):
                    entry = entries.get(key)
                    if entry is None:
                        continue
                    entry.mutated = True
                    site = f"{normalize_path(info.path)}:{node.lineno}"
                    if site not in entry.mutation_sites:
                        entry.mutation_sites.append(site)


def _mutation_receivers(node: ast.AST) -> Iterator[ast.AST]:
    """Expressions whose value is mutated in place by ``node``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATOR_METHODS:
            yield node.func.value
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    for target in targets:
        if isinstance(target, ast.Subscript):
            yield target.value


def _receiver_keys(module: ModuleInfo, info: FunctionInfo,
                   receiver: ast.AST) -> List[str]:
    dotted = dotted_name(receiver, module.import_aliases)
    if not dotted:
        return []
    root, _, rest = dotted.partition(".")
    if root in ("self", "cls") and info.class_name is not None:
        return [f"{module.name}.{info.class_name}.{rest}"] if rest else []
    if not rest:
        if dotted in info.local_names:
            return []
        return [f"{module.name}.{dotted}"]
    # alias-resolved dotted receiver (other module's global, or a
    # same-module ClassName.attr)
    return [dotted, f"{module.name}.{dotted}"]


def r010_message(entry: SharedStateEntry) -> str:
    """The R010 finding message for one inventory entry.

    Kept in one place so the baseline and ``shared_state.json`` writers
    agree on the key byte-for-byte.
    """
    detail = {
        "module-global": "module-level mutable container",
        "class-attr": "class-level mutable attribute (shared by instances)",
        "cache": "memoization cache lives for the whole process",
        "global-rebind": "module global rebound at runtime",
    }[entry.kind]
    sites = ", ".join(sorted(entry.mutation_sites)[:3]) or "decorator"
    return (
        f"shared mutable state {entry.key} ({entry.container}): {detail}; "
        f"mutated at {sites} — a concurrent serving layer must scope or "
        "lock this"
    )


class SharedStatePass:
    rule_id = "R010"
    title = "shared mutable state (cross-tenant hazard inventory)"

    def run(self, graph: ProjectGraph, roles: ProjectRoles) -> List[Finding]:
        findings: List[Finding] = []
        for entry in build_inventory(graph):
            if not entry.mutated:
                continue
            module = graph.modules.get(entry.module)
            anchor = ast.Pass()
            anchor.lineno = entry.line
            if module is not None and _suppressed(module, anchor, "R010"):
                continue
            findings.append(Finding(
                path=entry.path, line=entry.line, col=0,
                rule_id=self.rule_id, message=r010_message(entry),
            ))
        return findings


# ----------------------------------------------------------------------
# R011 — observer purity
# ----------------------------------------------------------------------


def _state_writes(info: FunctionInfo) -> List[ast.AST]:
    """Attribute stores / global statements in one function frame."""
    writes: List[ast.AST] = []
    if info.node is None:
        return writes
    for node in iter_frame(info.node.body):
        if isinstance(node, ast.Global):
            writes.append(node)
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, ast.Attribute):
                writes.append(target)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            # self.flows.append(...) style in-place mutation
            if node.func.attr in _MUTATOR_METHODS and isinstance(
                node.func.value, ast.Attribute
            ):
                writes.append(node.func.value)
    return writes


class ObserverPurityPass:
    rule_id = "R011"
    title = "observer-reachable code mutates engine/wan/core state"

    def run(self, graph: ProjectGraph, roles: ProjectRoles) -> List[Finding]:
        roots = [
            info.qualname for info in graph.functions_in(roles.observer)
        ]
        reached = reachable_from(graph, roots)
        findings = self._crossing_findings(graph, roles, reached)
        findings.extend(self._annotated_writes(graph, roles, reached))
        return findings

    def _crossing_findings(self, graph, roles, reached) -> List[Finding]:
        # protected functions that mutate state, plus everything that
        # (transitively) calls them
        direct = {
            info.qualname: f"state write in {info.qualname}"
            for info in graph.functions_in(roles.protected)
            if _state_writes(info)
        }
        impure = taint_callers(graph, direct)
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, int]] = set()
        for info in graph.functions_in(roles.observer):
            module = graph.modules[info.module]
            for site in info.calls:
                if site.kind != "project":
                    continue
                culprit = next(
                    (
                        target for target in site.targets
                        if target in impure and self._protected(
                            graph, target, roles
                        )
                    ),
                    None,
                )
                if culprit is None or _suppressed(module, site.node, "R011"):
                    continue
                key = (info.path, site.lineno, site.col)
                if key in seen:
                    continue
                seen.add(key)
                chain = [info.qualname] + taint_chain(impure, culprit)
                findings.append(Finding(
                    path=info.path, line=site.lineno, col=site.col,
                    rule_id=self.rule_id,
                    message=(
                        "observer code calls an engine/wan/core mutator: "
                        + " -> ".join(chain)
                        + " — observers must be pure readers of sim state"
                    ),
                ))
        return findings

    @staticmethod
    def _protected(graph, qualname, roles) -> bool:
        info = graph.functions.get(qualname)
        return info is not None and module_matches(info.module, roles.protected)

    def _annotated_writes(self, graph, roles, reached) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in reached:
            info = graph.functions.get(qualname)
            if info is None or not isinstance(
                info.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # module frames have no parameters
            module = graph.modules[info.module]
            protected_params = self._protected_params(graph, module, info, roles)
            if not protected_params:
                continue
            for write in _state_writes(info):
                root = write
                while isinstance(root, ast.Attribute):
                    root = root.value
                if not isinstance(root, ast.Name):
                    continue
                if root.id not in protected_params:
                    continue
                if _suppressed(module, write, "R011"):
                    continue
                path_to_obs = reach_chain(reached, qualname)
                findings.append(Finding(
                    path=info.path, line=write.lineno,
                    col=getattr(write, "col_offset", 0),
                    rule_id=self.rule_id,
                    message=(
                        f"writes attribute of {protected_params[root.id]} "
                        f"parameter {root.id!r} while reachable from "
                        "observer code (" + " -> ".join(path_to_obs)
                        + ") — observers must be pure readers"
                    ),
                ))
        return findings

    @staticmethod
    def _protected_params(graph, module, info, roles) -> Dict[str, str]:
        """Parameter name -> protected class qualname, from annotations."""
        protected: Dict[str, str] = {}
        args = info.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            annotation = arg.annotation
            if annotation is None:
                continue
            if isinstance(annotation, ast.Subscript):  # Optional[X] etc.
                annotation = annotation.slice
            name = dotted_name(annotation, module.import_aliases)
            if not name:
                continue
            resolved = (
                graph._resolve_dotted(name) if "." in name
                else graph.resolve_symbol(module.name, name)
            )
            if resolved and resolved[0] == "class":
                class_info = graph.classes.get(resolved[1])
                if class_info is not None and module_matches(
                    class_info.module, roles.protected
                ):
                    protected[arg.arg] = resolved[1]
        return protected


# ----------------------------------------------------------------------
# R012 — interprocedural unordered iteration
# ----------------------------------------------------------------------

_ORDER_INSENSITIVE = frozenset(
    {"sorted", "set", "frozenset", "min", "max", "any", "all", "len"}
)
_ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "sum"})

_SET_ANNOTATIONS = frozenset({
    "set", "frozenset",
    "typing.Set", "typing.FrozenSet", "typing.AbstractSet",
    "typing.KeysView", "typing.MutableSet",
    "Set", "FrozenSet", "AbstractSet", "KeysView", "MutableSet",
})


def _is_set_literalish(module: ModuleInfo, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func, module.import_aliases)
        if name in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args and not node.keywords
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return any(
            _is_set_literalish(module, side)
            for side in (node.left, node.right)
        )
    return False


def _set_returners(graph: ProjectGraph) -> Set[str]:
    """Functions returning an unordered set, to a fixed point."""
    seeds: Set[str] = set()
    depends: Dict[str, Set[str]] = {}
    for info in graph.functions.values():
        if info.name == MODULE_FRAME or info.node is None:
            continue
        module = graph.modules[info.module]
        returns = getattr(info.node, "returns", None)
        if returns is not None:
            name = dotted_name(
                returns.value if isinstance(returns, ast.Subscript) else returns,
                module.import_aliases,
            )
            if name in _SET_ANNOTATIONS:
                seeds.add(info.qualname)
        sites_by_node = {id(site.node): site for site in info.calls}
        for node in iter_frame(info.node.body):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if _is_set_literalish(module, node.value):
                seeds.add(info.qualname)
            elif isinstance(node.value, ast.Call):
                site = sites_by_node.get(id(node.value))
                if site is not None and site.kind == "project":
                    depends.setdefault(info.qualname, set()).update(
                        site.targets
                    )
    return propagate_property(seeds, depends)


def _accumulates(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.AugAssign):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "extend", "insert")
        ):
            return True
    return False


class UnorderedFlowPass:
    rule_id = "R012"
    title = "helper-returned set iterated order-sensitively at a call site"

    def run(self, graph: ProjectGraph, roles: ProjectRoles) -> List[Finding]:
        returners = _set_returners(graph)
        findings: List[Finding] = []
        for info in graph.functions.values():
            if info.node is None and info.name != MODULE_FRAME:
                continue
            module = graph.modules[info.module]
            findings.extend(
                self._check_frame(graph, module, info, returners)
            )
        return findings

    def _check_frame(self, graph, module, info, returners) -> List[Finding]:
        unordered_calls: Dict[int, str] = {}  # id(ast.Call) -> helper name
        for site in info.calls:
            if site.kind == "project" and any(
                target in returners for target in site.targets
            ):
                unordered_calls[id(site.node)] = site.text
        body = _frame_body(graph, info)
        unordered_vars = self._single_assigned_vars(body, unordered_calls)

        def unordered(node: ast.AST) -> Optional[str]:
            if isinstance(node, ast.Call):
                return unordered_calls.get(id(node))
            if isinstance(node, ast.Name):
                return unordered_vars.get(node.id)
            return None

        # order-insensitive consumers sanction their argument expression
        # (sorted(helper()) / set(x for x in helper()) are the fix, not a
        # finding); iter_frame visits parents before children, and the
        # final filter below re-checks, so one sweep suffices.
        sanctioned: Set[int] = set()
        #: (finding anchor, sanction-checked node, helper, consumer kind)
        consumer_sites: List[Tuple[ast.AST, ast.AST, str, str]] = []
        for node in iter_frame(body):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func, module.import_aliases)
                is_join = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                )
                if name in _ORDER_INSENSITIVE:
                    for arg in node.args:
                        sanctioned.add(id(arg))
                elif (name in _ORDER_SENSITIVE or is_join) and node.args:
                    helper = unordered(node.args[0])
                    if helper:
                        consumer_sites.append(
                            (node.args[0], node.args[0], helper,
                             name or "str.join")
                        )
            elif isinstance(node, ast.For):
                helper = unordered(node.iter)
                if helper and _accumulates(node):
                    consumer_sites.append(
                        (node.iter, node.iter, helper, "accumulating loop")
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for generator in node.generators:
                    helper = unordered(generator.iter)
                    if helper:
                        consumer_sites.append(
                            (generator.iter, node, helper, "comprehension")
                        )

        findings: List[Finding] = []
        seen: Set[Tuple[int, int]] = set()
        for where, sanction_node, helper, consumer in consumer_sites:
            if id(sanction_node) in sanctioned or _suppressed(
                module, where, "R012"
            ):
                continue
            key = (where.lineno, where.col_offset)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                path=info.path, line=where.lineno, col=where.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"{helper}() returns an unordered set and this "
                    f"{consumer} fixes an arbitrary order — iteration "
                    "order follows the hash seed; wrap in sorted(...)"
                ),
            ))
        return findings

    @staticmethod
    def _single_assigned_vars(
        body: Sequence[ast.AST], unordered_calls: Dict[int, str]
    ) -> Dict[str, str]:
        assignments: Dict[str, int] = {}
        bound: Dict[str, str] = {}
        for node in iter_frame(body):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                assignments[name] = assignments.get(name, 0) + 1
                helper = unordered_calls.get(id(node.value))
                if helper:
                    bound[name] = helper
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and \
                    isinstance(node.target, ast.Name):
                assignments[node.target.id] = (
                    assignments.get(node.target.id, 0) + 1
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                assignments[node.target.id] = (
                    assignments.get(node.target.id, 0) + 1
                )
        return {
            name: helper for name, helper in bound.items()
            if assignments.get(name, 0) == 1
        }


# ----------------------------------------------------------------------
# pass registry
# ----------------------------------------------------------------------

STATIC_PASSES = (
    TaintPass(), SharedStatePass(), ObserverPurityPass(), UnorderedFlowPass(),
)

for _pass in STATIC_PASSES:
    if _pass.rule_id not in STATIC_RULE_IDS:  # pragma: no cover - wiring
        raise LintError(
            f"static pass {_pass.rule_id} missing from registry.STATIC_RULE_IDS"
        )


def run_static_passes(
    graph: ProjectGraph,
    roles: Optional[ProjectRoles] = None,
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], List[SharedStateEntry]]:
    """Run the interprocedural passes; returns (findings, inventory).

    The inventory is returned even when R010 is deselected or clean, so
    ``shared_state.json`` always reflects the full audit.
    """
    roles = roles or DEFAULT_ROLES
    wanted = {rule_id.upper() for rule_id in select} if select else None
    if wanted is not None:
        unknown = wanted - set(STATIC_RULE_IDS)
        if unknown:
            raise LintError(
                f"unknown static pass ids {sorted(unknown)}; "
                f"known: {sorted(STATIC_RULE_IDS)}"
            )
    findings: List[Finding] = []
    for static_pass in STATIC_PASSES:
        if wanted is not None and static_pass.rule_id not in wanted:
            continue
        findings.extend(static_pass.run(graph, roles))
    return sorted(findings), build_inventory(graph)


def write_shared_state(
    entries: Sequence[SharedStateEntry], path: str, baseline=None
) -> int:
    """Write the R010 inventory as ``shared_state.json``; returns count.

    When a baseline is given, justifications for accepted mutated
    entries are joined in (the baseline key is the R010 finding message,
    which :func:`r010_message` reproduces byte-for-byte), so the JSON
    doubles as the serving layer's annotated isolation TODO list.
    """
    import json

    payload_entries = []
    for entry in sorted(entries, key=lambda item: item.key):
        if baseline is not None and entry.mutated:
            probe = Finding(
                path=entry.path, line=entry.line, col=0,
                rule_id="R010", message=r010_message(entry),
            )
            entry.justification = baseline.justification_for(probe)
        payload_entries.append(entry.to_dict())
    payload = {
        "version": 1,
        "description": (
            "process-shared mutable state in src/repro, emitted by "
            "`repro lint --shared-state` (pass R010); every entry must "
            "be scoped, locked, or reset-hooked before the concurrent "
            "serving layer lands"
        ),
        "entries": payload_entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True,
                  ensure_ascii=False)
        handle.write("\n")
    return len(payload_entries)
