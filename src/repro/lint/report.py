"""Reporters: findings → human text or machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.findings import Finding


def render_text(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """A line per finding plus a one-line summary (empty-run friendly)."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule: Dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        breakdown = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"({breakdown}) in {files_checked} files"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} files")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int = 0) -> str:
    """Stable machine-readable form for CI annotation tooling."""
    payload = {
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
