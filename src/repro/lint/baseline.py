"""Committed findings baseline with strict-on-new semantics.

Whole-program passes over a living codebase surface findings that are
*accepted* — a registry that is mutated on purpose, a memo cache with a
reset hook.  Those go into ``lint-baseline.json`` with a mandatory
human justification; CI then fails only on findings **not** in the
baseline, so the suite is strict for new code without demanding a
big-bang cleanup of audited state.

Baseline entries are keyed on ``(path, rule_id, message)`` — line
numbers are deliberately excluded so unrelated edits shifting a file do
not invalidate the baseline.  Paths are normalized to repo-relative
forward-slash form, so CI (relative paths) and local test runs
(absolute paths) agree.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding

BASELINE_VERSION = 1

#: Path anchors: everything from the first occurrence of one of these
#: segments onward identifies the file regardless of checkout location.
_ANCHORS = ("src", "benchmarks", "tests", "examples")


def normalize_path(path: str) -> str:
    """Repo-relative forward-slash form of ``path`` for baseline keys."""
    path = os.path.normpath(path).replace("\\", "/")
    parts = [part for part in path.split("/") if part not in (".", "")]
    for index, part in enumerate(parts):
        if part in _ANCHORS:
            return "/".join(parts[index:])
    return "/".join(parts)


def _key(path: str, rule_id: str, message: str) -> Tuple[str, str, str]:
    return (normalize_path(path), rule_id, message)


@dataclass
class BaselineEntry:
    path: str
    rule_id: str
    message: str
    justification: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "path": self.path,
            "rule_id": self.rule_id,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class BaselineDiff:
    """Result of checking a finding set against a baseline."""

    new: List[Finding] = field(default_factory=list)
    known: List[Finding] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"baseline: {len(self.known)} accepted finding"
            f"{'s' if len(self.known) != 1 else ''} suppressed, "
            f"{len(self.new)} new, {len(self.stale)} stale"
        ]
        for entry in self.stale:
            lines.append(
                f"  stale baseline entry (fixed? remove it): "
                f"{entry.path}: {entry.rule_id} {entry.message}"
            )
        return "\n".join(lines)


class Baseline:
    """The committed set of accepted findings."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: Dict[Tuple[str, str, str], BaselineEntry] = {}
        for entry in entries:
            self.entries[_key(entry.path, entry.rule_id, entry.message)] = entry

    @classmethod
    def load(cls, path: str, strict: bool = True) -> "Baseline":
        """Read a baseline file.

        With ``strict`` (the CI gate), entries whose justification is
        empty or still the ``TODO`` marker are rejected.  Non-strict
        loads (baseline regeneration, shared-state annotation) keep such
        entries so real justifications written later are not lost.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
        if payload.get("version") != BASELINE_VERSION:
            raise LintError(
                f"baseline {path} has version {payload.get('version')!r}; "
                f"this tool reads version {BASELINE_VERSION}"
            )
        entries = []
        for index, raw in enumerate(payload.get("findings", [])):
            missing = {"path", "rule_id", "message"} - set(raw)
            if missing:
                raise LintError(
                    f"baseline {path} entry {index} is missing {sorted(missing)}"
                )
            justification = str(raw.get("justification", "")).strip()
            if not justification or justification.upper().startswith("TODO"):
                if strict:
                    raise LintError(
                        f"baseline {path} entry {index} "
                        f"({raw['rule_id']} in {raw['path']}) lacks a real "
                        "justification — every accepted finding must say why"
                    )
                justification = justification or "TODO: justify or fix"
            entries.append(BaselineEntry(
                path=raw["path"], rule_id=raw["rule_id"],
                message=raw["message"], justification=justification,
            ))
        return cls(entries)

    def check(self, findings: Sequence[Finding]) -> BaselineDiff:
        """Split ``findings`` into new vs baseline-accepted; report stale."""
        diff = BaselineDiff()
        matched = set()
        for finding in findings:
            key = _key(finding.path, finding.rule_id, finding.message)
            if key in self.entries:
                matched.add(key)
                diff.known.append(finding)
            else:
                diff.new.append(finding)
        diff.stale = [
            entry for key, entry in sorted(self.entries.items())
            if key not in matched
        ]
        return diff

    def justification_for(self, finding: Finding) -> Optional[str]:
        entry = self.entries.get(
            _key(finding.path, finding.rule_id, finding.message)
        )
        return entry.justification if entry is not None else None


def write_baseline(
    findings: Sequence[Finding], path: str,
    previous: Optional[Baseline] = None,
) -> int:
    """(Re)generate a baseline file from the current findings.

    Justifications from ``previous`` are carried over for findings that
    still match; new entries get an explicit ``TODO`` marker that
    :meth:`Baseline.load` refuses, forcing a human to write the reason
    before the file is usable in CI.  Returns the entry count.
    """
    seen = set()
    entries: List[Dict[str, str]] = []
    for finding in sorted(findings):
        key = _key(finding.path, finding.rule_id, finding.message)
        if key in seen:
            continue
        seen.add(key)
        justification = "TODO: justify or fix"
        if previous is not None:
            kept = previous.entries.get(key)
            if kept is not None:
                justification = kept.justification
        entries.append(BaselineEntry(
            path=normalize_path(finding.path), rule_id=finding.rule_id,
            message=finding.message, justification=justification,
        ).to_dict())
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True,
                  ensure_ascii=False)
        handle.write("\n")
    return len(entries)
