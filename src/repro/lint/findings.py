"""The unit of lint output: one rule firing at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, ordered by location for stable reports."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
