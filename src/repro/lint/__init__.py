"""`repro.lint` — simulation-aware static analysis for this repository.

An AST-based lint framework (visitor core, rule registry, per-line
``# lint: allow[RULE]`` pragmas, text/JSON reporters) whose rule pack
encodes the repo's determinism and correctness contract — no wall-clock
reads in sim code (R001), seeded randomness only (R002), no unordered
set iteration into order-sensitive constructs (R003), no float equality
on sim quantities (R004), no mutable defaults (R005), no blanket
excepts (R006).  See DESIGN.md "Determinism & invariants contract".

Run it exactly as CI does::

    python -m repro lint src/repro benchmarks
    python -m repro.lint src/repro benchmarks    # equivalent
"""

from repro.lint.findings import Finding
from repro.lint.registry import LintRule, all_rules, register, rules_for
from repro.lint.report import render_json, render_text
from repro.lint.runner import collect_files, lint_paths, lint_source

__all__ = [
    "Finding",
    "LintRule",
    "all_rules",
    "collect_files",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "rules_for",
]
