"""`repro.lint` — simulation-aware static analysis for this repository.

An AST-based lint framework (visitor core, rule registry, per-line
``# lint: allow[R001]``-style pragmas, text/JSON/SARIF reporters) whose
rule pack encodes the repo's determinism and correctness contract — no
wall-clock reads in sim code (R001), seeded randomness only (R002), no
unordered set iteration into order-sensitive constructs (R003), no float
equality on sim quantities (R004), no mutable defaults (R005), no
blanket excepts (R006).  See DESIGN.md "Determinism & invariants
contract".

On top of the per-file rules sits a whole-program layer
(:mod:`repro.lint.graph` / :mod:`repro.lint.flow` /
:mod:`repro.lint.passes`): an import/call graph over ``src/repro`` and a
fixed-point taint engine powering the interprocedural passes R009–R012
(laundered wall-clock/RNG reads, the shared-mutable-state inventory,
observer purity, helper-returned unordered sets).  Their accepted
findings live in the committed ``lint-baseline.json`` with per-entry
justifications; CI fails on any *new* finding.

Run it exactly as CI does::

    python -m repro lint src/repro benchmarks
    python -m repro lint --static --baseline lint-baseline.json \
        src/repro benchmarks
    python -m repro.lint src/repro benchmarks    # equivalent
"""

from repro.lint.findings import Finding
from repro.lint.registry import (
    LintRule,
    STATIC_RULE_IDS,
    all_rules,
    register,
    rules_for,
)
from repro.lint.report import render_json, render_text
from repro.lint.runner import collect_files, lint_paths, lint_source

__all__ = [
    "Finding",
    "LintRule",
    "STATIC_RULE_IDS",
    "all_rules",
    "collect_files",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "rules_for",
]
