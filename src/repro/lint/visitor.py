"""Single-pass AST walker with parent links and an import table.

One :class:`LintContext` is built per file; every registered rule is
dispatched from the same walk, so a file is parsed and traversed once no
matter how many rules run.  The context carries the cross-cutting
facilities rules need:

* ``qualified_name(node)`` — dotted name of a ``Name``/``Attribute``
  chain with import aliases resolved (``from time import perf_counter as
  pc`` makes ``pc()`` resolve to ``time.perf_counter``);
* ``parent(node)`` / ``ancestors(node)`` — upward navigation;
* ``is_set_expr(node)`` — conservative "this expression is an unordered
  set" type judgement used by R003.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence

from repro.lint.findings import Finding
from repro.lint.pragmas import is_suppressed, parse_pragmas
from repro.lint.registry import LintRule


class LintContext:
    """Per-file state shared by all rules during one walk."""

    def __init__(self, tree: ast.AST, source: str, path: str) -> None:
        self.tree = tree
        self.source = source
        self.path = path
        self.pragmas: Dict[int, FrozenSet[str]] = parse_pragmas(source)
        self._parents: Dict[ast.AST, ast.AST] = {}
        #: local alias -> canonical dotted module path ("np" -> "numpy",
        #: "pc" -> "time.perf_counter").
        self.import_aliases: Dict[str, str] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._collect_imports()

    # ------------------------------------------------------------------
    # imports
    # ------------------------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.import_aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    # ------------------------------------------------------------------
    # expression helpers
    # ------------------------------------------------------------------

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a Name/Attribute chain, import aliases resolved."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.import_aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def is_set_expr(self, node: ast.AST) -> bool:
        """Conservatively true when ``node`` evaluates to an unordered set.

        Covers ``set(...)`` / ``frozenset(...)`` calls, set literals, set
        comprehensions, and set-operator expressions (``| & - ^``) whose
        operands are themselves sets or ``dict.keys()`` views (a binary
        set operation on key views returns a plain unordered ``set``).
        """
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self.qualified_name(node.func)
            if name in ("set", "frozenset"):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return any(
                self.is_set_expr(side) or self._is_keys_view(side)
                for side in (node.left, node.right)
            )
        return False

    @staticmethod
    def _is_keys_view(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        )


def run_rules(
    source: str, path: str, rules: Sequence[LintRule]
) -> List[Finding]:
    """Parse ``source`` and run every rule over it; returns sorted findings.

    Syntax errors are reported as a pseudo-finding with rule id ``R000``
    rather than raised, so one broken file cannot abort a whole lint run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id="R000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    context = LintContext(tree, source, path)
    findings: List[Finding] = []
    for node in ast.walk(tree):
        for rule in rules:
            if not isinstance(node, rule.node_types):
                continue
            for where, message in rule.check(node, context):
                line = getattr(where, "lineno", 1)
                col = getattr(where, "col_offset", 0)
                if is_suppressed(context.pragmas, line, rule.rule_id):
                    continue
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=col,
                        rule_id=rule.rule_id,
                        message=message,
                    )
                )
    return sorted(findings)
