"""Single-pass AST walker with parent links and an import table.

One :class:`LintContext` is built per file; every registered rule is
dispatched from the same walk, so a file is parsed and traversed once no
matter how many rules run.  The context carries the cross-cutting
facilities rules need:

* ``qualified_name(node)`` — dotted name of a ``Name``/``Attribute``
  chain with import aliases resolved (``from time import perf_counter as
  pc`` makes ``pc()`` resolve to ``time.perf_counter``);
* ``parent(node)`` / ``ancestors(node)`` — upward navigation;
* ``is_set_expr(node)`` — conservative "this expression is an unordered
  set" type judgement used by R003.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.pragmas import is_suppressed, parse_pragmas
from repro.lint.registry import LintRule, known_rule_ids


class LintContext:
    """Per-file state shared by all rules during one walk."""

    def __init__(self, tree: ast.AST, source: str, path: str) -> None:
        self.tree = tree
        self.source = source
        self.path = path
        self.pragmas: Dict[int, FrozenSet[str]] = parse_pragmas(source)
        self._parents: Dict[ast.AST, ast.AST] = {}
        #: local alias -> canonical dotted module path ("np" -> "numpy",
        #: "pc" -> "time.perf_counter").
        self.import_aliases: Dict[str, str] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._collect_imports()

    # ------------------------------------------------------------------
    # imports
    # ------------------------------------------------------------------

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.import_aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    # ------------------------------------------------------------------
    # expression helpers
    # ------------------------------------------------------------------

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Dotted name of a Name/Attribute chain, import aliases resolved."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.import_aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def is_set_expr(self, node: ast.AST) -> bool:
        """Conservatively true when ``node`` evaluates to an unordered set.

        Covers ``set(...)`` / ``frozenset(...)`` calls, set literals, set
        comprehensions, and set-operator expressions (``| & - ^``) whose
        operands are themselves sets or ``dict.keys()`` views (a binary
        set operation on key views returns a plain unordered ``set``).
        """
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self.qualified_name(node.func)
            if name in ("set", "frozenset"):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return any(
                self.is_set_expr(side) or self._is_keys_view(side)
                for side in (node.left, node.right)
            )
        return False

    @staticmethod
    def _is_keys_view(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        )


def _suppression_span(
    context: LintContext, where: ast.AST, line: int
) -> "Tuple[int, int]":
    """Line range on which a pragma suppresses a finding at ``where``.

    The span of the enclosing statement: its full extent for simple
    statements, the header only (up to the first body statement) for
    compound ones — a pragma buried in a loop body must not silence a
    finding on the loop's iterable.
    """
    start_line = line
    end_line = line
    if isinstance(where, ast.expr):
        end_line = getattr(where, "end_lineno", None) or line
    stmt: Optional[ast.AST] = where
    while stmt is not None and not isinstance(stmt, ast.stmt):
        stmt = context.parent(stmt)
    if stmt is None:
        return start_line, end_line
    start_line = min(start_line, stmt.lineno)
    body = getattr(stmt, "body", None)
    if isinstance(body, list) and body:
        header_end = body[0].lineno - 1
    else:
        header_end = getattr(stmt, "end_lineno", None) or end_line
    return start_line, max(end_line, header_end)


def run_rules(
    source: str, path: str, rules: Sequence[LintRule]
) -> List[Finding]:
    """Parse ``source`` and run every rule over it; returns sorted findings.

    Parse failures (syntax errors, NUL bytes, …) are reported as a
    pseudo-finding with rule id ``R000`` rather than raised, so one
    broken file cannot abort a whole lint run.  Unknown rule ids inside
    pragmas are reported as ``W001`` — a typo'd pragma silently
    suppressing nothing is worse than a loud one.

    A pragma suppresses a finding when it sits on any line of the
    enclosing *simple* statement (so the trailing-comment idiom works on
    continuation lines of a multi-line expression); for compound
    statements (``for``/``if``/``def`` …) only the header lines count —
    a pragma buried in a loop body must not silence a finding on the
    loop's iterable.
    """
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        # ValueError covers non-syntax parse failures (e.g. NUL bytes).
        lineno = getattr(exc, "lineno", None) or 1
        offset = getattr(exc, "offset", None) or 1
        message = getattr(exc, "msg", None) or str(exc)
        return [
            Finding(
                path=path,
                line=lineno,
                col=offset - 1,
                rule_id="R000",
                message=f"parse failure: {message}",
            )
        ]
    context = LintContext(tree, source, path)
    findings: List[Finding] = []
    known_ids = known_rule_ids()
    for lineno, rule_ids in sorted(context.pragmas.items()):
        for rule_id in sorted(rule_ids):
            if rule_id != "*" and rule_id not in known_ids:
                findings.append(
                    Finding(
                        path=path, line=lineno, col=0, rule_id="W001",
                        message=(
                            f"pragma names unknown rule id {rule_id!r} "
                            "and suppresses nothing — fix the id or drop it"
                        ),
                    )
                )
    for node in ast.walk(tree):
        for rule in rules:
            if not isinstance(node, rule.node_types):
                continue
            for where, message in rule.check(node, context):
                line = getattr(where, "lineno", 1)
                col = getattr(where, "col_offset", 0)
                start_line, end_line = _suppression_span(context, where, line)
                if any(
                    is_suppressed(context.pragmas, candidate, rule.rule_id)
                    for candidate in range(start_line, end_line + 1)
                ):
                    continue
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=col,
                        rule_id=rule.rule_id,
                        message=message,
                    )
                )
    return sorted(findings)
