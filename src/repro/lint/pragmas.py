"""Per-line suppression pragmas.

A finding on line N is suppressed when line N carries a trailing comment
of the form::

    some_code()  # lint: allow[R001]
    other_code()  # lint: allow[R003,R004] — reason text is free-form

The rule list is comma-separated; anything after the closing bracket is
an (encouraged) human-readable justification.  ``allow[*]`` suppresses
every rule on that line.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9*,\s]+)\]")


def parse_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the set of rule ids allowed there."""
    pragmas: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        )
        if rules:
            pragmas[lineno] = rules
    return pragmas


def is_suppressed(
    pragmas: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    allowed = pragmas.get(line)
    if not allowed:
        return False
    return rule_id.upper() in allowed or "*" in allowed


def suppressed_lines(pragmas: Dict[int, FrozenSet[str]], rule_id: str) -> List[int]:
    """Lines carrying a pragma for ``rule_id`` (used by reporters/tests)."""
    return sorted(
        line
        for line, rules in pragmas.items()
        if rule_id.upper() in rules or "*" in rules
    )
