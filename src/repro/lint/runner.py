"""Lint driver: collect files, run the rule pack, return findings.

The public entry points are :func:`lint_source` (one in-memory module —
what the fixture tests use) and :func:`lint_paths` (files and directory
trees — what the CLI and CI use).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding
from repro.lint.registry import rules_for
from repro.lint.visitor import run_rules

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules",
                        ".pytest_cache", "build", "dist"})


def lint_source(
    source: str, path: str = "<string>", select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint one module's source text; ``select`` narrows the rule pack."""
    return run_rules(source, path, rules_for(list(select) if select else None))


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    name
                    for name in dirs
                    if name not in _SKIP_DIRS and not name.endswith(".egg-info")
                )
                collected.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(collected))


def lint_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, files_checked)`` with findings sorted by
    location.  Unreadable files surface as :class:`LintError`.
    """
    rules = rules_for(list(select) if select else None)
    files = collect_files(paths)
    findings: List[Finding] = []
    for file_path in files:
        try:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        findings.extend(run_rules(source, file_path, rules))
    return sorted(findings), len(files)
