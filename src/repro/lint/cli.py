"""CLI plumbing shared by ``repro lint`` and ``python -m repro.lint``.

Both entry points run the exact same code path CI does, so a local
``make lint`` (or ``python -m repro.lint src/repro benchmarks``)
reproduces CI verdicts bit-for-bit.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional, Sequence, Tuple

from repro.errors import LintError


def _run_static(
    args: argparse.Namespace,
    findings: "List",
    static_select: Optional[List[str]],
) -> "Tuple[List, str]":
    """Build the project graph, run R009-R012, write side artifacts.

    Returns the combined finding list and the graph summary text.
    Parse failures are not double-reported: the per-file runner already
    emitted R000 for every file in ``args.paths``.
    """
    from repro.lint.graph import ProjectGraph
    from repro.lint.passes import (
        build_inventory,
        run_static_passes,
        write_shared_state,
    )

    roots = [path for path in args.paths if os.path.isdir(path)]
    if not roots:
        raise LintError(
            "--static/--graph need directory PATH arguments "
            "(e.g. src/repro benchmarks)"
        )
    graph = ProjectGraph.build(roots)
    if args.static:
        static_findings, inventory = run_static_passes(
            graph, select=static_select
        )
        findings = sorted(findings + static_findings)
    else:
        inventory = build_inventory(graph)
    if args.shared_state:
        baseline = None
        if args.baseline and os.path.isfile(args.baseline):
            from repro.lint.baseline import Baseline

            baseline = Baseline.load(args.baseline, strict=False)
        count = write_shared_state(inventory, args.shared_state,
                                   baseline=baseline)
        print(
            f"shared-state inventory written to {args.shared_state} "
            f"({count} entries)"
        )
    return findings, graph.describe()


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (e.g. src/repro benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all; "
        "R009-R012 imply --static)",
    )
    parser.add_argument(
        "--static",
        action="store_true",
        help="also run the whole-program passes R009-R012 (call-graph "
        "taint, shared-state inventory, observer purity, unordered flow)",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="print call-graph construction and resolution statistics",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="committed findings baseline (lint-baseline.json): fail "
        "only on findings not in it; every entry needs a justification",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="regenerate the baseline from current findings (keeps "
        "existing justifications; new entries get a TODO marker)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="write all findings as SARIF 2.1.0 (baseline-accepted "
        "findings carry suppressions)",
    )
    parser.add_argument(
        "--shared-state",
        metavar="FILE",
        help="write the R010 shared-mutable-state inventory as JSON "
        "(the serving-layer isolation TODO list)",
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help="also run the two-run same-seed trace-digest determinism smoke",
    )
    parser.add_argument(
        "--scheme",
        default="bohr",
        help="scheme for the determinism smoke (default: bohr)",
    )
    parser.add_argument(
        "--workload",
        default="bigdata-aggregation",
        help="workload for the determinism smoke",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="seed for the determinism smoke"
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=2,
        help="queries per run in the determinism smoke (default: 2)",
    )
    parser.add_argument(
        "--chaos",
        metavar="PROFILE",
        default=None,
        help="run the determinism smoke under an injected fault "
        "schedule (a repro.chaos profile name)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=13,
        help="seed deriving the smoke's fault schedule (default: 13)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint pass (and optional determinism smoke); 0 if clean."""
    from repro.lint.registry import STATIC_RULE_IDS
    from repro.lint.report import render_json, render_text
    from repro.lint.runner import lint_paths

    if not args.paths and not args.determinism:
        raise LintError("nothing to do: give PATH arguments or --determinism")

    select: Optional[List[str]] = None
    if args.select:
        select = [token.strip() for token in args.select.split(",") if token.strip()]

    static_select: Optional[List[str]] = None
    file_select = select
    if select is not None:
        static_select = [
            rule_id for rule_id in select
            if rule_id.upper() in STATIC_RULE_IDS
        ]
        file_select = [
            rule_id for rule_id in select
            if rule_id.upper() not in STATIC_RULE_IDS
        ]
        if static_select:
            args.static = True

    wants_graph = bool(
        args.static or args.graph or args.write_baseline or args.shared_state
    )
    exit_code = 0
    if args.paths:
        findings, files_checked = lint_paths(args.paths, select=file_select)
        if wants_graph:
            findings, graph_report = _run_static(
                args, findings, static_select
            )
        if args.baseline and not args.write_baseline:
            from repro.lint.baseline import Baseline

            baseline = Baseline.load(args.baseline)
            diff = baseline.check(findings)
            gated = diff.new
        else:
            baseline = None
            diff = None
            gated = findings
        renderer = render_json if args.format == "json" else render_text
        print(renderer(gated, files_checked))
        if diff is not None and args.format != "json":
            print(diff.render())
        if wants_graph and args.graph and args.format != "json":
            print(graph_report)
        if args.sarif:
            from repro.lint.sarif import write_sarif

            write_sarif(findings, args.sarif, baseline=baseline)
            print(f"SARIF report written to {args.sarif}")
        if args.write_baseline:
            from repro.lint.baseline import Baseline, write_baseline

            previous = None
            if os.path.isfile(args.write_baseline):
                previous = Baseline.load(args.write_baseline, strict=False)
            count = write_baseline(findings, args.write_baseline,
                                   previous=previous)
            print(f"baseline written to {args.write_baseline} "
                  f"({count} entries)")
        elif gated:
            exit_code = 1

    if args.determinism:
        from repro.lint.determinism import run_determinism_check

        report = run_determinism_check(
            scheme=args.scheme,
            workload=args.workload,
            seed=args.seed,
            queries=args.queries,
            chaos_profile=args.chaos,
            chaos_seed=args.chaos_seed,
        )
        if args.paths:
            print()
        print(report.render())
        if not report.deterministic:
            exit_code = 1
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Simulation-aware static analysis + determinism smoke "
        "for the Bohr reproduction (per-file rules R001-R008, "
        "whole-program passes R009-R012; see DESIGN.md).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
