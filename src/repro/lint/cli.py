"""CLI plumbing shared by ``repro lint`` and ``python -m repro.lint``.

Both entry points run the exact same code path CI does, so a local
``make lint`` (or ``python -m repro.lint src/repro benchmarks``)
reproduces CI verdicts bit-for-bit.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.errors import LintError


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (e.g. src/repro benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help="also run the two-run same-seed trace-digest determinism smoke",
    )
    parser.add_argument(
        "--scheme",
        default="bohr",
        help="scheme for the determinism smoke (default: bohr)",
    )
    parser.add_argument(
        "--workload",
        default="bigdata-aggregation",
        help="workload for the determinism smoke",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="seed for the determinism smoke"
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=2,
        help="queries per run in the determinism smoke (default: 2)",
    )
    parser.add_argument(
        "--chaos",
        metavar="PROFILE",
        default=None,
        help="run the determinism smoke under an injected fault "
        "schedule (a repro.chaos profile name)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=13,
        help="seed deriving the smoke's fault schedule (default: 13)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint pass (and optional determinism smoke); 0 if clean."""
    from repro.lint.report import render_json, render_text
    from repro.lint.runner import lint_paths

    if not args.paths and not args.determinism:
        raise LintError("nothing to do: give PATH arguments or --determinism")

    select: Optional[List[str]] = None
    if args.select:
        select = [token.strip() for token in args.select.split(",") if token.strip()]

    exit_code = 0
    if args.paths:
        findings, files_checked = lint_paths(args.paths, select=select)
        renderer = render_json if args.format == "json" else render_text
        print(renderer(findings, files_checked))
        if findings:
            exit_code = 1

    if args.determinism:
        from repro.lint.determinism import run_determinism_check

        report = run_determinism_check(
            scheme=args.scheme,
            workload=args.workload,
            seed=args.seed,
            queries=args.queries,
            chaos_profile=args.chaos,
            chaos_seed=args.chaos_seed,
        )
        if args.paths:
            print()
        print(report.render())
        if not report.deterministic:
            exit_code = 1
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Simulation-aware static analysis + determinism smoke "
        "for the Bohr reproduction (rules R001-R008; see DESIGN.md).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
