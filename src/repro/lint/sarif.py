"""SARIF 2.1.0 output for CI annotation tooling.

One run, one driver (``repro.lint``), one result per finding.  Findings
accepted by the committed baseline are still emitted but carry a
``suppressions`` entry (kind ``external``), which SARIF consumers (e.g.
GitHub code scanning) render as reviewed/suppressed instead of failing
the check.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.lint.baseline import Baseline, normalize_path
from repro.lint.findings import Finding
from repro.lint.registry import STATIC_RULE_IDS, all_rules

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Titles for ids that are not per-file registry rules.
_EXTRA_RULE_TITLES = {
    "R000": "file could not be parsed",
    "W001": "pragma names an unknown rule id",
    "R009": "laundered wall-clock/global-RNG read reaches simulation code",
    "R010": "shared mutable state (cross-tenant hazard inventory)",
    "R011": "observer-reachable code mutates engine/wan/core state",
    "R012": "helper-returned set iterated order-sensitively at a call site",
}


def _rule_descriptors(rule_ids: Sequence[str]) -> List[Dict[str, object]]:
    titles: Dict[str, str] = dict(_EXTRA_RULE_TITLES)
    for rule in all_rules():
        titles[rule.rule_id] = rule.title
    return [
        {
            "id": rule_id,
            "shortDescription": {
                "text": titles.get(rule_id, rule_id),
            },
        }
        for rule_id in sorted(set(rule_ids) | set(STATIC_RULE_IDS))
    ]


def render_sarif(
    findings: Sequence[Finding],
    baseline: Optional[Baseline] = None,
    tool_version: str = "1.0",
) -> str:
    """Findings as a SARIF 2.1.0 JSON document (stable key order)."""
    results: List[Dict[str, object]] = []
    for finding in sorted(findings):
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "warning" if finding.rule_id == "W001" else "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": normalize_path(finding.path),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if baseline is not None:
            justification = baseline.justification_for(finding)
            if justification is not None:
                result["suppressions"] = [
                    {
                        "kind": "external",
                        "justification": justification,
                    }
                ]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "https://example.invalid/repro",
                        "version": tool_version,
                        "rules": _rule_descriptors(
                            [finding.rule_id for finding in findings]
                        ),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def write_sarif(
    findings: Sequence[Finding], path: str,
    baseline: Optional[Baseline] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_sarif(findings, baseline=baseline))
        handle.write("\n")
