"""Rule registry: rules declare an id, the node types they inspect, and a
``check`` method; :func:`register` adds one instance to the global pack.

Rules are stateless across files — per-file context (imports, parents,
source) lives on the :class:`~repro.lint.visitor.LintContext` handed to
``check``.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Tuple, Type

from repro.errors import LintError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.visitor import LintContext

_RULE_ID_RE = re.compile(r"^R\d{3}$")

#: Interprocedural pass ids (see :mod:`repro.lint.passes`).  Listed here
#: so pragma validation and reporters know the full rule-id space
#: without importing the whole-program graph machinery.
STATIC_RULE_IDS: Tuple[str, ...] = ("R009", "R010", "R011", "R012")

#: Pseudo ids emitted by the framework itself: R000 marks a file that
#: could not be parsed, W001 an unknown rule id inside a pragma.
META_RULE_IDS: Tuple[str, ...] = ("R000", "W001")


class LintRule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`node_types`
    and implement :meth:`check`, yielding ``(node, message)`` pairs for
    each violation found at ``node``.
    """

    rule_id: str = ""
    title: str = ""
    #: AST node classes this rule wants to see (dispatch filter).
    node_types: Tuple[Type[ast.AST], ...] = ()

    def check(
        self, node: ast.AST, context: "LintContext"
    ) -> Iterator[Tuple[ast.AST, str]]:
        raise NotImplementedError  # pragma: no cover - abstract

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.rule_id}>"


_RULES: Dict[str, LintRule] = {}


def register(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding one rule instance to the global pack."""
    rule = rule_class()
    if not _RULE_ID_RE.match(rule.rule_id):
        raise LintError(
            f"rule id {rule.rule_id!r} does not match the R### convention"
        )
    if rule.rule_id in _RULES:
        raise LintError(f"duplicate rule id {rule.rule_id}")
    if not rule.node_types:
        raise LintError(f"rule {rule.rule_id} declares no node types")
    _RULES[rule.rule_id] = rule
    return rule_class


def all_rules() -> List[LintRule]:
    """Every registered rule, in rule-id order."""
    import repro.lint.rules  # noqa: F401 - populate the registry

    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def known_rule_ids() -> "FrozenSet[str]":
    """Every id a pragma may legitimately reference."""
    return (
        frozenset(rule.rule_id for rule in all_rules())
        | frozenset(STATIC_RULE_IDS)
        | frozenset(META_RULE_IDS)
    )


def rules_for(selected: "List[str] | None" = None) -> List[LintRule]:
    """The rule pack, optionally narrowed to ``selected`` ids."""
    rules = all_rules()
    if selected is None:
        return rules
    known = {rule.rule_id for rule in rules}
    unknown = [rule_id for rule_id in selected if rule_id.upper() not in known]
    if unknown:
        raise LintError(
            f"unknown rule ids {sorted(unknown)}; known: {sorted(known)}"
        )
    wanted = {rule_id.upper() for rule_id in selected}
    return [rule for rule in rules if rule.rule_id in wanted]
