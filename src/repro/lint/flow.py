"""Fixed-point dataflow over the call graph.

Three small worklist engines cover everything the interprocedural passes
need, each keeping *provenance* so findings can print the offending call
chain instead of a bare verdict:

* :func:`taint_callers` — backward taint: a function is tainted when it
  contains a source directly or calls a tainted function.  Used by R009
  (wall-clock/RNG laundering) and R011 (impurity propagation).
* :func:`reachable_from` — forward reachability from a set of roots
  along call edges.  Used by R011 (what can observer code reach).
* :func:`propagate_property` — generic monotone boolean property over
  "returns a call to" style dependency edges.  Used by R012
  (set-returning helpers).

All engines terminate: the lattices are finite (a function is tainted or
not) and transfer functions are monotone, so each node changes state at
most once.  Cycles in the call graph are handled for free — a cycle
member that becomes tainted taints the rest of the cycle and the
worklist drains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.lint.graph import ProjectGraph


@dataclass(frozen=True)
class Taint:
    """Why one function is tainted.

    ``source`` is the human description of the root cause (e.g.
    ``"time.perf_counter()"``); ``via`` is the callee through which the
    taint arrived, ``None`` when this function contains the source
    itself.
    """

    source: str
    via: Optional[str]


def taint_callers(
    graph: ProjectGraph, direct: Mapping[str, str]
) -> Dict[str, Taint]:
    """Propagate taint from directly-tainted functions to all callers.

    ``direct`` maps function qualnames to a source description.  Returns
    every tainted function (including the seeds) with provenance.
    First-come provenance wins, which yields shortest-ish chains and
    guarantees the ``via`` pointers are acyclic.
    """
    tainted: Dict[str, Taint] = {
        qualname: Taint(source=desc, via=None)
        for qualname, desc in direct.items()
    }
    queue = deque(tainted)
    reverse = graph.reverse_edges
    while queue:
        callee = queue.popleft()
        for caller in reverse.get(callee, ()):
            if caller in tainted:
                continue
            tainted[caller] = Taint(
                source=tainted[callee].source, via=callee
            )
            queue.append(caller)
    return tainted


def taint_chain(tainted: Mapping[str, Taint], start: str,
                limit: int = 8) -> List[str]:
    """The call chain from ``start`` down to the taint source."""
    chain = [start]
    current = tainted.get(start)
    while current is not None and current.via is not None and len(chain) < limit:
        chain.append(current.via)
        current = tainted.get(current.via)
    return chain


def reachable_from(
    graph: ProjectGraph, roots: Iterable[str]
) -> Dict[str, Optional[str]]:
    """Functions reachable from ``roots`` along call edges.

    Returns ``function -> predecessor`` (``None`` for the roots), so a
    path back to a root can be reconstructed for finding messages.
    """
    reached: Dict[str, Optional[str]] = {}
    queue: deque = deque()
    for root in roots:
        if root not in reached:
            reached[root] = None
            queue.append(root)
    while queue:
        caller = queue.popleft()
        for callee in graph.edges.get(caller, ()):
            if callee in reached:
                continue
            reached[callee] = caller
            queue.append(callee)
    return reached


def reach_chain(reached: Mapping[str, Optional[str]], target: str,
                limit: int = 8) -> List[str]:
    """Path from a root to ``target`` (root first)."""
    chain = [target]
    current = reached.get(target)
    while current is not None and len(chain) < limit:
        chain.append(current)
        current = reached.get(current)
    chain.reverse()
    return chain


def propagate_property(
    seeds: Iterable[str], depends_on: Mapping[str, Set[str]]
) -> Set[str]:
    """Monotone boolean closure: ``f`` holds if seeded, or if any member
    of ``depends_on[f]`` holds.

    ``depends_on`` maps a function to the functions its property is
    derived from (e.g. "f returns the result of g" for R012).  Runs to a
    fixed point on arbitrary (cyclic) dependency graphs.
    """
    holds: Set[str] = set(seeds)
    # reverse dependency map: when g gains the property, recheck its users
    users: Dict[str, Set[str]] = {}
    for func, deps in depends_on.items():
        for dep in deps:
            users.setdefault(dep, set()).add(func)
    queue = deque(holds)
    while queue:
        gained = queue.popleft()
        for user in users.get(gained, ()):
            if user not in holds:
                holds.add(user)
                queue.append(user)
    return holds
