"""Project-graph construction: modules, re-exports, calls, resilience."""

import os
import textwrap

from repro.lint.graph import MODULE_FRAME, ProjectGraph, dotted_name, iter_frame

REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)


def _write_pkg(root, files):
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


class TestModuleTable:
    def test_package_dirs_get_dotted_names(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/impl.py": "def go():\n    return 1\n",
            "pkg/sub/__init__.py": "",
            "pkg/sub/leaf.py": "x = 1\n",
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert set(graph.modules) == {
            "pkg", "pkg.impl", "pkg.sub", "pkg.sub.leaf",
        }

    def test_loose_dir_modules_use_bare_names(self, tmp_path):
        _write_pkg(tmp_path, {"scripts/runner.py": "def main():\n    pass\n"})
        graph = ProjectGraph.build([str(tmp_path / "scripts")])
        assert "runner" in graph.modules

    def test_every_module_gets_a_module_frame(self, tmp_path):
        _write_pkg(tmp_path, {"pkg/__init__.py": "", "pkg/m.py": "x = 1\n"})
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert f"pkg.m.{MODULE_FRAME}" in graph.functions


class TestSymbolResolution:
    def test_reexport_chain_resolves_to_definition(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "from pkg.impl import Thing\n",
            "pkg/impl.py": (
                "class Thing:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
            ),
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert graph.resolve_symbol("pkg", "Thing") == (
            "class", "pkg.impl.Thing",
        )

    def test_star_import_reexports(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "from pkg.impl import *\n",
            "pkg/impl.py": "def helper():\n    return 1\n",
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert graph.resolve_symbol("pkg", "helper") == (
            "function", "pkg.impl.helper",
        )

    def test_import_cycle_resolves_without_hanging(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "from pkg.b import g\ndef f():\n    return g()\n",
            "pkg/b.py": "from pkg.a import f\ndef g():\n    return f()\n",
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert "pkg.b.g" in graph.edges.get("pkg.a.f", set())
        assert "pkg.a.f" in graph.edges.get("pkg.b.g", set())

    def test_self_referential_reexport_terminates(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "from pkg import missing\n",
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert graph.resolve_symbol("pkg", "nowhere") is None


class TestCallResolution:
    def test_cross_module_attribute_call(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": "def helper():\n    return 1\n",
            "pkg/app.py": (
                "import pkg.util\n"
                "def run():\n"
                "    return pkg.util.helper()\n"
            ),
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert "pkg.util.helper" in graph.edges["pkg.app.run"]

    def test_constructor_call_targets_init(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/impl.py": (
                "class Thing:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
                "def make():\n"
                "    return Thing()\n"
            ),
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert "pkg.impl.Thing.__init__" in graph.edges["pkg.impl.make"]

    def test_cls_call_in_classmethod_targets_init(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/impl.py": (
                "class Thing:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
                "    @classmethod\n"
                "    def default(cls):\n"
                "        return cls()\n"
            ),
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert "pkg.impl.Thing.__init__" in graph.edges[
            "pkg.impl.Thing.default"
        ]

    def test_builtin_container_method_wins_over_cha(self, tmp_path):
        # record.update(...) must not resolve to a project Ewma.update
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/impl.py": (
                "class Ewma:\n"
                "    def update(self, x):\n"
                "        self.value = x\n"
                "def snapshot():\n"
                "    record = {}\n"
                "    record.update(a=1)\n"
                "    return record\n"
            ),
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert "pkg.impl.Ewma.update" not in graph.edges.get(
            "pkg.impl.snapshot", set()
        )

    def test_subscript_store_does_not_make_receiver_local(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/impl.py": (
                "_TABLE = {}\n"
                "def put(key, value):\n"
                "    _TABLE[key] = value\n"
            ),
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        info = graph.functions["pkg.impl.put"]
        assert "_TABLE" not in info.local_names

    def test_parse_failure_recorded_and_build_continues(self, tmp_path):
        _write_pkg(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/ok.py": "def fine():\n    return 1\n",
            "pkg/bad.py": "def broken(:\n",
        })
        graph = ProjectGraph.build([str(tmp_path / "pkg")])
        assert "pkg.ok.fine" in graph.functions
        assert [f.rule_id for f in graph.parse_failures] == ["R000"]


class TestIterFrame:
    def test_nested_def_bodies_are_excluded(self):
        import ast

        tree = ast.parse(
            "def outer():\n"
            "    a = 1\n"
            "    def inner():\n"
            "        b = 2\n"
            "    return inner\n"
        )
        outer = tree.body[0]
        names = [
            node.id for node in iter_frame(outer.body)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
        ]
        assert "a" in names and "b" not in names

    def test_dotted_name_resolves_aliases(self):
        import ast

        node = ast.parse("np.random.default_rng()").body[0].value.func
        assert dotted_name(node, {"np": "numpy"}) == "numpy.random.default_rng"


class TestRealTree:
    """The acceptance bar: the analyzer must understand this repository."""

    def _graph(self):
        return ProjectGraph.build([
            os.path.join(REPO_ROOT, "src", "repro"),
            os.path.join(REPO_ROOT, "benchmarks"),
        ])

    def test_resolution_rate_at_least_95_percent(self):
        stats = self._graph().stats
        assert stats.total > 3000
        assert stats.rate >= 0.95, (
            f"resolution rate {stats.rate:.1%} below the 95% floor "
            f"({stats.unresolved}/{stats.total} unresolved)"
        )

    def test_shipped_tree_parses_completely(self):
        assert self._graph().parse_failures == []

    def test_describe_reports_rate_and_unresolved(self):
        report = self._graph().describe()
        assert "resolution rate" in report
        assert "unresolved" in report
