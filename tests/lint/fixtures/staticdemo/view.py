"""The fixture's "observer" package — must be a pure reader of sim state."""

from staticdemo.sim import Engine


def render(engine: Engine) -> str:
    return f"ticks={engine.ticks}"


def sample(engine: Engine) -> int:
    # R011: an observer-reachable function writing a protected object's
    # attribute — per-file rules have no notion of roles or reachability.
    engine.ticks = engine.ticks + 0
    return engine.ticks


def refresh(engine: Engine) -> None:
    # R011 crossing edge: calling a protected mutator is as impure as
    # writing the attribute directly.
    engine.advance()
