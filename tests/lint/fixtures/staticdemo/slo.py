"""A second observer module shaped like an SLO/critical-path analyzer.

Mirrors the real ``repro.obs.slo`` / ``repro.obs.critpath`` surface: it
folds engine state into a summary.  The seeded violation is the classic
analyzer sin — "normalizing" the thing it is measuring — which only the
whole-program R011 pass can see (per-file rules have no roles).
"""

from staticdemo.sim import Engine


def burn_rate(engine: Engine, budget: float) -> float:
    return engine.ticks / budget if budget else 0.0


def fold_sample(engine: Engine) -> float:
    sample = engine.transferred_mb
    # R011: an "observer" resetting a protected counter after reading it
    # — the archive it feeds would no longer match a telemetry-off run.
    engine.transferred_mb = 0.0
    return sample
