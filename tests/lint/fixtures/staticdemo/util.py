"""Helpers that launder hazards across module boundaries."""

import numpy as np

#: R010 demo: module-level mutable container mutated from a function
#: frame below — the per-file rules never look at module state.
_MEMO = {}


def jitter() -> float:
    """R009 demo: an *unseeded* Generator is nondeterministic, but the
    syntactic R002 only knows the legacy global-state numpy API."""
    rng = np.random.default_rng()
    return float(rng.random())


def remember(key: str, value: float) -> float:
    _MEMO[key] = value
    return value


def active_sites():
    """R012 demo: returns an unordered set; order-sensitive iteration at
    the *call site* is a hash-seed dependency R003 cannot see."""
    return {"tokyo", "dublin", "oregon"}


def site_view():
    """R012 propagation demo: returns whatever active_sites() returns."""
    return active_sites()
