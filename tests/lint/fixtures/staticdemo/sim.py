"""The fixture's "simulation" package (sim + protected role)."""

from staticdemo.util import active_sites, jitter, remember, site_view


class Engine:
    """Protected object: observers must never write its attributes."""

    def __init__(self) -> None:
        self.ticks = 0
        self.transferred_mb = 0.0

    def advance(self) -> None:
        self.ticks += 1


def schedule_delay(query: str) -> float:
    # R009: jitter() draws from an unseeded generator two frames away —
    # this line is clean to every per-file rule.
    delay = jitter()
    return remember(query, delay)


def total_transfer() -> float:
    total = 0.0
    # R012: active_sites() returns a set; float accumulation order now
    # depends on the process hash seed.
    for site in active_sites():
        total += len(site) * 0.5
    return total


def transfer_labels() -> list:
    # R012 through one propagation hop (site_view -> active_sites).
    return [site.upper() for site in site_view()]
