"""Seeded violations for the whole-program passes R009-R012.

Every hazard in this package is *invisible* to the per-file rules
(R001-R008) because it crosses a function or module boundary; the tests
in ``tests/lint/test_static_passes.py`` assert exactly that — per-file
lint of ``sim.py``/``view.py`` is clean while the interprocedural passes
flag each one.  Roles are rebound in the tests: ``staticdemo.sim`` plays
the sim + protected package, ``staticdemo.view`` plays the observer.
"""
