"""Deliberately unparseable: exercises the R000 parse-failure path."""

def half_finished(:
    return 1
