"""Pragma parsing and per-line suppression."""

from repro.lint import lint_source
from repro.lint.pragmas import is_suppressed, parse_pragmas


class TestParsePragmas:
    def test_single_rule(self):
        pragmas = parse_pragmas("x = 1  # lint: allow[R001]\n")
        assert pragmas == {1: frozenset({"R001"})}

    def test_multiple_rules_one_line(self):
        pragmas = parse_pragmas("x = 1  # lint: allow[R001, R004]\n")
        assert pragmas[1] == frozenset({"R001", "R004"})

    def test_wildcard(self):
        pragmas = parse_pragmas("x = 1  # lint: allow[*]\n")
        assert is_suppressed(pragmas, 1, "R999")

    def test_lines_are_one_based(self):
        pragmas = parse_pragmas("a = 1\nb = 2  # lint: allow[R002]\n")
        assert list(pragmas) == [2]

    def test_trailing_prose_allowed(self):
        pragmas = parse_pragmas(
            "x = t.time()  # lint: allow[R001] — offline prep cost\n"
        )
        assert is_suppressed(pragmas, 1, "R001")

    def test_plain_comment_is_not_a_pragma(self):
        assert parse_pragmas("x = 1  # allow anything here\n") == {}


class TestSuppression:
    def test_pragma_silences_finding_on_its_line(self):
        source = "import time\nt = time.time()  # lint: allow[R001]\n"
        assert lint_source(source) == []

    def test_pragma_for_other_rule_does_not_silence(self):
        source = "import time\nt = time.time()  # lint: allow[R002]\n"
        assert [f.rule_id for f in lint_source(source)] == ["R001"]

    def test_pragma_on_other_line_does_not_silence(self):
        source = (
            "import time\n"
            "# lint: allow[R001]\n"
            "t = time.time()\n"
        )
        assert [f.rule_id for f in lint_source(source)] == ["R001"]

    def test_wildcard_silences_everything_on_line(self):
        source = "import random  # lint: allow[*]\nimport time\n"
        assert lint_source(source) == []

    def test_multiple_rules_one_pragma_silence_both(self):
        source = (
            "import time\n"
            "import random\n"
            "x = [time.time(), random.random()]  # lint: allow[R001, R002]\n"
        )
        assert [f.rule_id for f in lint_source(source)] == ["R002"]  # import

    def test_pragma_on_continuation_line_of_expression(self):
        # The flagged expression spans lines 3-5; the pragma sits on the
        # closing line, the finding anchors at the opening one.
        source = (
            "import time\n"
            "x = (\n"
            "    time.time()\n"
            "    + 1\n"
            ")  # lint: allow[R001]\n"
        )
        assert lint_source(source) == []

    def test_pragma_on_opening_line_of_expression(self):
        source = (
            "import time\n"
            "x = (  # lint: allow[R001]\n"
            "    time.time()\n"
            ")\n"
        )
        assert lint_source(source) == []

    def test_pragma_outside_expression_span_does_not_silence(self):
        source = (
            "import time\n"
            "# lint: allow[R001]\n"
            "x = (\n"
            "    time.time()\n"
            ")\n"
        )
        assert [f.rule_id for f in lint_source(source)] == ["R001"]


class TestUnknownRuleIds:
    def test_unknown_rule_id_warns_w001(self):
        findings = lint_source("x = 1  # lint: allow[R999]\n")
        assert [f.rule_id for f in findings] == ["W001"]
        assert "R999" in findings[0].message

    def test_known_static_rule_id_does_not_warn(self):
        assert lint_source("x = 1  # lint: allow[R009]\n") == []

    def test_wildcard_does_not_warn(self):
        assert lint_source("x = 1  # lint: allow[*]\n") == []

    def test_typo_still_reports_the_unsuppressed_finding(self):
        source = "import time\nx = time.time()  # lint: allow[R01]\n"
        rule_ids = sorted(f.rule_id for f in lint_source(source))
        assert rule_ids == ["R001", "W001"]
