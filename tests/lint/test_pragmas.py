"""Pragma parsing and per-line suppression."""

from repro.lint import lint_source
from repro.lint.pragmas import is_suppressed, parse_pragmas


class TestParsePragmas:
    def test_single_rule(self):
        pragmas = parse_pragmas("x = 1  # lint: allow[R001]\n")
        assert pragmas == {1: frozenset({"R001"})}

    def test_multiple_rules_one_line(self):
        pragmas = parse_pragmas("x = 1  # lint: allow[R001, R004]\n")
        assert pragmas[1] == frozenset({"R001", "R004"})

    def test_wildcard(self):
        pragmas = parse_pragmas("x = 1  # lint: allow[*]\n")
        assert is_suppressed(pragmas, 1, "R999")

    def test_lines_are_one_based(self):
        pragmas = parse_pragmas("a = 1\nb = 2  # lint: allow[R002]\n")
        assert list(pragmas) == [2]

    def test_trailing_prose_allowed(self):
        pragmas = parse_pragmas(
            "x = t.time()  # lint: allow[R001] — offline prep cost\n"
        )
        assert is_suppressed(pragmas, 1, "R001")

    def test_plain_comment_is_not_a_pragma(self):
        assert parse_pragmas("x = 1  # allow anything here\n") == {}


class TestSuppression:
    def test_pragma_silences_finding_on_its_line(self):
        source = "import time\nt = time.time()  # lint: allow[R001]\n"
        assert lint_source(source) == []

    def test_pragma_for_other_rule_does_not_silence(self):
        source = "import time\nt = time.time()  # lint: allow[R002]\n"
        assert [f.rule_id for f in lint_source(source)] == ["R001"]

    def test_pragma_on_other_line_does_not_silence(self):
        source = (
            "import time\n"
            "# lint: allow[R001]\n"
            "t = time.time()\n"
        )
        assert [f.rule_id for f in lint_source(source)] == ["R001"]

    def test_wildcard_silences_everything_on_line(self):
        source = "import random  # lint: allow[*]\nimport time\n"
        assert lint_source(source) == []
