"""Fixed-point engines: taint, reachability, property closure."""

from repro.lint.flow import (
    Taint,
    propagate_property,
    reach_chain,
    reachable_from,
    taint_callers,
    taint_chain,
)


class _StubGraph:
    """The two views flow.py consumes, hand-built per test."""

    def __init__(self, edges):
        self.edges = {k: set(v) for k, v in edges.items()}
        reverse = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        self.reverse_edges = reverse


class TestTaintCallers:
    def test_taint_flows_to_transitive_callers(self):
        graph = _StubGraph({"a": {"b"}, "b": {"c"}, "c": set()})
        tainted = taint_callers(graph, {"c": "wall-clock read"})
        assert set(tainted) == {"a", "b", "c"}
        assert tainted["a"].source == "wall-clock read"
        assert tainted["c"].via is None

    def test_untainted_branch_stays_clean(self):
        graph = _StubGraph({"a": {"b"}, "x": {"y"}})
        tainted = taint_callers(graph, {"b": "src"})
        assert "x" not in tainted and "y" not in tainted

    def test_cycle_terminates_and_taints_all_members(self):
        graph = _StubGraph({"a": {"b"}, "b": {"a", "c"}, "c": set()})
        tainted = taint_callers(graph, {"c": "src"})
        assert set(tainted) == {"a", "b", "c"}

    def test_chain_reconstructs_provenance(self):
        graph = _StubGraph({"a": {"b"}, "b": {"c"}})
        tainted = taint_callers(graph, {"c": "src"})
        assert taint_chain(tainted, "a") == ["a", "b", "c"]

    def test_chain_respects_limit(self):
        edges = {f"f{i}": {f"f{i + 1}"} for i in range(20)}
        graph = _StubGraph(edges)
        tainted = taint_callers(graph, {"f20": "src"})
        assert len(taint_chain(tainted, "f0", limit=5)) == 5

    def test_provenance_via_pointers_are_acyclic(self):
        graph = _StubGraph({"a": {"b"}, "b": {"a"}})
        tainted = taint_callers(graph, {"a": "src"})
        seen = set()
        current = "b"
        while current is not None:
            assert current not in seen
            seen.add(current)
            current = tainted[current].via

    def test_taint_dataclass_is_frozen(self):
        taint = Taint(source="s", via=None)
        assert taint == Taint(source="s", via=None)


class TestReachableFrom:
    def test_roots_have_no_predecessor(self):
        graph = _StubGraph({"r": {"a"}})
        reached = reachable_from(graph, ["r"])
        assert reached["r"] is None and reached["a"] == "r"

    def test_unreachable_functions_absent(self):
        graph = _StubGraph({"r": {"a"}, "z": {"q"}})
        reached = reachable_from(graph, ["r"])
        assert "z" not in reached and "q" not in reached

    def test_cycle_terminates(self):
        graph = _StubGraph({"r": {"a"}, "a": {"r"}})
        assert set(reachable_from(graph, ["r"])) == {"r", "a"}

    def test_reach_chain_runs_root_first(self):
        graph = _StubGraph({"r": {"a"}, "a": {"b"}})
        reached = reachable_from(graph, ["r"])
        assert reach_chain(reached, "b") == ["r", "a", "b"]


class TestPropagateProperty:
    def test_property_climbs_dependency_edges(self):
        holds = propagate_property(["base"], {"wrap": {"base"},
                                              "outer": {"wrap"}})
        assert holds == {"base", "wrap", "outer"}

    def test_cyclic_dependencies_terminate(self):
        holds = propagate_property(["a"], {"a": {"b"}, "b": {"a"}})
        assert holds == {"a", "b"}

    def test_no_seed_means_nothing_holds(self):
        assert propagate_property([], {"a": {"b"}}) == set()
