"""Framework-level tests: registry, findings, reporters, driver, CLI, meta."""

import json
import os

import pytest

from repro.errors import LintError
from repro.lint import (
    all_rules,
    collect_files,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    rules_for,
)
from repro.lint.findings import Finding

REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)


class TestRegistry:
    def test_all_rules_registered(self):
        ids = sorted(rule.rule_id for rule in all_rules())
        assert ids == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
        ]

    def test_rules_for_none_returns_all(self):
        assert len(rules_for(None)) == len(all_rules())

    def test_rules_for_unknown_id_raises(self):
        with pytest.raises(LintError):
            rules_for(["R999"])

    def test_rules_have_titles_and_node_types(self):
        for rule in all_rules():
            assert rule.title
            assert rule.node_types


class TestFinding:
    def test_render_is_clickable_location(self):
        finding = Finding(path="a.py", line=3, col=4, rule_id="R004",
                          message="exact float comparison")
        assert finding.render() == "a.py:3:4: R004 exact float comparison"

    def test_sort_order_is_by_location(self):
        early = Finding(path="a.py", line=1, col=0, rule_id="R006", message="m")
        late = Finding(path="a.py", line=9, col=0, rule_id="R001", message="m")
        assert sorted([late, early]) == [early, late]

    def test_to_dict_round_trips_fields(self):
        finding = Finding(path="a.py", line=3, col=4, rule_id="R004", message="m")
        assert finding.to_dict() == {
            "path": "a.py", "line": 3, "col": 4, "rule_id": "R004",
            "message": "m",
        }


class TestReporters:
    def _findings(self):
        return lint_source("import random\nimport random\n", path="bad.py")

    def test_text_report_counts_by_rule(self):
        text = render_text(self._findings(), files_checked=1)
        assert "bad.py:1:" in text
        assert "R002×2" in text
        assert "2 findings" in text

    def test_text_report_clean(self):
        assert render_text([], files_checked=7) == "clean: 0 findings in 7 files"

    def test_json_report_is_parseable_and_stable(self):
        payload = json.loads(render_json(self._findings(), files_checked=1))
        assert payload["files_checked"] == 1
        assert [f["rule_id"] for f in payload["findings"]] == ["R002", "R002"]


class TestDriver:
    def test_collect_files_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "ok.cpython-311.py").write_text("x = 1\n")
        assert collect_files([str(tmp_path)]) == [str(tmp_path / "ok.py")]

    def test_collect_files_missing_path_raises(self):
        with pytest.raises(LintError):
            collect_files(["/no/such/dir"])

    def test_lint_paths_reports_findings_with_real_paths(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        findings, files_checked = lint_paths([str(tmp_path)])
        assert files_checked == 1
        assert findings[0].path == str(bad)
        assert findings[0].rule_id == "R002"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        from repro.lint.cli import main

        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        from repro.lint.cli import main

        (tmp_path / "bad.py").write_text("import random\n")
        assert main([str(tmp_path)]) == 1
        assert "R002" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        from repro.lint.cli import main

        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule_id"] == "R002"

    def test_no_paths_no_determinism_raises(self):
        from repro.lint.cli import main

        with pytest.raises(LintError):
            main([])

    def test_repro_cli_exposes_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out


class TestParseResilience:
    """One broken file must not abort a whole lint run (rule R000)."""

    def test_syntax_error_becomes_r000_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert [f.rule_id for f in findings] == ["R000"]
        assert "parse failure" in findings[0].message

    def test_nul_byte_becomes_r000_finding(self):
        findings = lint_source("x = 1\0\n", path="bad.py")
        assert [f.rule_id for f in findings] == ["R000"]

    def test_run_continues_past_broken_file(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "still_checked.py").write_text("import random\n")
        findings, files_checked = lint_paths([str(tmp_path)])
        assert files_checked == 2
        assert sorted(f.rule_id for f in findings) == ["R000", "R002"]

    def test_cli_reports_broken_file_and_exits_one(self, tmp_path, capsys):
        from repro.lint.cli import main

        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 1
        assert "R000" in capsys.readouterr().out

    def test_fixture_broken_file_is_actually_broken(self):
        fixture = os.path.join(
            os.path.dirname(__file__), "fixtures", "broken.py"
        )
        with open(fixture, encoding="utf-8") as handle:
            findings = lint_source(handle.read(), path=fixture)
        assert [f.rule_id for f in findings] == ["R000"]


class TestMetaSelfLint:
    """The shipped tree must satisfy its own linter (CI gate)."""

    def test_src_repro_is_clean(self):
        findings, files_checked = lint_paths(
            [os.path.join(REPO_ROOT, "src", "repro")]
        )
        assert files_checked > 50
        assert findings == []

    def test_benchmarks_are_clean(self):
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        if not os.path.isdir(bench_dir):
            pytest.skip("no benchmarks directory")
        findings, _ = lint_paths([bench_dir])
        assert findings == []
