"""SARIF 2.1.0 rendering: structure, locations, baseline suppressions."""

import json

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import Finding
from repro.lint.sarif import render_sarif, write_sarif


def _finding(**overrides):
    base = dict(path="src/repro/x.py", line=3, col=4, rule_id="R010",
                message="shared mutable state")
    base.update(overrides)
    return Finding(**base)


class TestRenderSarif:
    def _run(self, findings, baseline=None):
        return json.loads(render_sarif(findings, baseline=baseline))["runs"][0]

    def test_document_shape(self):
        document = json.loads(render_sarif([_finding()]))
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["tool"]["driver"]["name"] == "repro.lint"

    def test_result_location_is_one_based(self):
        result = self._run([_finding()])["results"][0]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 5  # col 4 zero-based

    def test_paths_normalized_for_ci(self):
        result = self._run([_finding(path="/ci/repo/src/repro/x.py")])
        uri = result["results"][0]["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        assert uri == "src/repro/x.py"

    def test_rule_descriptors_cover_static_rules(self):
        driver = self._run([_finding()])["tool"]["driver"]
        ids = {rule["id"] for rule in driver["rules"]}
        assert {"R009", "R010", "R011", "R012"} <= ids

    def test_w001_is_warning_level(self):
        result = self._run([_finding(rule_id="W001")])["results"][0]
        assert result["level"] == "warning"

    def test_baseline_finding_carries_suppression(self):
        baseline = Baseline([BaselineEntry(
            path="src/repro/x.py", rule_id="R010",
            message="shared mutable state", justification="audited",
        )])
        results = self._run([_finding()], baseline=baseline)["results"]
        assert results[0]["suppressions"][0]["justification"] == "audited"

    def test_new_finding_has_no_suppression(self):
        baseline = Baseline([])
        results = self._run([_finding()], baseline=baseline)["results"]
        assert "suppressions" not in results[0]

    def test_write_sarif_emits_valid_json(self, tmp_path):
        target = tmp_path / "lint.sarif"
        write_sarif([_finding()], str(target))
        assert json.loads(target.read_text())["version"] == "2.1.0"
