"""Interprocedural passes R009-R012 against the seeded fixture package.

The fixture (``tests/lint/fixtures/staticdemo``) holds one violation per
pass, each engineered to be invisible to the per-file rules — that
invisibility is asserted here too, since it is the whole point of the
whole-program layer.
"""

import json
import os
import textwrap

import pytest

from repro.errors import LintError
from repro.lint import lint_paths
from repro.lint.graph import ProjectGraph
from repro.lint.passes import (
    ProjectRoles,
    build_inventory,
    r010_message,
    run_static_passes,
    write_shared_state,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "staticdemo")

ROLES = ProjectRoles(
    sim=("staticdemo.sim",),
    observer=("staticdemo.view", "staticdemo.slo"),
    protected=("staticdemo.sim",),
)


@pytest.fixture(scope="module")
def demo():
    graph = ProjectGraph.build([FIXTURE])
    findings, inventory = run_static_passes(graph, roles=ROLES)
    return graph, findings, inventory


def _rule_files(findings, rule_id):
    return sorted(
        os.path.basename(f.path) for f in findings if f.rule_id == rule_id
    )


class TestFixtureDemos:
    def test_per_file_rules_miss_every_seeded_violation(self):
        findings, _ = lint_paths([FIXTURE])
        assert findings == []

    def test_r009_flags_laundered_unseeded_generator(self, demo):
        _, findings, _ = demo
        assert _rule_files(findings, "R009") == ["sim.py"]
        (finding,) = [f for f in findings if f.rule_id == "R009"]
        assert "unseeded numpy.random.default_rng()" in finding.message
        assert "staticdemo.util.jitter" in finding.message

    def test_r010_inventories_module_cache(self, demo):
        _, findings, inventory = demo
        assert _rule_files(findings, "R010") == ["util.py"]
        entry = next(e for e in inventory if e.name == "_MEMO")
        assert entry.mutated and entry.kind == "module-global"
        assert any("util.py" in site for site in entry.mutation_sites)

    def test_r011_flags_both_write_styles(self, demo):
        _, findings, _ = demo
        r011 = [f for f in findings if f.rule_id == "R011"]
        assert _rule_files(r011, "R011") == ["slo.py", "view.py", "view.py"]
        messages = " | ".join(f.message for f in r011)
        assert "writes attribute" in messages          # sample()
        assert "calls an engine/wan/core mutator" in messages  # refresh()

    def test_r011_covers_analyzer_shaped_observer(self, demo):
        # The slo.py fixture mirrors repro.obs.slo/critpath: a summary
        # module that "normalizes" the engine state it measures.  R011
        # must flag the reset but leave the pure burn_rate reader alone.
        _, findings, _ = demo
        (finding,) = [
            f for f in findings
            if f.rule_id == "R011" and f.path.endswith("slo.py")
        ]
        assert "writes attribute" in finding.message
        assert "fold_sample" in finding.message

    def test_default_roles_cover_new_obs_modules(self):
        # The real role map already marks every repro.obs module as an
        # observer, so the new analyzers are R011-protected by default.
        from repro.lint.passes import DEFAULT_ROLES

        for module in ("repro.obs.critpath", "repro.obs.slo"):
            assert any(
                module.startswith(prefix)
                for prefix in DEFAULT_ROLES.observer
            )

    def test_r011_pure_reader_not_flagged(self, demo):
        _, findings, _ = demo
        assert not any(
            f.rule_id == "R011" and f.line <= 8 for f in findings
        ), "render() only reads engine state"

    def test_r012_flags_loop_and_propagated_comprehension(self, demo):
        _, findings, _ = demo
        r012 = sorted(f for f in findings if f.rule_id == "R012")
        assert len(r012) == 2
        assert "active_sites()" in r012[0].message
        assert "site_view()" in r012[1].message


class TestPassMechanics:
    def test_select_runs_only_named_passes(self, demo):
        graph, _, _ = demo
        findings, _ = run_static_passes(graph, roles=ROLES, select=["R012"])
        assert {f.rule_id for f in findings} == {"R012"}

    def test_select_unknown_id_raises(self, demo):
        graph, _, _ = demo
        with pytest.raises(LintError):
            run_static_passes(graph, roles=ROLES, select=["R099"])

    def test_inventory_returned_even_when_r010_deselected(self, demo):
        graph, _, _ = demo
        _, inventory = run_static_passes(graph, roles=ROLES, select=["R009"])
        assert any(e.name == "_MEMO" for e in inventory)

    def test_pragma_suppresses_static_finding(self, tmp_path):
        pkg = tmp_path / "demo"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "util.py").write_text(textwrap.dedent(
            """\
            import numpy as np
            def jitter():
                rng = np.random.default_rng()  # lint: allow[R009]
                return float(rng.random())
            """
        ))
        (pkg / "sim.py").write_text(
            "from demo.util import jitter\n"
            "def delay():\n"
            "    return jitter()\n"
        )
        graph = ProjectGraph.build([str(pkg)])
        roles = ProjectRoles(sim=("demo.sim",), observer=(), protected=())
        findings, _ = run_static_passes(graph, roles=roles)
        assert findings == []

    def test_import_time_table_building_is_not_a_mutation(self, tmp_path):
        pkg = tmp_path / "demo"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "table.py").write_text(
            "_TABLE = {}\n"
            "for key in ('a', 'b'):\n"
            "    _TABLE[key] = len(key)\n"
        )
        graph = ProjectGraph.build([str(pkg)])
        entry = next(
            e for e in build_inventory(graph) if e.name == "_TABLE"
        )
        assert not entry.mutated


class TestSharedStateExport:
    def test_write_shared_state_round_trips(self, demo, tmp_path):
        _, _, inventory = demo
        out = tmp_path / "shared_state.json"
        count = write_shared_state(inventory, str(out))
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert count == len(payload["entries"]) == len(inventory)

    def test_baseline_justification_joined_in(self, demo, tmp_path):
        from repro.lint.baseline import Baseline, BaselineEntry

        _, _, inventory = demo
        entry = next(e for e in inventory if e.name == "_MEMO")
        baseline = Baseline([BaselineEntry(
            path=entry.path, rule_id="R010",
            message=r010_message(entry),
            justification="demo fixture cache",
        )])
        out = tmp_path / "shared_state.json"
        write_shared_state(inventory, str(out), baseline=baseline)
        payload = json.loads(out.read_text())
        memo = next(
            e for e in payload["entries"] if e["name"] == "_MEMO"
        )
        assert memo["justification"] == "demo fixture cache"


class TestRealTreeStaticClean:
    """Meta self-check: the shipped tree vs the committed baseline."""

    REPO_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)

    def test_static_passes_match_baseline_exactly(self):
        from repro.lint.baseline import Baseline

        graph = ProjectGraph.build([
            os.path.join(self.REPO_ROOT, "src", "repro"),
            os.path.join(self.REPO_ROOT, "benchmarks"),
        ])
        findings, _ = run_static_passes(graph)
        baseline = Baseline.load(
            os.path.join(self.REPO_ROOT, "lint-baseline.json")
        )
        diff = baseline.check(findings)
        assert diff.new == [], "\n".join(f.render() for f in diff.new)
        assert diff.stale == [], diff.render()
