"""Baseline load/check/write semantics and path normalization."""

import json

import pytest

from repro.errors import LintError
from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    normalize_path,
    write_baseline,
)
from repro.lint.findings import Finding


def _finding(path="src/repro/x.py", rule_id="R010", message="m", line=3):
    return Finding(path=path, line=line, col=0, rule_id=rule_id,
                   message=message)


def _write(tmp_path, payload):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps(payload))
    return str(target)


class TestNormalizePath:
    def test_absolute_path_anchors_at_src(self):
        assert normalize_path("/home/ci/repo/src/repro/x.py") == (
            "src/repro/x.py"
        )

    def test_dotdot_segments_collapse_before_anchoring(self):
        assert normalize_path("tests/lint/../../src/repro/x.py") == (
            "src/repro/x.py"
        )

    def test_backslashes_normalize(self):
        assert normalize_path("src\\repro\\x.py") == "src/repro/x.py"

    def test_unanchored_path_kept_as_is(self):
        assert normalize_path("./scripts/run.py") == "scripts/run.py"


class TestLoad:
    def _payload(self, justification="audited: reset hook clears it"):
        return {
            "version": 1,
            "findings": [{
                "path": "src/repro/x.py", "rule_id": "R010",
                "message": "m", "justification": justification,
            }],
        }

    def test_round_trip(self, tmp_path):
        baseline = Baseline.load(_write(tmp_path, self._payload()))
        assert baseline.justification_for(_finding()) == (
            "audited: reset hook clears it"
        )

    def test_wrong_version_rejected(self, tmp_path):
        payload = self._payload()
        payload["version"] = 99
        with pytest.raises(LintError):
            Baseline.load(_write(tmp_path, payload))

    def test_missing_fields_rejected(self, tmp_path):
        payload = {"version": 1, "findings": [{"path": "x.py"}]}
        with pytest.raises(LintError):
            Baseline.load(_write(tmp_path, payload))

    def test_todo_justification_rejected_strict(self, tmp_path):
        path = _write(tmp_path, self._payload("TODO: justify or fix"))
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_empty_justification_rejected_strict(self, tmp_path):
        path = _write(tmp_path, self._payload("  "))
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_lenient_load_keeps_todo_entries(self, tmp_path):
        path = _write(tmp_path, self._payload("TODO: justify or fix"))
        baseline = Baseline.load(path, strict=False)
        assert len(baseline.entries) == 1

    def test_invalid_json_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{not json")
        with pytest.raises(LintError):
            Baseline.load(str(target))


class TestCheck:
    def _baseline(self):
        return Baseline([BaselineEntry(
            path="src/repro/x.py", rule_id="R010", message="m",
            justification="why",
        )])

    def test_known_finding_suppressed(self):
        diff = self._baseline().check([_finding()])
        assert diff.new == [] and len(diff.known) == 1 and diff.stale == []

    def test_line_number_changes_do_not_invalidate(self):
        diff = self._baseline().check([_finding(line=999)])
        assert diff.new == []

    def test_absolute_path_matches_relative_entry(self):
        diff = self._baseline().check(
            [_finding(path="/ci/checkout/src/repro/x.py")]
        )
        assert diff.new == []

    def test_new_finding_reported(self):
        diff = self._baseline().check([_finding(message="different")])
        assert len(diff.new) == 1

    def test_fixed_finding_reported_stale(self):
        diff = self._baseline().check([])
        assert len(diff.stale) == 1
        assert "stale" in diff.render()


class TestWrite:
    def test_new_entries_get_todo_marker(self, tmp_path):
        target = tmp_path / "baseline.json"
        count = write_baseline([_finding()], str(target))
        assert count == 1
        payload = json.loads(target.read_text())
        assert payload["findings"][0]["justification"].startswith("TODO")

    def test_written_todo_baseline_fails_strict_load(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline([_finding()], str(target))
        with pytest.raises(LintError):
            Baseline.load(str(target))

    def test_existing_justifications_carried_over(self, tmp_path):
        target = tmp_path / "baseline.json"
        previous = Baseline([BaselineEntry(
            path="src/repro/x.py", rule_id="R010", message="m",
            justification="kept",
        )])
        write_baseline([_finding()], str(target), previous=previous)
        payload = json.loads(target.read_text())
        assert payload["findings"][0]["justification"] == "kept"

    def test_duplicate_findings_deduplicate(self, tmp_path):
        target = tmp_path / "baseline.json"
        count = write_baseline([_finding(line=1), _finding(line=2)],
                               str(target))
        assert count == 1


class TestCommittedBaseline:
    def test_repo_baseline_loads_strict(self):
        import os

        repo_root = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir
        )
        baseline = Baseline.load(
            os.path.join(repo_root, "lint-baseline.json")
        )
        assert all(
            entry.justification and
            not entry.justification.upper().startswith("TODO")
            for entry in baseline.entries.values()
        )
