"""Two-run determinism check: digest mechanics plus an end-to-end smoke."""

from repro.lint.determinism import run_determinism_check, trace_digest
from repro.obs.span import Span


def _span(**overrides):
    base = dict(
        span_id=1, name="map", stage="engine", parent_id=None,
        sim_start=0.0, sim_end=2.5,
        attrs={"bytes": 1024, "wall_seconds": 0.001},
    )
    base.update(overrides)
    return Span(**base)


class TestTraceDigest:
    def test_wall_attrs_do_not_affect_digest(self):
        fast = _span(attrs={"bytes": 1024, "wall_seconds": 0.001})
        slow = _span(attrs={"bytes": 1024, "wall_seconds": 7.5})
        assert trace_digest([fast]) == trace_digest([slow])

    def test_rdd_overhead_seconds_excluded(self):
        a = _span(attrs={"rdd_overhead_seconds": 0.1})
        b = _span(attrs={"rdd_overhead_seconds": 0.9})
        assert trace_digest([a]) == trace_digest([b])

    def test_sim_content_changes_digest(self):
        assert trace_digest([_span(sim_end=2.5)]) != trace_digest(
            [_span(sim_end=3.5)]
        )
        assert trace_digest([_span(attrs={"bytes": 1})]) != trace_digest(
            [_span(attrs={"bytes": 2})]
        )

    def test_span_order_matters(self):
        first = _span(name="map")
        second = _span(name="reduce", span_id=2)
        assert trace_digest([first, second]) != trace_digest([second, first])


class TestEndToEnd:
    def test_same_seed_twice_is_deterministic(self):
        report = run_determinism_check(
            scheme="bohr", workload="bigdata-aggregation", seed=11, queries=1
        )
        assert report.deterministic
        assert report.trace_digests[0] == report.trace_digests[1]
        assert report.result_digests[0] == report.result_digests[1]
        assert report.telemetry_digests[0] == report.telemetry_digests[1]
        assert report.telemetry_digests[0] != ""
        assert report.spans > 0
        assert report.telemetry_events > 0
        assert "DETERMINISTIC" in report.render()
        assert "telemetry digests" in report.render()

    def test_different_seeds_differ(self):
        a = run_determinism_check(scheme="iridium", seed=11, queries=1)
        b = run_determinism_check(scheme="iridium", seed=12, queries=1)
        assert a.deterministic and b.deterministic
        assert a.result_digests[0] != b.result_digests[0]
