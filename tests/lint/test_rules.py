"""Fixture-backed tests for every lint rule: known-bad fires, known-good stays silent."""

import textwrap

from repro.lint import lint_source


def _rule_ids(source, select=None):
    return [f.rule_id for f in lint_source(textwrap.dedent(source), select=select)]


class TestR001WallClock:
    def test_time_time_fires(self):
        assert _rule_ids("import time\nt = time.time()\n") == ["R001"]

    def test_perf_counter_fires(self):
        assert _rule_ids("import time\nt = time.perf_counter()\n") == ["R001"]

    def test_monotonic_ns_fires(self):
        assert _rule_ids("import time\nt = time.monotonic_ns()\n") == ["R001"]

    def test_datetime_now_fires(self):
        assert _rule_ids("import datetime\nn = datetime.datetime.now()\n") == ["R001"]

    def test_aliased_import_fires(self):
        assert _rule_ids("import time as t\nx = t.time()\n") == ["R001"]

    def test_from_import_fires(self):
        assert _rule_ids(
            "from time import perf_counter\nx = perf_counter()\n"
        ) == ["R001"]

    def test_time_sleep_is_fine(self):
        assert _rule_ids("import time\ntime.sleep(0.1)\n") == []

    def test_unrelated_attribute_is_fine(self):
        assert _rule_ids("class C:\n    time = 3\nc = C()\nx = c.time\n") == []


class TestR002RawRandom:
    def test_import_random_fires(self):
        assert _rule_ids("import random\n") == ["R002"]

    def test_from_random_import_fires(self):
        assert _rule_ids("from random import choice\n") == ["R002"]

    def test_aliased_use_fires(self):
        assert "R002" in _rule_ids("import random as rnd\nx = rnd.random()\n")

    def test_numpy_global_rng_fires(self):
        assert _rule_ids(
            "import numpy as np\nnp.random.seed(0)\n", select=["R002"]
        ) == ["R002"]

    def test_numpy_default_rng_is_fine(self):
        assert _rule_ids(
            "import numpy as np\nrng = np.random.default_rng(0)\n",
            select=["R002"],
        ) == []

    def test_repro_util_rng_is_fine(self):
        assert _rule_ids("from repro.util.rng import make_rng\n") == []


class TestR003UnorderedIteration:
    def test_accumulating_for_over_set_fires(self):
        source = """
        total = 0.0
        for item in {1.5, 2.5}:
            total += item
        """
        assert _rule_ids(source) == ["R003"]

    def test_append_in_for_over_keys_union_fires(self):
        source = """
        out = []
        for key in left.keys() | right.keys():
            out.append(key)
        """
        assert _rule_ids(source) == ["R003"]

    def test_list_over_set_comprehension_fires(self):
        assert _rule_ids("xs = list({a for a in ys})\n") == ["R003"]

    def test_sum_of_generator_over_set_fires(self):
        assert _rule_ids("t = sum(x for x in {1.0, 2.0})\n") == ["R003"]

    def test_sorted_set_is_fine(self):
        source = """
        total = 0.0
        for item in sorted({1.5, 2.5}):
            total += item
        """
        assert _rule_ids(source) == []

    def test_order_insensitive_consumers_are_fine(self):
        assert _rule_ids("n = len({1, 2})\nm = max({1, 2})\n") == []

    def test_for_over_list_is_fine(self):
        source = """
        total = 0.0
        for item in [1.5, 2.5]:
            total += item
        """
        assert _rule_ids(source) == []


class TestR004FloatEquality:
    def test_float_literal_eq_fires(self):
        assert _rule_ids("ok = x == 0.0\n") == ["R004"]

    def test_quantity_name_eq_fires(self):
        assert _rule_ids("done = elapsed_seconds == limit\n") == ["R004"]

    def test_bytes_name_ne_fires(self):
        assert _rule_ids("more = moved_bytes != quota\n") == ["R004"]

    def test_integer_eq_is_fine(self):
        assert _rule_ids("ok = count == 0\n") == []

    def test_strategy_name_is_fine(self):
        # "rate" inside "strategy" must not match: tokens, not substrings.
        assert _rule_ids("same = placement_strategy == other\n") == []

    def test_quantity_lt_is_fine(self):
        assert _rule_ids("late = elapsed_seconds > limit\n") == []


class TestR005MutableDefault:
    def test_list_default_fires(self):
        assert _rule_ids("def f(xs=[]):\n    return xs\n") == ["R005"]

    def test_dict_default_fires(self):
        assert _rule_ids("def f(m={}):\n    return m\n") == ["R005"]

    def test_kwonly_set_call_default_fires(self):
        assert _rule_ids("def f(*, s=set()):\n    return s\n") == ["R005"]

    def test_defaultdict_default_fires(self):
        source = """
        import collections
        def f(m=collections.defaultdict(list)):
            return m
        """
        assert _rule_ids(source) == ["R005"]

    def test_none_default_is_fine(self):
        assert _rule_ids("def f(xs=None):\n    return xs or []\n") == []

    def test_tuple_default_is_fine(self):
        assert _rule_ids("def f(xs=()):\n    return xs\n") == []


class TestR006BlanketExcept:
    def test_bare_except_fires(self):
        source = """
        try:
            go()
        except:
            pass
        """
        assert _rule_ids(source) == ["R006"]

    def test_except_exception_fires(self):
        source = """
        try:
            go()
        except Exception:
            pass
        """
        assert _rule_ids(source) == ["R006"]

    def test_exception_in_tuple_fires(self):
        source = """
        try:
            go()
        except (ValueError, Exception):
            pass
        """
        assert _rule_ids(source) == ["R006"]

    def test_specific_except_is_fine(self):
        source = """
        try:
            go()
        except (ValueError, KeyError):
            pass
        """
        assert _rule_ids(source) == []


class TestR007HardCodedBenchSeed:
    BENCH_PATH = "benchmarks/bench_demo.py"

    def _bench_ids(self, source):
        return [
            f.rule_id
            for f in lint_source(textwrap.dedent(source), path=self.BENCH_PATH)
        ]

    def test_seed_constant_fires(self):
        assert self._bench_ids("SEED = 11\n") == ["R007"]
        assert self._bench_ids("MY_SEED = 3\n") == ["R007"]

    def test_seed_kwarg_fires(self):
        assert self._bench_ids("build(seed=7)\n") == ["R007"]

    def test_negative_seed_kwarg_fires(self):
        assert self._bench_ids("build(seed=-2)\n") == ["R007"]

    def test_seed_default_fires(self):
        assert self._bench_ids("def build(seed=4):\n    pass\n") == ["R007"]

    def test_kwonly_seed_default_fires(self):
        assert self._bench_ids("def build(*, seed=4):\n    pass\n") == ["R007"]

    def test_seed_none_default_is_fine(self):
        assert self._bench_ids("def build(seed=None):\n    pass\n") == []

    def test_harness_seed_is_fine(self):
        source = """
        from repro.bench import bench_seed
        build(seed=bench_seed())
        """
        assert self._bench_ids(source) == []

    def test_non_seed_literals_are_fine(self):
        assert self._bench_ids("COUNT = 11\nbuild(records=4)\n") == []

    def test_only_fires_under_a_benchmarks_directory(self):
        source = "SEED = 11\nbuild(seed=4)\n"
        for path in ("src/repro/core/runner.py", "tests/test_x.py", "<string>"):
            assert [
                f.rule_id
                for f in lint_source(textwrap.dedent(source), path=path)
            ] == []

    def test_allow_pragma_suppresses(self):
        assert self._bench_ids("SEED = 11  # lint: allow[R007]\n") == []


class TestSyntaxErrorHandling:
    def test_unparsable_source_reports_r000(self):
        findings = lint_source("def broken(:\n")
        assert [f.rule_id for f in findings] == ["R000"]


class TestSelect:
    def test_select_narrows_rule_pack(self):
        source = "import random\nok = x == 0.0\n"
        assert _rule_ids(source, select=["R004"]) == ["R004"]
        assert sorted(_rule_ids(source)) == ["R002", "R004"]


class TestR008LibraryPrint:
    @staticmethod
    def _lib_ids(source, path="src/repro/wan/transfer.py"):
        return [
            f.rule_id
            for f in lint_source(textwrap.dedent(source), path=path)
        ]

    def test_print_in_library_fires(self):
        assert self._lib_ids('print("debug")\n') == ["R008"]

    def test_print_outside_src_repro_is_fine(self):
        assert self._lib_ids('print("ok")\n', path="benchmarks/bench_x.py") == []
        assert self._lib_ids('print("ok")\n', path="tests/test_x.py") == []

    def test_cli_modules_whitelisted(self):
        for path in (
            "src/repro/cli.py",
            "src/repro/__main__.py",
            "src/repro/lint/cli.py",
            "src/repro/obs/top.py",
        ):
            assert self._lib_ids('print("ok")\n', path=path) == []

    def test_method_named_print_is_fine(self):
        assert self._lib_ids("obj.print()\n") == []

    def test_pragma_suppresses(self):
        assert self._lib_ids('print("x")  # lint: allow[R008]\n') == []

    def test_windows_separators_normalized(self):
        assert self._lib_ids(
            'print("x")\n', path="src\\repro\\core\\controller.py"
        ) == ["R008"]
