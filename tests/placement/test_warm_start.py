"""Warm-started simplex: basis crash, fallback, and the degraded-replan
wiring through solver → task LP → joint planner → controller.

A warm start is a solver-level hint only: it may skip phase 1 when the
incumbent basis is still feasible, but it must never change the optimum
or (at the planner level) which alternation starts are explored.
"""

import numpy as np
import pytest

from repro.placement.joint import JointPlanner
from repro.placement.lp import solve_task_lp
from repro.placement.model import PlacementProblem
from repro.placement.simplex import simplex_solve
from repro.placement.solver import LinearProgram, solve_lp
from repro.systems.base import SystemConfig
from repro.systems.registry import make_system
from repro.wan.presets import uniform_sites
from repro.wan.topology import Site, WanTopology
from repro.workloads.base import WorkloadSpec
from repro.workloads.bigdata import bigdata_workload

# min x + 2y s.t. x + y = 1: the equality row forces an artificial
# variable, so a cold solve must run phase 1.
EQ_C = np.array([1.0, 2.0])
EQ_A = np.array([[1.0, 1.0]])
EQ_B = np.array([1.0])


def three_site_problem():
    topology = WanTopology.from_sites(
        [
            Site("a", uplink_bps=10.0, downlink_bps=10.0),
            Site("b", uplink_bps=100.0, downlink_bps=100.0),
            Site("c", uplink_bps=50.0, downlink_bps=50.0),
        ]
    )
    return PlacementProblem(
        topology=topology,
        input_bytes={"d": {"a": 1000.0, "b": 100.0, "c": 400.0}},
        reduction_ratio={"d": 1.0},
        similarity={"d": {"a": 0.2, "b": 0.0, "c": 0.1}},
        lag_seconds=100.0,
    )


class TestSimplexWarmStart:
    def test_warm_basis_skips_phase_one_same_optimum(self):
        cold = simplex_solve(c=EQ_C, a_eq=EQ_A, b_eq=EQ_B)
        assert cold.ok and not cold.warm_started
        assert cold.basis_columns
        warm = simplex_solve(
            c=EQ_C, a_eq=EQ_A, b_eq=EQ_B, warm_columns=cold.basis_columns
        )
        assert warm.ok and warm.warm_started
        assert warm.objective == cold.objective  # lint: allow[R004]
        assert np.array_equal(warm.x, cold.x)
        # Phase 1 was skipped: the warm solve needs no more pivots than
        # the cold one spent in phase 2 alone.
        assert warm.iterations <= cold.iterations

    def test_unusable_hint_falls_back_to_cold_path(self):
        cold = simplex_solve(c=EQ_C, a_eq=EQ_A, b_eq=EQ_B)
        for junk in ([999], [-3], []):
            warm = simplex_solve(
                c=EQ_C, a_eq=EQ_A, b_eq=EQ_B, warm_columns=junk
            )
            assert warm.ok
            assert warm.objective == cold.objective  # lint: allow[R004]
            assert np.array_equal(warm.x, cold.x)

    def test_inequality_only_problem_accepts_warm_hint(self):
        kwargs = dict(
            c=np.array([-1.0, -1.0]),
            a_ub=np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]]),
            b_ub=np.array([4.0, 3.0, 2.0]),
        )
        cold = simplex_solve(**kwargs)
        warm = simplex_solve(**kwargs, warm_columns=cold.basis_columns)
        assert warm.ok
        assert warm.objective == pytest.approx(cold.objective)


class TestSolveLpWarmNames:
    def program(self):
        return LinearProgram(
            c=EQ_C, a_eq=EQ_A, b_eq=EQ_B, variable_names=["x", "y"]
        )

    def test_simplex_backend_round_trips_basis_names(self):
        cold = solve_lp(self.program(), backend="simplex")
        assert cold.basis_names and not cold.warm_started
        warm = solve_lp(
            self.program(), backend="simplex", warm_names=cold.basis_names
        )
        assert warm.warm_started
        assert np.array_equal(warm.x, cold.x)

    def test_unknown_names_ignored(self):
        warm = solve_lp(
            self.program(),
            backend="simplex",
            warm_names=["no-such-var", "also-missing"],
        )
        assert warm.objective == pytest.approx(1.0)

    def test_scipy_backend_treats_hint_as_noop(self):
        pytest.importorskip("scipy")
        cold = solve_lp(self.program(), backend="scipy")
        warm = solve_lp(
            self.program(), backend="scipy", warm_names=["x", "y"]
        )
        assert not warm.warm_started
        assert np.array_equal(warm.x, cold.x)
        # scipy exposes no basis; basis_names is the solution support.
        assert set(cold.basis_names) <= {"x", "y"}


class TestTaskLpWarmStart:
    def test_warm_names_do_not_move_the_optimum(self):
        problem = three_site_problem()
        volumes = {"a": 800.0, "b": 100.0, "c": 300.0}
        fractions, t, solution = solve_task_lp(
            volumes, problem, backend="simplex"
        )
        warm_fractions, warm_t, warm_solution = solve_task_lp(
            volumes,
            problem,
            backend="simplex",
            warm_names=solution.basis_names,
        )
        # Warm and cold may pivot in different orders, so agreement is
        # to optimum (not bit-for-bit) — benches use the scipy backend,
        # where the hint is a no-op and nothing changes at all.
        assert warm_solution.warm_started
        assert warm_t == pytest.approx(t)
        for site in fractions:
            assert warm_fractions[site] == pytest.approx(fractions[site])

    def test_joint_planner_decision_identical_with_warm_hint(self):
        problem = three_site_problem()
        planner = JointPlanner(backend="simplex")
        baseline = planner.plan(problem)
        assert baseline.task_basis
        warmed = planner.plan(problem, warm_task_basis=baseline.task_basis)
        assert warmed.estimated_shuffle_seconds == pytest.approx(
            baseline.estimated_shuffle_seconds
        )
        for site, fraction in baseline.reduce_fractions.items():
            assert warmed.reduce_fractions[site] == pytest.approx(fraction)
        assert set(warmed.moves) == set(baseline.moves)


class TestControllerDegradedWarmStart:
    def test_degraded_replan_restricts_and_reseeds_basis(self):
        topology = uniform_sites(
            3, uplink="1MB/s", machines=1, executors_per_machine=2
        )
        config = SystemConfig(
            lag_seconds=600.0, partition_records=8, lp_backend="simplex"
        )
        controller = make_system("bohr", topology, config)
        workload = bigdata_workload(
            topology,
            seed=5,
            spec=WorkloadSpec(
                records_per_site=20, record_bytes=10_000, num_datasets=1
            ),
            flavour="aggregation",
        )
        controller.prepare(workload)
        incumbent = list(controller._task_basis)
        assert incumbent  # joint strategy records the winning basis
        dead = topology.site_names[0]
        controller.prepare_degraded(workload, [dead])
        assert f"r[{dead}]" not in controller._task_basis
        survivors = set(topology.site_names) - {dead}
        fractions = controller.reduce_fractions
        assert set(fractions) <= survivors
        assert sum(fractions.values()) == pytest.approx(1.0)
